//! The paper's motivating example (Tables I and II): a cell-phone
//! manufacturer decides which of its four phones to upgrade against six
//! competitor phones.
//!
//! Attributes: weight (g, smaller better), standby time (h, larger
//! better), camera resolution (MP, larger better). Larger-is-better
//! attributes are negated before entering the product space, per the
//! paper's footnote 1.
//!
//! ```sh
//! cargo run --example phone_catalog
//! ```

use skyup::core::cost::{AttributeCost, LinearCost, WeightedSumCost};
use skyup::core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::geom::dominance::dominates;
use skyup::geom::PointStore;
use skyup::rtree::{RTree, RTreeParams};

fn phone(weight: f64, standby: f64, megapixels: f64) -> Vec<f64> {
    vec![weight, -standby, -megapixels]
}

fn main() {
    // Table I: the competitor set P.
    let p = PointStore::from_rows(
        3,
        vec![
            phone(140.0, 200.0, 2.0), // phone 1 (skyline)
            phone(180.0, 150.0, 3.0), // phone 2
            phone(100.0, 160.0, 3.0), // phone 3 (skyline)
            phone(180.0, 180.0, 3.0), // phone 4
            phone(120.0, 180.0, 4.0), // phone 5 (skyline)
            phone(150.0, 150.0, 3.0), // phone 6
        ],
    );
    // Table II: our uncompetitive set T.
    let t = PointStore::from_rows(
        3,
        vec![
            phone(150.0, 120.0, 2.0), // phone A
            phone(180.0, 130.0, 1.0), // phone B
            phone(180.0, 120.0, 3.0), // phone C
            phone(220.0, 180.0, 2.0), // phone D
        ],
    );

    // Verify the dominator structure the paper states in Section I-B.
    let names = ["A", "B", "C", "D"];
    for (tid, tp) in t.iter() {
        let dominators: Vec<usize> = p
            .iter()
            .filter(|(_, pp)| dominates(pp, tp))
            .map(|(id, _)| id.index() + 1)
            .collect();
        println!(
            "phone {} is dominated by competitor phones {:?}",
            names[tid.index()],
            dominators
        );
    }

    // Engineering cost model: shaving weight is expensive; battery and
    // camera upgrades are linear in the (negated) attribute. Weights
    // reflect how hard each attribute is to change.
    let attrs: Vec<Box<dyn AttributeCost>> = vec![
        Box::new(LinearCost::new(500.0, 2.0)), // weight: -2 cost units per gram added
        Box::new(LinearCost::new(300.0, 1.0)), // -standby: cheaper per hour
        Box::new(LinearCost::new(100.0, 10.0)), // -megapixels: 10 per MP
    ];
    let cost_fn = WeightedSumCost::new(attrs, vec![1.0, 0.5, 1.5]);

    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());

    println!("\nUpgrade plan (cheapest first):");
    // Admissible mode guarantees the streamed plan really is cheapest
    // first on this interleaved catalog (DESIGN.md §3).
    let join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::with_epsilon(0.5),
        LowerBound::Aggressive,
    )
    .with_bound_mode(BoundMode::Admissible);
    for r in join {
        let orig = &r.original;
        let up = &r.upgraded;
        println!(
            "  phone {}: weight {:.0} -> {:.0} g, standby {:.0} -> {:.0} h, camera {:.1} -> {:.1} MP (cost {:.1})",
            names[r.product.index()],
            orig[0], up[0],
            -orig[1], -up[1],
            -orig[2], -up[2],
            r.cost
        );
        let clear = p.iter().all(|(_, pp)| !dominates(pp, up));
        assert!(clear, "upgraded phone still dominated");
    }
}
