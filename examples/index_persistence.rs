//! Build the competitor index once, persist it, and answer upgrade
//! queries from the reloaded artifact — the deployment pattern for a
//! market-monitoring service that reuses a nightly-built index all day.
//!
//! ```sh
//! cargo run --release --example index_persistence
//! ```

use skyup::core::cost::SumCost;
use skyup::core::join::{join_topk, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup::geom::PointStore;
use skyup::rtree::{RTree, RTreeParams};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("skyup-index-demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store_path = dir.join("market.store");
    let tree_path = dir.join("market.rtree");

    // Nightly job: build and persist the market index.
    let p = paper_competitors(200_000, 3, Distribution::Independent, 99);
    let build_start = Instant::now();
    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let build_time = build_start.elapsed();
    std::fs::write(&store_path, p.to_bytes()).expect("write store");
    std::fs::write(&tree_path, rp.to_bytes()).expect("write tree");
    println!(
        "built index over {} competitors in {build_time:?}; persisted {} + {} bytes",
        p.len(),
        std::fs::metadata(&store_path).unwrap().len(),
        std::fs::metadata(&tree_path).unwrap().len(),
    );

    // Daytime service: load and query.
    let load_start = Instant::now();
    let p2 = PointStore::from_bytes(&std::fs::read(&store_path).unwrap()).expect("load store");
    let rp2 = RTree::from_bytes(&std::fs::read(&tree_path).unwrap(), &p2).expect("load tree");
    println!("reloaded and validated in {:?}", load_start.elapsed());

    let t = paper_products(5_000, 3, Distribution::Independent, 100);
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost = SumCost::reciprocal(3, 1e-3);

    let query_start = Instant::now();
    let plan = join_topk(
        &p2,
        &rp2,
        &t,
        &rt,
        3,
        &cost,
        UpgradeConfig::default(),
        LowerBound::Aggressive,
    );
    println!("top-3 upgrades in {:?}:", query_start.elapsed());
    for r in &plan {
        println!("  product {} at cost {:.4}", r.product, r.cost);
    }

    std::fs::remove_file(&store_path).ok();
    std::fs::remove_file(&tree_path).ok();
}
