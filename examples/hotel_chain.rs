//! The paper's second motivating domain: a hotel chain upgrading its
//! least competitive properties. This example also demonstrates the
//! *single-set* variant (Section VI): the chain's hotels compete in the
//! same catalog as everyone else's.
//!
//! Attributes: price per night (smaller better), distance to center in
//! km (smaller better), guest rating 0-10 (larger better, negated).
//!
//! ```sh
//! cargo run --example hotel_chain
//! ```

use skyup::core::cost::SumCost;
use skyup::core::{single_set_topk, UpgradeConfig};
use skyup::data::{normalize_unit, Rng};
use skyup::geom::{PointId, PointStore};
use skyup::rtree::{RTree, RTreeParams};

fn main() {
    let mut rng = Rng::seed_from_u64(7);

    // A city-wide catalog of 500 hotels; ours are ids 0..25.
    let mut raw = PointStore::new(3);
    for _ in 0..500 {
        let price = rng.range_f64(60.0, 300.0);
        let distance = rng.range_f64(0.2, 10.0);
        let rating = rng.range_f64(5.0, 10.0);
        raw.push(&[price, distance, -rating]);
    }
    // Normalize so the reciprocal cost model treats dimensions evenly.
    let catalog = normalize_unit(&raw);
    let tree = RTree::bulk_load(&catalog, RTreeParams::default());

    let ours: Vec<PointId> = (0..25).map(PointId).collect();
    let cost_fn = SumCost::reciprocal(3, 0.05);

    let plan = single_set_topk(
        &catalog,
        &tree,
        Some(&ours),
        5,
        &cost_fn,
        &UpgradeConfig::default(),
    );

    println!("Cheapest 5 of our 25 hotels to make competitive:");
    for r in &plan {
        let orig = raw.point(r.product);
        if r.already_competitive() {
            println!(
                "  hotel #{:<2} (${:.0}/night, {:.1} km, rating {:.1}) — already on the market skyline",
                r.product.index(),
                orig[0],
                orig[1],
                -orig[2]
            );
        } else {
            println!(
                "  hotel #{:<2} (${:.0}/night, {:.1} km, rating {:.1}) — normalized upgrade cost {:.3}",
                r.product.index(),
                orig[0],
                orig[1],
                -orig[2],
                r.cost
            );
        }
    }

    let competitive = plan.iter().filter(|r| r.already_competitive()).count();
    println!(
        "\n{} of the 5 need no investment; the rest are ranked by upgrade cost.",
        competitive
    );
}
