//! Demonstrates the join's progressiveness (the property Figures 5, 10,
//! and 11 measure): results stream out one at a time, in ascending cost
//! order, long before the whole product set has been examined. An
//! analyst can stop as soon as enough candidates are on the table.
//!
//! ```sh
//! cargo run --release --example progressive_monitor
//! ```

use skyup::core::cost::SumCost;
use skyup::core::join::{JoinUpgrader, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::data::synthetic::{paper_competitors, paper_products, Distribution};
use skyup::rtree::{RTree, RTreeParams};
use std::time::Instant;

fn main() {
    // A mid-sized anti-correlated market: the hardest distribution.
    let p = paper_competitors(50_000, 3, Distribution::AntiCorrelated, 41);
    let t = paper_products(10_000, 3, Distribution::AntiCorrelated, 42);
    println!(
        "|P| = {}, |T| = {}, d = 3, anti-correlated; streaming top results...\n",
        p.len(),
        t.len()
    );

    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(3, 1e-3);

    let start = Instant::now();
    let mut join = JoinUpgrader::new(
        &p,
        &rp,
        &t,
        &rt,
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Aggressive,
    );

    let mut last_cost = 0.0;
    for (rank, result) in join.by_ref().take(10).enumerate() {
        println!(
            "#{:<2} product {:>6}  cost {:.4}   (t = {:?} after start)",
            rank + 1,
            result.product.to_string(),
            result.cost,
            start.elapsed()
        );
        assert!(result.cost + 1e-9 >= last_cost, "costs must be ascending");
        last_cost = result.cost;
    }

    let stats = join.stats();
    println!(
        "\nonly {} of {} products needed an exact upgrade computation \
         ({} T-node expansions, {} P-node expansions, {} pruned join-list entries)",
        stats.exact_upgrades,
        t.len(),
        stats.t_nodes_expanded,
        stats.p_nodes_expanded,
        stats.jl_entries_pruned
    );
}
