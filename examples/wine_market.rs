//! The paper's real-data scenario (Section IV-B): a winery wants to know
//! which of its 1,000 wines can be reformulated most cheaply to become
//! competitive on chlorides, sulphates, and total sulfur dioxide.
//!
//! Compares the answers (and the work done) of all three approaches on
//! the wine-quality-like data set.
//!
//! ```sh
//! cargo run --release --example wine_market
//! ```

use skyup::core::cost::SumCost;
use skyup::core::join::{BoundMode, JoinUpgrader, LowerBound};
use skyup::core::{basic_probing_topk, improved_probing_topk, UpgradeConfig};
use skyup::data::wine::WineAttr;
use skyup::data::{split_products, wine_dataset};
use skyup::rtree::{RTree, RTreeParams};
use std::time::Instant;

fn main() {
    let attrs = [
        WineAttr::Chlorides,
        WineAttr::Sulphates,
        WineAttr::TotalSulfurDioxide,
    ];
    let full = wine_dataset(&attrs, 2012);
    let (p, t) = split_products(&full, 1000, 2012);
    println!(
        "wine market: |P| = {} competitor wines, |T| = {} of ours, attrs = c,s,t",
        p.len(),
        t.len()
    );

    let rp = RTree::bulk_load(&p, RTreeParams::default());
    let rt = RTree::bulk_load(&t, RTreeParams::default());
    let cost_fn = SumCost::reciprocal(3, 1e-3);
    let cfg = UpgradeConfig::default();
    let k = 5;

    let start = Instant::now();
    let basic = basic_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    let t_basic = start.elapsed();

    let start = Instant::now();
    let improved = improved_probing_topk(&p, &rp, &t, k, &cost_fn, &cfg);
    let t_improved = start.elapsed();

    let start = Instant::now();
    // Admissible mode guarantees the join's top-k equals probing's even
    // though the wine P/T domains interleave (see DESIGN.md §3).
    let mut join = JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, cfg, LowerBound::Conservative)
        .with_bound_mode(BoundMode::Admissible);
    let join_results: Vec<_> = join.by_ref().take(k).collect();
    let t_join = start.elapsed();
    let stats = join.stats();

    println!("\ntop-{k} wines to reformulate (improved probing):");
    for r in &improved {
        println!(
            "  wine {}: cost {:.4}  {:?} -> {:?}",
            r.product, r.cost, r.original, r.upgraded
        );
    }

    // All three approaches agree on the costs.
    for (a, b) in basic.iter().zip(&improved) {
        assert!((a.cost - b.cost).abs() < 1e-9);
    }
    for (a, b) in join_results.iter().zip(&improved) {
        assert!(
            (a.cost - b.cost).abs() < 1e-6,
            "join ({}) and probing ({}) disagree",
            a.cost,
            b.cost
        );
    }

    println!("\nexecution time: basic {t_basic:?}, improved {t_improved:?}, join {t_join:?}");
    println!(
        "join work: {} upgrades computed (probing computes {}), {} P-node expansions",
        stats.exact_upgrades,
        t.len(),
        stats.p_nodes_expanded
    );
}
