//! Quickstart: upgrade the cheapest products of a small catalog.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use skyup::core::cost::SumCost;
use skyup::core::join::{join_topk, LowerBound};
use skyup::core::UpgradeConfig;
use skyup::geom::PointStore;
use skyup::rtree::{RTree, RTreeParams};

fn main() {
    // A 2-d product space: (price index, defect rate) — smaller is
    // better on both. Competitors spread along a quality/price frontier.
    let competitors = PointStore::from_rows(
        2,
        vec![
            vec![0.10, 0.80],
            vec![0.25, 0.55],
            vec![0.40, 0.40],
            vec![0.55, 0.25],
            vec![0.80, 0.10],
            vec![0.50, 0.60], // not on the frontier
        ],
    );
    // Our products: all dominated by at least one competitor.
    let ours = PointStore::from_rows(
        2,
        vec![
            vec![0.45, 0.45], // barely dominated by (0.40, 0.40)
            vec![0.90, 0.90], // deeply dominated
            vec![0.30, 0.70],
        ],
    );

    let rp = RTree::bulk_load(&competitors, RTreeParams::default());
    let rt = RTree::bulk_load(&ours, RTreeParams::default());

    // Manufacturing cost grows as attributes approach their ideal value
    // 0: f_a(v) = 1/(v + 0.05) per dimension, summed.
    let cost_fn = SumCost::reciprocal(2, 0.05);

    let results = join_topk(
        &competitors,
        &rp,
        &ours,
        &rt,
        2, // top-2
        &cost_fn,
        UpgradeConfig::default(),
        LowerBound::Conservative,
    );

    println!("Top-{} products to upgrade:", results.len());
    for r in &results {
        println!(
            "  product {}: {:?} -> {:?}  (upgrade cost {:.3})",
            r.product, r.original, r.upgraded, r.cost
        );
        // The upgraded product escapes every competitor.
        let clear = competitors
            .iter()
            .all(|(_, c)| !skyup::geom::dominance::dominates(c, &r.upgraded));
        assert!(clear);
    }
    println!("both upgrades verified non-dominated against all competitors");
}
