/root/repo/target/debug/examples/phone_catalog-528afa6cc14f3be3.d: examples/phone_catalog.rs

/root/repo/target/debug/examples/phone_catalog-528afa6cc14f3be3: examples/phone_catalog.rs

examples/phone_catalog.rs:
