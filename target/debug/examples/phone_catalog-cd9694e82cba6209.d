/root/repo/target/debug/examples/phone_catalog-cd9694e82cba6209.d: examples/phone_catalog.rs Cargo.toml

/root/repo/target/debug/examples/libphone_catalog-cd9694e82cba6209.rmeta: examples/phone_catalog.rs Cargo.toml

examples/phone_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
