/root/repo/target/debug/examples/index_persistence-91aa83ac3b0920ef.d: examples/index_persistence.rs Cargo.toml

/root/repo/target/debug/examples/libindex_persistence-91aa83ac3b0920ef.rmeta: examples/index_persistence.rs Cargo.toml

examples/index_persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
