/root/repo/target/debug/examples/probe_seeds-1aab1af640c63b6f.d: crates/data/examples/probe_seeds.rs

/root/repo/target/debug/examples/probe_seeds-1aab1af640c63b6f: crates/data/examples/probe_seeds.rs

crates/data/examples/probe_seeds.rs:
