/root/repo/target/debug/examples/wine_market-2f2637f91078d155.d: examples/wine_market.rs

/root/repo/target/debug/examples/wine_market-2f2637f91078d155: examples/wine_market.rs

examples/wine_market.rs:
