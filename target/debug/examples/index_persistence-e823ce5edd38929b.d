/root/repo/target/debug/examples/index_persistence-e823ce5edd38929b.d: examples/index_persistence.rs

/root/repo/target/debug/examples/index_persistence-e823ce5edd38929b: examples/index_persistence.rs

examples/index_persistence.rs:
