/root/repo/target/debug/examples/progressive_monitor-95e02d70844edb19.d: examples/progressive_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libprogressive_monitor-95e02d70844edb19.rmeta: examples/progressive_monitor.rs Cargo.toml

examples/progressive_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
