/root/repo/target/debug/examples/hotel_chain-1515e142fd7ce76a.d: examples/hotel_chain.rs Cargo.toml

/root/repo/target/debug/examples/libhotel_chain-1515e142fd7ce76a.rmeta: examples/hotel_chain.rs Cargo.toml

examples/hotel_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
