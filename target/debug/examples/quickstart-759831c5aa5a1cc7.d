/root/repo/target/debug/examples/quickstart-759831c5aa5a1cc7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-759831c5aa5a1cc7: examples/quickstart.rs

examples/quickstart.rs:
