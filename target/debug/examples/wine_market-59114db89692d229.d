/root/repo/target/debug/examples/wine_market-59114db89692d229.d: examples/wine_market.rs Cargo.toml

/root/repo/target/debug/examples/libwine_market-59114db89692d229.rmeta: examples/wine_market.rs Cargo.toml

examples/wine_market.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
