/root/repo/target/debug/examples/progressive_monitor-3b6ff30c390d6816.d: examples/progressive_monitor.rs

/root/repo/target/debug/examples/progressive_monitor-3b6ff30c390d6816: examples/progressive_monitor.rs

examples/progressive_monitor.rs:
