/root/repo/target/debug/examples/hotel_chain-bcd5102719f32d39.d: examples/hotel_chain.rs

/root/repo/target/debug/examples/hotel_chain-bcd5102719f32d39: examples/hotel_chain.rs

examples/hotel_chain.rs:
