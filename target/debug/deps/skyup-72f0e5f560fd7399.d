/root/repo/target/debug/deps/skyup-72f0e5f560fd7399.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libskyup-72f0e5f560fd7399.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libskyup-72f0e5f560fd7399.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
