/root/repo/target/debug/deps/persistence-3ab2e583678ce60a.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-3ab2e583678ce60a: tests/persistence.rs

tests/persistence.rs:
