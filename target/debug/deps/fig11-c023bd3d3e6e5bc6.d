/root/repo/target/debug/deps/fig11-c023bd3d3e6e5bc6.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-c023bd3d3e6e5bc6.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
