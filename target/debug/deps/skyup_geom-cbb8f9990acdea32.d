/root/repo/target/debug/deps/skyup_geom-cbb8f9990acdea32.d: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

/root/repo/target/debug/deps/skyup_geom-cbb8f9990acdea32: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

crates/geom/src/lib.rs:
crates/geom/src/adr.rs:
crates/geom/src/dims.rs:
crates/geom/src/dominance.rs:
crates/geom/src/ordered.rs:
crates/geom/src/persist.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/store.rs:
