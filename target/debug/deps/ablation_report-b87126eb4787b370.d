/root/repo/target/debug/deps/ablation_report-b87126eb4787b370.d: crates/bench/src/bin/ablation_report.rs

/root/repo/target/debug/deps/ablation_report-b87126eb4787b370: crates/bench/src/bin/ablation_report.rs

crates/bench/src/bin/ablation_report.rs:
