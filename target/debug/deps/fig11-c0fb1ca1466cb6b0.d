/root/repo/target/debug/deps/fig11-c0fb1ca1466cb6b0.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-c0fb1ca1466cb6b0.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
