/root/repo/target/debug/deps/scale_smoke-1083f7a783921b26.d: tests/scale_smoke.rs

/root/repo/target/debug/deps/scale_smoke-1083f7a783921b26: tests/scale_smoke.rs

tests/scale_smoke.rs:
