/root/repo/target/debug/deps/skyup_rtree-a8f6deb39ef909b4.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/delete.rs crates/rtree/src/insert.rs crates/rtree/src/knn.rs crates/rtree/src/node.rs crates/rtree/src/persist.rs crates/rtree/src/query.rs crates/rtree/src/split.rs crates/rtree/src/stats.rs crates/rtree/src/tree.rs crates/rtree/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_rtree-a8f6deb39ef909b4.rmeta: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/delete.rs crates/rtree/src/insert.rs crates/rtree/src/knn.rs crates/rtree/src/node.rs crates/rtree/src/persist.rs crates/rtree/src/query.rs crates/rtree/src/split.rs crates/rtree/src/stats.rs crates/rtree/src/tree.rs crates/rtree/src/validate.rs Cargo.toml

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/delete.rs:
crates/rtree/src/insert.rs:
crates/rtree/src/knn.rs:
crates/rtree/src/node.rs:
crates/rtree/src/persist.rs:
crates/rtree/src/query.rs:
crates/rtree/src/split.rs:
crates/rtree/src/stats.rs:
crates/rtree/src/tree.rs:
crates/rtree/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
