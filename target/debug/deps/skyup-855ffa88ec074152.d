/root/repo/target/debug/deps/skyup-855ffa88ec074152.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/skyup-855ffa88ec074152: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
