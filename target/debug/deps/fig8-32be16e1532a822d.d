/root/repo/target/debug/deps/fig8-32be16e1532a822d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-32be16e1532a822d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
