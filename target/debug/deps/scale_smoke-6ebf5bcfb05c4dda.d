/root/repo/target/debug/deps/scale_smoke-6ebf5bcfb05c4dda.d: tests/scale_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libscale_smoke-6ebf5bcfb05c4dda.rmeta: tests/scale_smoke.rs Cargo.toml

tests/scale_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
