/root/repo/target/debug/deps/counters_baseline-5adb731340f68398.d: crates/bench/src/bin/counters_baseline.rs

/root/repo/target/debug/deps/counters_baseline-5adb731340f68398: crates/bench/src/bin/counters_baseline.rs

crates/bench/src/bin/counters_baseline.rs:
