/root/repo/target/debug/deps/fig11-2072b437ce64334a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-2072b437ce64334a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
