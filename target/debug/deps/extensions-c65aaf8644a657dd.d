/root/repo/target/debug/deps/extensions-c65aaf8644a657dd.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-c65aaf8644a657dd.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
