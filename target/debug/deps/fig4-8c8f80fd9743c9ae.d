/root/repo/target/debug/deps/fig4-8c8f80fd9743c9ae.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8c8f80fd9743c9ae: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
