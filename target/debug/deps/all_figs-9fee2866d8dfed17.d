/root/repo/target/debug/deps/all_figs-9fee2866d8dfed17.d: crates/bench/src/bin/all_figs.rs Cargo.toml

/root/repo/target/debug/deps/liball_figs-9fee2866d8dfed17.rmeta: crates/bench/src/bin/all_figs.rs Cargo.toml

crates/bench/src/bin/all_figs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
