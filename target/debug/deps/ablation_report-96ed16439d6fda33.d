/root/repo/target/debug/deps/ablation_report-96ed16439d6fda33.d: crates/bench/src/bin/ablation_report.rs

/root/repo/target/debug/deps/ablation_report-96ed16439d6fda33: crates/bench/src/bin/ablation_report.rs

crates/bench/src/bin/ablation_report.rs:
