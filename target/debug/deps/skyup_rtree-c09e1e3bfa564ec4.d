/root/repo/target/debug/deps/skyup_rtree-c09e1e3bfa564ec4.d: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/delete.rs crates/rtree/src/insert.rs crates/rtree/src/knn.rs crates/rtree/src/node.rs crates/rtree/src/persist.rs crates/rtree/src/query.rs crates/rtree/src/split.rs crates/rtree/src/stats.rs crates/rtree/src/tree.rs crates/rtree/src/validate.rs

/root/repo/target/debug/deps/libskyup_rtree-c09e1e3bfa564ec4.rlib: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/delete.rs crates/rtree/src/insert.rs crates/rtree/src/knn.rs crates/rtree/src/node.rs crates/rtree/src/persist.rs crates/rtree/src/query.rs crates/rtree/src/split.rs crates/rtree/src/stats.rs crates/rtree/src/tree.rs crates/rtree/src/validate.rs

/root/repo/target/debug/deps/libskyup_rtree-c09e1e3bfa564ec4.rmeta: crates/rtree/src/lib.rs crates/rtree/src/bulk.rs crates/rtree/src/delete.rs crates/rtree/src/insert.rs crates/rtree/src/knn.rs crates/rtree/src/node.rs crates/rtree/src/persist.rs crates/rtree/src/query.rs crates/rtree/src/split.rs crates/rtree/src/stats.rs crates/rtree/src/tree.rs crates/rtree/src/validate.rs

crates/rtree/src/lib.rs:
crates/rtree/src/bulk.rs:
crates/rtree/src/delete.rs:
crates/rtree/src/insert.rs:
crates/rtree/src/knn.rs:
crates/rtree/src/node.rs:
crates/rtree/src/persist.rs:
crates/rtree/src/query.rs:
crates/rtree/src/split.rs:
crates/rtree/src/stats.rs:
crates/rtree/src/tree.rs:
crates/rtree/src/validate.rs:
