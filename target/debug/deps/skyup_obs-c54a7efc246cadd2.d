/root/repo/target/debug/deps/skyup_obs-c54a7efc246cadd2.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_obs-c54a7efc246cadd2.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/report.rs:
crates/obs/src/counter.rs:
crates/obs/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
