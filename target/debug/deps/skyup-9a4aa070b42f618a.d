/root/repo/target/debug/deps/skyup-9a4aa070b42f618a.d: src/bin/skyup.rs Cargo.toml

/root/repo/target/debug/deps/libskyup-9a4aa070b42f618a.rmeta: src/bin/skyup.rs Cargo.toml

src/bin/skyup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
