/root/repo/target/debug/deps/motivating_example-7af5b152110cfae3.d: tests/motivating_example.rs

/root/repo/target/debug/deps/motivating_example-7af5b152110cfae3: tests/motivating_example.rs

tests/motivating_example.rs:
