/root/repo/target/debug/deps/skyup_geom-1ffb2aca414e2b90.d: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_geom-1ffb2aca414e2b90.rmeta: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/adr.rs:
crates/geom/src/dims.rs:
crates/geom/src/dominance.rs:
crates/geom/src/ordered.rs:
crates/geom/src/persist.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
