/root/repo/target/debug/deps/counters_baseline-9d37e34053cbbedc.d: crates/bench/src/bin/counters_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libcounters_baseline-9d37e34053cbbedc.rmeta: crates/bench/src/bin/counters_baseline.rs Cargo.toml

crates/bench/src/bin/counters_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
