/root/repo/target/debug/deps/skyup_data-4941b6e415157205.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_data-4941b6e415157205.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/normalize.rs:
crates/data/src/rng.rs:
crates/data/src/sample.rs:
crates/data/src/synthetic.rs:
crates/data/src/wine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
