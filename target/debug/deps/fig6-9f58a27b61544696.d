/root/repo/target/debug/deps/fig6-9f58a27b61544696.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9f58a27b61544696: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
