/root/repo/target/debug/deps/fig5-a8b38c78f1ba0af5.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-a8b38c78f1ba0af5.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
