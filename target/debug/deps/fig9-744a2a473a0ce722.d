/root/repo/target/debug/deps/fig9-744a2a473a0ce722.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-744a2a473a0ce722: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
