/root/repo/target/debug/deps/all_figs-a27f443f54cc75b3.d: crates/bench/src/bin/all_figs.rs

/root/repo/target/debug/deps/all_figs-a27f443f54cc75b3: crates/bench/src/bin/all_figs.rs

crates/bench/src/bin/all_figs.rs:
