/root/repo/target/debug/deps/skyup_skyline-6dc23338aad096cf.d: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_skyline-6dc23338aad096cf.rmeta: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs Cargo.toml

crates/skyline/src/lib.rs:
crates/skyline/src/bbs.rs:
crates/skyline/src/bnl.rs:
crates/skyline/src/constrained.rs:
crates/skyline/src/dnc.rs:
crates/skyline/src/naive.rs:
crates/skyline/src/sfs.rs:
crates/skyline/src/skyband.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
