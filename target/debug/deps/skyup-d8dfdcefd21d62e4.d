/root/repo/target/debug/deps/skyup-d8dfdcefd21d62e4.d: src/bin/skyup.rs

/root/repo/target/debug/deps/skyup-d8dfdcefd21d62e4: src/bin/skyup.rs

src/bin/skyup.rs:
