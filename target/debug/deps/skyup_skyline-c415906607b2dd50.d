/root/repo/target/debug/deps/skyup_skyline-c415906607b2dd50.d: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

/root/repo/target/debug/deps/libskyup_skyline-c415906607b2dd50.rlib: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

/root/repo/target/debug/deps/libskyup_skyline-c415906607b2dd50.rmeta: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

crates/skyline/src/lib.rs:
crates/skyline/src/bbs.rs:
crates/skyline/src/bnl.rs:
crates/skyline/src/constrained.rs:
crates/skyline/src/dnc.rs:
crates/skyline/src/naive.rs:
crates/skyline/src/sfs.rs:
crates/skyline/src/skyband.rs:
