/root/repo/target/debug/deps/skyup_data-e2106d5cc22bc5fd.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

/root/repo/target/debug/deps/libskyup_data-e2106d5cc22bc5fd.rlib: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

/root/repo/target/debug/deps/libskyup_data-e2106d5cc22bc5fd.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/normalize.rs:
crates/data/src/rng.rs:
crates/data/src/sample.rs:
crates/data/src/synthetic.rs:
crates/data/src/wine.rs:
