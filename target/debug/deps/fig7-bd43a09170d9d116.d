/root/repo/target/debug/deps/fig7-bd43a09170d9d116.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-bd43a09170d9d116: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
