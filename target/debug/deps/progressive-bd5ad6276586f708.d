/root/repo/target/debug/deps/progressive-bd5ad6276586f708.d: tests/progressive.rs Cargo.toml

/root/repo/target/debug/deps/libprogressive-bd5ad6276586f708.rmeta: tests/progressive.rs Cargo.toml

tests/progressive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
