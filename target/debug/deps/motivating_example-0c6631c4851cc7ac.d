/root/repo/target/debug/deps/motivating_example-0c6631c4851cc7ac.d: tests/motivating_example.rs Cargo.toml

/root/repo/target/debug/deps/libmotivating_example-0c6631c4851cc7ac.rmeta: tests/motivating_example.rs Cargo.toml

tests/motivating_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
