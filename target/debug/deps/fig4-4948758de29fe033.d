/root/repo/target/debug/deps/fig4-4948758de29fe033.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4948758de29fe033: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
