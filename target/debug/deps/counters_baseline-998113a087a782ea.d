/root/repo/target/debug/deps/counters_baseline-998113a087a782ea.d: crates/bench/src/bin/counters_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libcounters_baseline-998113a087a782ea.rmeta: crates/bench/src/bin/counters_baseline.rs Cargo.toml

crates/bench/src/bin/counters_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
