/root/repo/target/debug/deps/fig5-be57fc8057e4cc5e.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-be57fc8057e4cc5e: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
