/root/repo/target/debug/deps/ablation_report-65be31fd004d728f.d: crates/bench/src/bin/ablation_report.rs Cargo.toml

/root/repo/target/debug/deps/libablation_report-65be31fd004d728f.rmeta: crates/bench/src/bin/ablation_report.rs Cargo.toml

crates/bench/src/bin/ablation_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
