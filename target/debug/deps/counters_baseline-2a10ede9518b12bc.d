/root/repo/target/debug/deps/counters_baseline-2a10ede9518b12bc.d: crates/bench/src/bin/counters_baseline.rs

/root/repo/target/debug/deps/counters_baseline-2a10ede9518b12bc: crates/bench/src/bin/counters_baseline.rs

crates/bench/src/bin/counters_baseline.rs:
