/root/repo/target/debug/deps/fig9-3c6b8adc77b655f4.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-3c6b8adc77b655f4: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
