/root/repo/target/debug/deps/properties-bd8954ce134f8529.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bd8954ce134f8529.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
