/root/repo/target/debug/deps/skyup_core-aa466a2d4205cb3a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/cost/mod.rs crates/core/src/cost/attr.rs crates/core/src/cost/diagnostics.rs crates/core/src/cost/integrate.rs crates/core/src/discrete.rs crates/core/src/join/mod.rs crates/core/src/join/algorithm.rs crates/core/src/join/bounds.rs crates/core/src/join/heap.rs crates/core/src/join/lbc.rs crates/core/src/optimal.rs crates/core/src/probing/mod.rs crates/core/src/probing/basic.rs crates/core/src/probing/improved.rs crates/core/src/probing/parallel.rs crates/core/src/probing/pruned.rs crates/core/src/result.rs crates/core/src/single_set.rs crates/core/src/topk.rs crates/core/src/upgrade.rs

/root/repo/target/debug/deps/libskyup_core-aa466a2d4205cb3a.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/cost/mod.rs crates/core/src/cost/attr.rs crates/core/src/cost/diagnostics.rs crates/core/src/cost/integrate.rs crates/core/src/discrete.rs crates/core/src/join/mod.rs crates/core/src/join/algorithm.rs crates/core/src/join/bounds.rs crates/core/src/join/heap.rs crates/core/src/join/lbc.rs crates/core/src/optimal.rs crates/core/src/probing/mod.rs crates/core/src/probing/basic.rs crates/core/src/probing/improved.rs crates/core/src/probing/parallel.rs crates/core/src/probing/pruned.rs crates/core/src/result.rs crates/core/src/single_set.rs crates/core/src/topk.rs crates/core/src/upgrade.rs

/root/repo/target/debug/deps/libskyup_core-aa466a2d4205cb3a.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/constrained.rs crates/core/src/cost/mod.rs crates/core/src/cost/attr.rs crates/core/src/cost/diagnostics.rs crates/core/src/cost/integrate.rs crates/core/src/discrete.rs crates/core/src/join/mod.rs crates/core/src/join/algorithm.rs crates/core/src/join/bounds.rs crates/core/src/join/heap.rs crates/core/src/join/lbc.rs crates/core/src/optimal.rs crates/core/src/probing/mod.rs crates/core/src/probing/basic.rs crates/core/src/probing/improved.rs crates/core/src/probing/parallel.rs crates/core/src/probing/pruned.rs crates/core/src/result.rs crates/core/src/single_set.rs crates/core/src/topk.rs crates/core/src/upgrade.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/constrained.rs:
crates/core/src/cost/mod.rs:
crates/core/src/cost/attr.rs:
crates/core/src/cost/diagnostics.rs:
crates/core/src/cost/integrate.rs:
crates/core/src/discrete.rs:
crates/core/src/join/mod.rs:
crates/core/src/join/algorithm.rs:
crates/core/src/join/bounds.rs:
crates/core/src/join/heap.rs:
crates/core/src/join/lbc.rs:
crates/core/src/optimal.rs:
crates/core/src/probing/mod.rs:
crates/core/src/probing/basic.rs:
crates/core/src/probing/improved.rs:
crates/core/src/probing/parallel.rs:
crates/core/src/probing/pruned.rs:
crates/core/src/result.rs:
crates/core/src/single_set.rs:
crates/core/src/topk.rs:
crates/core/src/upgrade.rs:
