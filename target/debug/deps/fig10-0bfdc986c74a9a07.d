/root/repo/target/debug/deps/fig10-0bfdc986c74a9a07.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-0bfdc986c74a9a07.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
