/root/repo/target/debug/deps/fig11-e151e89d61789417.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-e151e89d61789417: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
