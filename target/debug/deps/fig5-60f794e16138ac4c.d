/root/repo/target/debug/deps/fig5-60f794e16138ac4c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-60f794e16138ac4c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
