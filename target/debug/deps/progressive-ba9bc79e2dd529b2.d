/root/repo/target/debug/deps/progressive-ba9bc79e2dd529b2.d: tests/progressive.rs

/root/repo/target/debug/deps/progressive-ba9bc79e2dd529b2: tests/progressive.rs

tests/progressive.rs:
