/root/repo/target/debug/deps/fig7-c97681967fa5ef56.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c97681967fa5ef56: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
