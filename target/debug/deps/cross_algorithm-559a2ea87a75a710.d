/root/repo/target/debug/deps/cross_algorithm-559a2ea87a75a710.d: tests/cross_algorithm.rs

/root/repo/target/debug/deps/cross_algorithm-559a2ea87a75a710: tests/cross_algorithm.rs

tests/cross_algorithm.rs:
