/root/repo/target/debug/deps/skyup_bench-657a88faede96925.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libskyup_bench-657a88faede96925.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/params.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
