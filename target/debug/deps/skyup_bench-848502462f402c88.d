/root/repo/target/debug/deps/skyup_bench-848502462f402c88.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libskyup_bench-848502462f402c88.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libskyup_bench-848502462f402c88.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/params.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
