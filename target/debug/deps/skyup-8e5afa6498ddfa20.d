/root/repo/target/debug/deps/skyup-8e5afa6498ddfa20.d: src/bin/skyup.rs Cargo.toml

/root/repo/target/debug/deps/libskyup-8e5afa6498ddfa20.rmeta: src/bin/skyup.rs Cargo.toml

src/bin/skyup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
