/root/repo/target/debug/deps/fig10-339a7fe06b4204bf.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-339a7fe06b4204bf: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
