/root/repo/target/debug/deps/figures_smoke-618d81ab070c6718.d: tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-618d81ab070c6718: tests/figures_smoke.rs

tests/figures_smoke.rs:
