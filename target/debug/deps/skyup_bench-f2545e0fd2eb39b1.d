/root/repo/target/debug/deps/skyup_bench-f2545e0fd2eb39b1.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/skyup_bench-f2545e0fd2eb39b1: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/params.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
