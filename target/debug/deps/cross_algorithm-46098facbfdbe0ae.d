/root/repo/target/debug/deps/cross_algorithm-46098facbfdbe0ae.d: tests/cross_algorithm.rs Cargo.toml

/root/repo/target/debug/deps/libcross_algorithm-46098facbfdbe0ae.rmeta: tests/cross_algorithm.rs Cargo.toml

tests/cross_algorithm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
