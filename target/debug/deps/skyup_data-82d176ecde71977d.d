/root/repo/target/debug/deps/skyup_data-82d176ecde71977d.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

/root/repo/target/debug/deps/skyup_data-82d176ecde71977d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/normalize.rs:
crates/data/src/rng.rs:
crates/data/src/sample.rs:
crates/data/src/synthetic.rs:
crates/data/src/wine.rs:
