/root/repo/target/debug/deps/all_figs-f61e00d0b1c41691.d: crates/bench/src/bin/all_figs.rs

/root/repo/target/debug/deps/all_figs-f61e00d0b1c41691: crates/bench/src/bin/all_figs.rs

crates/bench/src/bin/all_figs.rs:
