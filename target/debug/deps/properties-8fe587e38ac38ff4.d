/root/repo/target/debug/deps/properties-8fe587e38ac38ff4.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8fe587e38ac38ff4: tests/properties.rs

tests/properties.rs:
