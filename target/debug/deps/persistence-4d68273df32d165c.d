/root/repo/target/debug/deps/persistence-4d68273df32d165c.d: tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-4d68273df32d165c.rmeta: tests/persistence.rs Cargo.toml

tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
