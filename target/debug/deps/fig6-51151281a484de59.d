/root/repo/target/debug/deps/fig6-51151281a484de59.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-51151281a484de59: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
