/root/repo/target/debug/deps/ablation-05f7520d61cf294b.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-05f7520d61cf294b.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
