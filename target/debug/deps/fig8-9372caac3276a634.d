/root/repo/target/debug/deps/fig8-9372caac3276a634.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9372caac3276a634: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
