/root/repo/target/debug/deps/micro-ce836fcaa728bf93.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-ce836fcaa728bf93.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
