/root/repo/target/debug/deps/fig10-5e61d29340183367.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-5e61d29340183367: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
