/root/repo/target/debug/deps/skyup_geom-b873dfbde2b03c4b.d: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

/root/repo/target/debug/deps/libskyup_geom-b873dfbde2b03c4b.rlib: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

/root/repo/target/debug/deps/libskyup_geom-b873dfbde2b03c4b.rmeta: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

crates/geom/src/lib.rs:
crates/geom/src/adr.rs:
crates/geom/src/dims.rs:
crates/geom/src/dominance.rs:
crates/geom/src/ordered.rs:
crates/geom/src/persist.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/store.rs:
