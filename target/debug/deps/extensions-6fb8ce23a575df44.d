/root/repo/target/debug/deps/extensions-6fb8ce23a575df44.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-6fb8ce23a575df44: tests/extensions.rs

tests/extensions.rs:
