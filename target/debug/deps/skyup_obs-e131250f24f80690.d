/root/repo/target/debug/deps/skyup_obs-e131250f24f80690.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/skyup_obs-e131250f24f80690: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/report.rs:
crates/obs/src/counter.rs:
crates/obs/src/metrics.rs:
