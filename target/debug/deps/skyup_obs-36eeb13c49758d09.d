/root/repo/target/debug/deps/skyup_obs-36eeb13c49758d09.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libskyup_obs-36eeb13c49758d09.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

/root/repo/target/debug/deps/libskyup_obs-36eeb13c49758d09.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/report.rs:
crates/obs/src/counter.rs:
crates/obs/src/metrics.rs:
