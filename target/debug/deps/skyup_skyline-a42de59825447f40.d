/root/repo/target/debug/deps/skyup_skyline-a42de59825447f40.d: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

/root/repo/target/debug/deps/skyup_skyline-a42de59825447f40: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

crates/skyline/src/lib.rs:
crates/skyline/src/bbs.rs:
crates/skyline/src/bnl.rs:
crates/skyline/src/constrained.rs:
crates/skyline/src/dnc.rs:
crates/skyline/src/naive.rs:
crates/skyline/src/sfs.rs:
crates/skyline/src/skyband.rs:
