/root/repo/target/debug/deps/skyup-4a438307f3f5161d.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libskyup-4a438307f3f5161d.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
