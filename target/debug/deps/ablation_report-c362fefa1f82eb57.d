/root/repo/target/debug/deps/ablation_report-c362fefa1f82eb57.d: crates/bench/src/bin/ablation_report.rs Cargo.toml

/root/repo/target/debug/deps/libablation_report-c362fefa1f82eb57.rmeta: crates/bench/src/bin/ablation_report.rs Cargo.toml

crates/bench/src/bin/ablation_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
