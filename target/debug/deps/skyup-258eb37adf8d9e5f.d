/root/repo/target/debug/deps/skyup-258eb37adf8d9e5f.d: src/bin/skyup.rs

/root/repo/target/debug/deps/skyup-258eb37adf8d9e5f: src/bin/skyup.rs

src/bin/skyup.rs:
