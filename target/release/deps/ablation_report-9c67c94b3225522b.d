/root/repo/target/release/deps/ablation_report-9c67c94b3225522b.d: crates/bench/src/bin/ablation_report.rs

/root/repo/target/release/deps/ablation_report-9c67c94b3225522b: crates/bench/src/bin/ablation_report.rs

crates/bench/src/bin/ablation_report.rs:
