/root/repo/target/release/deps/skyup_skyline-eab4af649c109f4f.d: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

/root/repo/target/release/deps/libskyup_skyline-eab4af649c109f4f.rlib: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

/root/repo/target/release/deps/libskyup_skyline-eab4af649c109f4f.rmeta: crates/skyline/src/lib.rs crates/skyline/src/bbs.rs crates/skyline/src/bnl.rs crates/skyline/src/constrained.rs crates/skyline/src/dnc.rs crates/skyline/src/naive.rs crates/skyline/src/sfs.rs crates/skyline/src/skyband.rs

crates/skyline/src/lib.rs:
crates/skyline/src/bbs.rs:
crates/skyline/src/bnl.rs:
crates/skyline/src/constrained.rs:
crates/skyline/src/dnc.rs:
crates/skyline/src/naive.rs:
crates/skyline/src/sfs.rs:
crates/skyline/src/skyband.rs:
