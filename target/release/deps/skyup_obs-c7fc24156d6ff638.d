/root/repo/target/release/deps/skyup_obs-c7fc24156d6ff638.d: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libskyup_obs-c7fc24156d6ff638.rlib: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

/root/repo/target/release/deps/libskyup_obs-c7fc24156d6ff638.rmeta: crates/obs/src/lib.rs crates/obs/src/json.rs crates/obs/src/report.rs crates/obs/src/counter.rs crates/obs/src/metrics.rs

crates/obs/src/lib.rs:
crates/obs/src/json.rs:
crates/obs/src/report.rs:
crates/obs/src/counter.rs:
crates/obs/src/metrics.rs:
