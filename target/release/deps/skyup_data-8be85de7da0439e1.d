/root/repo/target/release/deps/skyup_data-8be85de7da0439e1.d: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

/root/repo/target/release/deps/libskyup_data-8be85de7da0439e1.rlib: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

/root/repo/target/release/deps/libskyup_data-8be85de7da0439e1.rmeta: crates/data/src/lib.rs crates/data/src/io.rs crates/data/src/normalize.rs crates/data/src/rng.rs crates/data/src/sample.rs crates/data/src/synthetic.rs crates/data/src/wine.rs

crates/data/src/lib.rs:
crates/data/src/io.rs:
crates/data/src/normalize.rs:
crates/data/src/rng.rs:
crates/data/src/sample.rs:
crates/data/src/synthetic.rs:
crates/data/src/wine.rs:
