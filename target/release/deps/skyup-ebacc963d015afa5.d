/root/repo/target/release/deps/skyup-ebacc963d015afa5.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libskyup-ebacc963d015afa5.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libskyup-ebacc963d015afa5.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
