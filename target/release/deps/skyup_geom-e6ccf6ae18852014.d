/root/repo/target/release/deps/skyup_geom-e6ccf6ae18852014.d: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

/root/repo/target/release/deps/libskyup_geom-e6ccf6ae18852014.rlib: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

/root/repo/target/release/deps/libskyup_geom-e6ccf6ae18852014.rmeta: crates/geom/src/lib.rs crates/geom/src/adr.rs crates/geom/src/dims.rs crates/geom/src/dominance.rs crates/geom/src/ordered.rs crates/geom/src/persist.rs crates/geom/src/point.rs crates/geom/src/rect.rs crates/geom/src/store.rs

crates/geom/src/lib.rs:
crates/geom/src/adr.rs:
crates/geom/src/dims.rs:
crates/geom/src/dominance.rs:
crates/geom/src/ordered.rs:
crates/geom/src/persist.rs:
crates/geom/src/point.rs:
crates/geom/src/rect.rs:
crates/geom/src/store.rs:
