/root/repo/target/release/deps/skyup-4007e2ab331f012e.d: src/bin/skyup.rs

/root/repo/target/release/deps/skyup-4007e2ab331f012e: src/bin/skyup.rs

src/bin/skyup.rs:
