/root/repo/target/release/deps/counters_baseline-f28950e9718856b3.d: crates/bench/src/bin/counters_baseline.rs

/root/repo/target/release/deps/counters_baseline-f28950e9718856b3: crates/bench/src/bin/counters_baseline.rs

crates/bench/src/bin/counters_baseline.rs:
