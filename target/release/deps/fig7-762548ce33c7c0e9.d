/root/repo/target/release/deps/fig7-762548ce33c7c0e9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-762548ce33c7c0e9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
