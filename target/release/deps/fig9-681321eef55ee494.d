/root/repo/target/release/deps/fig9-681321eef55ee494.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-681321eef55ee494: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
