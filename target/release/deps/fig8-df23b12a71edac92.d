/root/repo/target/release/deps/fig8-df23b12a71edac92.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-df23b12a71edac92: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
