/root/repo/target/release/deps/all_figs-730951c0518b5fac.d: crates/bench/src/bin/all_figs.rs

/root/repo/target/release/deps/all_figs-730951c0518b5fac: crates/bench/src/bin/all_figs.rs

crates/bench/src/bin/all_figs.rs:
