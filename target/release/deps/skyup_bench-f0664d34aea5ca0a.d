/root/repo/target/release/deps/skyup_bench-f0664d34aea5ca0a.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libskyup_bench-f0664d34aea5ca0a.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libskyup_bench-f0664d34aea5ca0a.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/params.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/params.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
