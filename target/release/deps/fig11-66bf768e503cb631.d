/root/repo/target/release/deps/fig11-66bf768e503cb631.d: crates/bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-66bf768e503cb631: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
