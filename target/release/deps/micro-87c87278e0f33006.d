/root/repo/target/release/deps/micro-87c87278e0f33006.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-87c87278e0f33006: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
