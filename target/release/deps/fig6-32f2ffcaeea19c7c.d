/root/repo/target/release/deps/fig6-32f2ffcaeea19c7c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-32f2ffcaeea19c7c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
