/root/repo/target/release/deps/fig10-edc5bf9b5791e3b2.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-edc5bf9b5791e3b2: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
