/root/repo/target/release/deps/fig4-085eb11da682a0ab.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-085eb11da682a0ab: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
