/root/repo/target/release/deps/fig5-8a4226112af91c89.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-8a4226112af91c89: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
