//! The `skyup test --suite <dir>` scenario harness: declarative
//! regression scenarios as small TOML or JSON files.
//!
//! Each scenario declares a competitor dataset (inline rows or a
//! CSV/NDJSON file reference loaded through [`skyup_data::ingest`]), an
//! optional mutation script (add / remove / remove_range ops against
//! the serving engine), a query (products, `k`, cost, budgets), and the
//! expected outcome (an error substring, completion kind, evaluated
//! count, and the top-k answers with per-entry cost tolerances).
//!
//! The harness runs every scenario through the library
//! ([`skyup_serve::Engine`] + [`skyup_serve::execute_query`] — the same
//! code path `skyup serve` executes); with `--serve` each scenario is
//! additionally replayed against a real `skyup serve` child process
//! over the NDJSON wire protocol, so the wire encode/decode path is
//! covered too.
//!
//! Exit codes: `0` — every scenario passed; `1` — any scenario failed
//! (or the suite itself is broken: unreadable dir, malformed scenario
//! file); `2` — every executed scenario passed but at least one was
//! skipped (a `serve_only` scenario without `--serve`).

use skyup_data::ingest::{Format, Frame, IngestOptions, NullPolicy};
use skyup_geom::PointStore;
use skyup_obs::json::Json;
use skyup_obs::{Counter, QueryMetrics, Recorder};
use skyup_serve::proto::parse_cost;
use skyup_serve::server::CostSpec;
use skyup_serve::{execute_query, Engine, EngineConfig, Mutation, QueryRequest, QueryResponse};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::toml_lite::parse_toml;

/// Usage text for `skyup test`, appended to the main help.
pub const TEST_USAGE: &str = "\
test subcommand:
  skyup test --suite <dir> [--serve]
    --suite <dir>          directory of *.toml / *.json scenario files
                           (walked in name order; other extensions and
                           subdirectories are data, not scenarios)
    --serve                additionally replay each scenario against a
                           real `skyup serve` child process over the
                           wire protocol; scenarios marked
                           `serve_only = true` run instead of skipping
    prints one PASS/FAIL/SKIP line per scenario and a summary line
    exit codes: 0 = all passed, 2 = all passed but some skipped,
    1 = any failure (or a broken suite/scenario file)
";

/// A mutation step of a scenario's `[[ops]]` script.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Add a competitor at these coordinates.
    Add(Vec<f64>),
    /// Remove one competitor id.
    Remove(u64),
    /// Remove the half-open id range `[start, end)`.
    RemoveRange(u64, u64),
}

/// One op plus its optional assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// What to mutate.
    pub kind: OpKind,
    /// When set, whether applying this op must (or must not) have
    /// triggered an STR rebuild. For `remove_range`, "any removal in
    /// the range rebuilt".
    pub expect_rebuilt: Option<bool>,
}

/// Where a scenario's competitor set comes from.
#[derive(Clone, Debug)]
pub enum Dataset {
    /// Rows written directly in the scenario file.
    Inline(Vec<Vec<f64>>),
    /// A CSV/NDJSON file loaded through the ingest pipeline, relative
    /// to the scenario file.
    File {
        /// The referenced path as written in the scenario.
        path: PathBuf,
        /// Loader options (format pin, delimiter, header, columns,
        /// negate, null policy).
        opts: IngestOptions,
        /// Optional normalization frame applied after loading.
        frame: Option<Frame>,
    },
}

/// The scenario's query, mirroring the wire protocol's `query` op.
#[derive(Clone, Debug)]
pub struct Query {
    /// Products to evaluate.
    pub products: Vec<Vec<f64>>,
    /// Top-k size.
    pub k: usize,
    /// Cost function (the CLI's `reciprocal:<eps>` / `linear:<slope>`).
    pub cost: CostSpec,
    /// Optional product-count budget.
    pub max_products: Option<u64>,
    /// Optional wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// One expected top-k entry.
#[derive(Clone, Debug)]
pub struct ExpectedAnswer {
    /// Index into `query.products`.
    pub index: usize,
    /// Expected minimal upgrade cost.
    pub cost: f64,
    /// Absolute tolerance on the cost (default `1e-6`).
    pub tol: f64,
    /// Expected upgraded coordinates, compared under `tol` per axis.
    pub upgraded: Option<Vec<f64>>,
}

/// The `[expect]` section.
#[derive(Clone, Debug, Default)]
pub struct Expect {
    /// The scenario must fail with an error whose message contains this
    /// substring (dataset load or query execution).
    pub error: Option<String>,
    /// `"exact"` or `"partial"`.
    pub completion: Option<String>,
    /// Exact number of products fully processed.
    pub evaluated: Option<u64>,
    /// The full expected result list, in rank order. When present the
    /// response must have exactly this many results.
    pub top: Option<Vec<ExpectedAnswer>>,
}

/// A parsed scenario file.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name (the `name` key, defaulting to the file stem).
    pub name: String,
    /// Only meaningful under `--serve`; skipped (exit 2) otherwise.
    pub serve_only: bool,
    /// The competitor set.
    pub dataset: Dataset,
    /// Mutation script, applied in order before the query.
    pub ops: Vec<Op>,
    /// The query, if any (ops-only scenarios are legal).
    pub query: Option<Query>,
    /// Expected outcome.
    pub expect: Expect,
}

// ---------------------------------------------------------------------
// Decoding (shared by TOML and JSON scenario files)
// ---------------------------------------------------------------------

fn num(v: &Json, what: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("{what} must be a number"))
}

fn uint(v: &Json, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

fn point(v: &Json, what: &str) -> Result<Vec<f64>, String> {
    match v {
        Json::Arr(items) => items.iter().map(|x| num(x, what)).collect(),
        _ => Err(format!("{what} must be an array of numbers")),
    }
}

fn rows(v: &Json, what: &str) -> Result<Vec<Vec<f64>>, String> {
    match v {
        Json::Arr(items) => items.iter().map(|r| point(r, what)).collect(),
        _ => Err(format!("{what} must be an array of rows")),
    }
}

fn usize_list(v: &Json, what: &str) -> Result<Vec<usize>, String> {
    match v {
        Json::Arr(items) => items
            .iter()
            .map(|x| uint(x, what).map(|n| n as usize))
            .collect(),
        _ => Err(format!("{what} must be an array of column indexes")),
    }
}

fn bool_key(doc: &Json, key: &str) -> Result<Option<bool>, String> {
    match doc.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

/// Decodes a scenario from its parsed document. `stem` is the file
/// stem used as the default name.
pub fn decode_scenario(doc: &Json, stem: &str) -> Result<Scenario, String> {
    let name = doc
        .get("name")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or("`name` must be a string")
        })
        .transpose()?
        .unwrap_or_else(|| stem.to_string());
    let serve_only = bool_key(doc, "serve_only")?.unwrap_or(false);

    let dataset_doc = doc.get("dataset").ok_or("missing [dataset] section")?;
    let dataset = decode_dataset(dataset_doc)?;

    let mut ops = Vec::new();
    if let Some(v) = doc.get("ops") {
        let Json::Arr(items) = v else {
            return Err("`ops` must be an array of tables".into());
        };
        for (i, item) in items.iter().enumerate() {
            ops.push(decode_op(item).map_err(|e| format!("ops[{i}]: {e}"))?);
        }
    }

    let query = doc.get("query").map(decode_query).transpose()?;
    let expect = doc
        .get("expect")
        .map(decode_expect)
        .transpose()?
        .unwrap_or_default();

    if query.is_none() && expect.error.is_none() && ops.iter().all(|o| o.expect_rebuilt.is_none()) {
        return Err("scenario asserts nothing: add [query]/[expect] or an op assertion".into());
    }
    Ok(Scenario {
        name,
        serve_only,
        dataset,
        ops,
        query,
        expect,
    })
}

fn decode_dataset(doc: &Json) -> Result<Dataset, String> {
    match (doc.get("competitors"), doc.get("file")) {
        (Some(_), Some(_)) => Err("dataset has both `competitors` and `file`".into()),
        (Some(inline), None) => {
            let rows = rows(inline, "dataset.competitors")?;
            if rows.is_empty() {
                return Err("dataset.competitors must not be empty".into());
            }
            Ok(Dataset::Inline(rows))
        }
        (None, Some(file)) => {
            let path = PathBuf::from(file.as_str().ok_or("dataset.file must be a string")?);
            let mut opts = IngestOptions::default();
            if let Some(v) = doc.get("format") {
                opts.format = Some(match v.as_str() {
                    Some("csv") => Format::Csv,
                    Some("ndjson") | Some("jsonl") => Format::Ndjson,
                    _ => return Err("dataset.format must be \"csv\" or \"ndjson\"".into()),
                });
            }
            if let Some(v) = doc.get("delimiter") {
                let s = v.as_str().unwrap_or_default();
                let mut chars = s.chars();
                opts.delimiter = Some(
                    chars
                        .next()
                        .filter(|_| chars.next().is_none())
                        .ok_or("dataset.delimiter must be a single character")?,
                );
            }
            opts.header = bool_key(doc, "header")?;
            if let Some(v) = doc.get("columns") {
                opts.columns = usize_list(v, "dataset.columns")?;
            }
            if let Some(v) = doc.get("negate") {
                opts.negate = usize_list(v, "dataset.negate")?;
            }
            if bool_key(doc, "lenient")?.unwrap_or(false) {
                opts.null_policy = NullPolicy::CountAndSkipRow;
            }
            let frame = match doc.get("frame") {
                None => None,
                Some(v) => Some(match v.as_str() {
                    Some("unit") => Frame::Unit,
                    Some("products") => Frame::Products,
                    _ => return Err("dataset.frame must be \"unit\" or \"products\"".into()),
                }),
            };
            Ok(Dataset::File { path, opts, frame })
        }
        (None, None) => Err("dataset needs `competitors` (inline rows) or `file`".into()),
    }
}

fn decode_op(doc: &Json) -> Result<Op, String> {
    let kind = match (doc.get("add"), doc.get("remove"), doc.get("remove_range")) {
        (Some(p), None, None) => OpKind::Add(point(p, "add")?),
        (None, Some(cid), None) => OpKind::Remove(uint(cid, "remove")?),
        (None, None, Some(range)) => {
            let Json::Arr(bounds) = range else {
                return Err("remove_range must be [start, end)".into());
            };
            let [start, end] = bounds.as_slice() else {
                return Err("remove_range must be [start, end)".into());
            };
            let (start, end) = (uint(start, "remove_range")?, uint(end, "remove_range")?);
            if start >= end {
                return Err("remove_range needs start < end".into());
            }
            OpKind::RemoveRange(start, end)
        }
        _ => return Err("op needs exactly one of `add`, `remove`, `remove_range`".into()),
    };
    Ok(Op {
        kind,
        expect_rebuilt: bool_key(doc, "expect_rebuilt")?,
    })
}

fn decode_query(doc: &Json) -> Result<Query, String> {
    let products = rows(
        doc.get("products").ok_or("query needs `products`")?,
        "query.products",
    )?;
    let k = doc
        .get("k")
        .map(|v| uint(v, "query.k"))
        .transpose()?
        .unwrap_or(1) as usize;
    if k == 0 {
        return Err("query.k must be at least 1".into());
    }
    let cost = match doc.get("cost") {
        None => CostSpec::default(),
        Some(v) => parse_cost(v.as_str().ok_or("query.cost must be a string")?)?,
    };
    let max_products = doc
        .get("max_products")
        .map(|v| uint(v, "query.max_products"))
        .transpose()?;
    let deadline_ms = doc
        .get("deadline_ms")
        .map(|v| uint(v, "query.deadline_ms"))
        .transpose()?;
    Ok(Query {
        products,
        k,
        cost,
        max_products,
        deadline_ms,
    })
}

fn decode_expect(doc: &Json) -> Result<Expect, String> {
    let error = doc
        .get("error")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or("expect.error must be a string")
        })
        .transpose()?;
    let completion = match doc.get("completion") {
        None => None,
        Some(v) => match v.as_str() {
            Some(c @ ("exact" | "partial")) => Some(c.to_string()),
            _ => return Err("expect.completion must be \"exact\" or \"partial\"".into()),
        },
    };
    let evaluated = doc
        .get("evaluated")
        .map(|v| uint(v, "expect.evaluated"))
        .transpose()?;
    let top = match doc.get("top") {
        None => None,
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let index = uint(
                    item.get("index").ok_or("expect.top entries need `index`")?,
                    "expect.top.index",
                )? as usize;
                let cost = num(
                    item.get("cost").ok_or("expect.top entries need `cost`")?,
                    "expect.top.cost",
                )?;
                let tol = item
                    .get("tol")
                    .map(|v| num(v, "expect.top.tol"))
                    .transpose()?
                    .unwrap_or(1e-6);
                let upgraded = item
                    .get("upgraded")
                    .map(|v| point(v, "expect.top.upgraded"))
                    .transpose()?;
                out.push(ExpectedAnswer {
                    index,
                    cost,
                    tol,
                    upgraded,
                });
            }
            Some(out)
        }
        Some(_) => return Err("expect.top must be an array of tables".into()),
    };
    Ok(Expect {
        error,
        completion,
        evaluated,
        top,
    })
}

/// Parses a scenario file (`.toml` or `.json`, by extension).
pub fn load_scenario(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("scenario");
    let doc = match path.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            skyup_obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        _ => parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?,
    };
    decode_scenario(&doc, stem).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// How one scenario ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RunStatus {
    /// Passed; the string is a short description for the PASS line.
    Pass(String),
    /// Failed; each string is one mismatch.
    Fail(Vec<String>),
    /// Not executed (serve_only without `--serve`).
    Skip(String),
}

/// Resolves the scenario's competitor set (inline or ingested file).
/// `base` is the scenario file's directory for relative references.
fn load_dataset(
    scenario: &Scenario,
    base: &Path,
    rec: &mut dyn Recorder,
) -> Result<PointStore, String> {
    match &scenario.dataset {
        Dataset::Inline(rows) => {
            let dims = rows[0].len();
            for (i, r) in rows.iter().enumerate() {
                if r.len() != dims {
                    return Err(format!(
                        "dataset.competitors[{i}] has {} coordinates, expected {dims}",
                        r.len()
                    ));
                }
            }
            Ok(PointStore::from_rows(dims, rows.clone()))
        }
        Dataset::File { path, opts, frame } => {
            let resolved = if path.is_absolute() {
                path.clone()
            } else {
                base.join(path)
            };
            let ingested = skyup_data::ingest(&resolved, opts, rec).map_err(|e| e.to_string())?;
            Ok(match frame {
                Some(f) => skyup_data::normalize_frame(&ingested.store, *f),
                None => ingested.store,
            })
        }
    }
}

/// The answer shape both execution modes reduce to before comparison.
struct Observed {
    completion: String,
    evaluated: u64,
    results: Vec<(usize, f64, Vec<f64>)>,
}

impl Observed {
    fn from_response(resp: &QueryResponse) -> Observed {
        Observed {
            completion: if resp.completion.is_exact() {
                "exact".into()
            } else {
                "partial".into()
            },
            evaluated: resp.evaluated as u64,
            results: resp
                .results
                .iter()
                .map(|r| (r.index, r.cost, r.upgraded.clone()))
                .collect(),
        }
    }
}

fn check_expect(expect: &Expect, obs: &Observed, mode: &str, failures: &mut Vec<String>) {
    if let Some(want) = &expect.completion {
        if *want != obs.completion {
            failures.push(format!(
                "{mode}: expected completion {want}, got {}",
                obs.completion
            ));
        }
    }
    if let Some(want) = expect.evaluated {
        if want != obs.evaluated {
            failures.push(format!(
                "{mode}: expected evaluated {want}, got {}",
                obs.evaluated
            ));
        }
    }
    if let Some(top) = &expect.top {
        if top.len() != obs.results.len() {
            failures.push(format!(
                "{mode}: expected {} results, got {}",
                top.len(),
                obs.results.len()
            ));
        }
        for (rank, (want, got)) in top.iter().zip(&obs.results).enumerate() {
            let (index, cost, upgraded) = got;
            if want.index != *index {
                failures.push(format!(
                    "{mode}: rank {rank}: expected product {}, got {}",
                    want.index, index
                ));
            }
            if (want.cost - cost).abs() > want.tol {
                failures.push(format!(
                    "{mode}: rank {rank}: expected cost {} (tol {}), got {}",
                    want.cost, want.tol, cost
                ));
            }
            if let Some(coords) = &want.upgraded {
                let close = coords.len() == upgraded.len()
                    && coords
                        .iter()
                        .zip(upgraded)
                        .all(|(a, b)| (a - b).abs() <= want.tol);
                if !close {
                    failures.push(format!(
                        "{mode}: rank {rank}: expected upgraded {coords:?}, got {upgraded:?}"
                    ));
                }
            }
        }
    }
}

/// Expands `remove_range` and yields the scripted mutations with their
/// owning op index.
fn expanded_ops(ops: &[Op]) -> Vec<(usize, Mutation)> {
    let mut out = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match &op.kind {
            OpKind::Add(p) => out.push((i, Mutation::AddCompetitor(p.clone()))),
            OpKind::Remove(cid) => out.push((i, Mutation::RemoveCompetitor(*cid))),
            OpKind::RemoveRange(start, end) => {
                out.extend((*start..*end).map(|cid| (i, Mutation::RemoveCompetitor(cid))));
            }
        }
    }
    out
}

fn check_rebuilds(ops: &[Op], rebuilt_by_op: &[bool], mode: &str, failures: &mut Vec<String>) {
    for (i, op) in ops.iter().enumerate() {
        if let Some(want) = op.expect_rebuilt {
            if rebuilt_by_op[i] != want {
                failures.push(format!(
                    "{mode}: ops[{i}]: expected rebuilt={want}, got {}",
                    rebuilt_by_op[i]
                ));
            }
        }
    }
}

/// Runs one scenario through the in-process engine. `base` resolves
/// relative dataset files.
pub fn run_library(scenario: &Scenario, base: &Path, rec: &mut dyn Recorder) -> RunStatus {
    let mut failures = Vec::new();
    let store = match load_dataset(scenario, base, rec) {
        Ok(store) => {
            if let Some(want) = &scenario.expect.error {
                return RunStatus::Fail(vec![format!(
                    "expected an error containing {want:?}, but the dataset loaded"
                )]);
            }
            store
        }
        Err(msg) => {
            return match &scenario.expect.error {
                Some(want) if msg.contains(want.as_str()) => {
                    RunStatus::Pass(format!("rejected: {msg}"))
                }
                Some(want) => RunStatus::Fail(vec![format!(
                    "expected an error containing {want:?}, got: {msg}"
                )]),
                None => RunStatus::Fail(vec![msg]),
            };
        }
    };

    let competitors = store.len();
    let engine = Engine::with_competitors(store, EngineConfig::default());
    let mut rebuilt_by_op = vec![false; scenario.ops.len()];
    for (op_idx, mutation) in expanded_ops(&scenario.ops) {
        match engine.apply(mutation) {
            Ok(outcome) => rebuilt_by_op[op_idx] |= outcome.rebuilt,
            Err(e) => {
                return RunStatus::Fail(vec![format!("library: ops[{op_idx}]: {e}")]);
            }
        }
    }
    check_rebuilds(&scenario.ops, &rebuilt_by_op, "library", &mut failures);

    let mut summary = format!("{competitors} competitors");
    if let Some(query) = &scenario.query {
        let req = QueryRequest {
            products: query.products.clone(),
            k: query.k,
            cost: query.cost,
            max_products: query.max_products,
            deadline: query.deadline_ms.map(Duration::from_millis),
        };
        match execute_query(&engine, &req) {
            Ok(resp) => {
                let obs = Observed::from_response(&resp);
                summary = format!(
                    "{competitors} competitors, {} products, {}",
                    query.products.len(),
                    obs.completion
                );
                check_expect(&scenario.expect, &obs, "library", &mut failures);
            }
            Err(e) => failures.push(format!("library: query failed: {e}")),
        }
    }

    if failures.is_empty() {
        RunStatus::Pass(summary)
    } else {
        RunStatus::Fail(failures)
    }
}

// ---------------------------------------------------------------------
// Serve mode: replay against a real `skyup serve` child process
// ---------------------------------------------------------------------

/// A `skyup serve` child with its client connection; shut down on drop.
struct ServeChild {
    child: std::process::Child,
    client: skyup_serve::Client,
    seed_file: PathBuf,
}

impl ServeChild {
    /// Spawns the current executable as `skyup serve` over `store`.
    fn spawn(store: &PointStore, tag: &str) -> Result<ServeChild, String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let seed_file =
            std::env::temp_dir().join(format!("skyup-scenario-{}-{tag}.csv", std::process::id()));
        skyup_data::write_delimited(&seed_file, store, ',')
            .map_err(|e| format!("{}: {e}", seed_file.display()))?;
        let mut child = std::process::Command::new(exe)
            .args([
                "serve",
                "--competitors",
                &seed_file.display().to_string(),
                "--port",
                "0",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .stdin(std::process::Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning skyup serve: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("listening on ") {
                        break addr.trim().to_string();
                    }
                }
                Some(Err(e)) => {
                    let _ = child.kill();
                    return Err(format!("reading skyup serve stdout: {e}"));
                }
                None => {
                    let _ = child.kill();
                    return Err("skyup serve exited before listening".into());
                }
            }
        };
        let client = skyup_serve::Client::connect(&addr)?;
        Ok(ServeChild {
            child,
            client,
            seed_file,
        })
    }

    fn request(&mut self, line: &str) -> Result<Json, String> {
        let reply = self.client.request(line)?;
        let doc = skyup_obs::json::parse(&reply).map_err(|e| format!("bad reply: {e}"))?;
        if doc.get("ok") != Some(&Json::Bool(true)) {
            let err = doc
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("request rejected");
            return Err(err.to_string());
        }
        Ok(doc)
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.client.request("{\"op\":\"shutdown\"}");
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.seed_file);
    }
}

fn render_point(p: &[f64]) -> Json {
    Json::Arr(p.iter().map(|v| Json::Num(*v)).collect())
}

fn query_request_json(q: &Query) -> String {
    let mut fields = vec![
        ("op", Json::Str("query".into())),
        (
            "products",
            Json::Arr(q.products.iter().map(|p| render_point(p)).collect()),
        ),
        ("k", Json::Uint(q.k as u64)),
        (
            "cost",
            Json::Str(match q.cost {
                CostSpec::Reciprocal(eps) => format!("reciprocal:{eps}"),
                CostSpec::Linear(slope) => format!("linear:{slope}"),
            }),
        ),
    ];
    if let Some(n) = q.max_products {
        fields.push(("max_products", Json::Uint(n)));
    }
    if let Some(ms) = q.deadline_ms {
        fields.push(("deadline_ms", Json::Uint(ms)));
    }
    Json::obj(fields).render()
}

fn observed_from_wire(doc: &Json) -> Result<Observed, String> {
    let completion = doc
        .get("completion")
        .and_then(|v| v.as_str())
        .ok_or("reply missing completion")?
        .to_string();
    let evaluated = doc
        .get("evaluated")
        .and_then(|v| v.as_u64())
        .ok_or("reply missing evaluated")?;
    let Some(Json::Arr(items)) = doc.get("results") else {
        return Err("reply missing results".into());
    };
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        let index = item
            .get("index")
            .and_then(|v| v.as_u64())
            .ok_or("result missing index")? as usize;
        let cost = item
            .get("cost")
            .and_then(|v| v.as_f64())
            .ok_or("result missing cost")?;
        let upgraded = match item.get("upgraded") {
            Some(Json::Arr(coords)) => coords
                .iter()
                .map(|v| v.as_f64().ok_or("bad upgraded coordinate"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        results.push((index, cost, upgraded));
    }
    Ok(Observed {
        completion,
        evaluated,
        results,
    })
}

/// Replays one scenario against a real `skyup serve` process. Error
/// scenarios have nothing to serve and pass through untouched.
pub fn run_serve_mode(scenario: &Scenario, base: &Path, rec: &mut dyn Recorder) -> RunStatus {
    if scenario.expect.error.is_some() {
        return RunStatus::Pass("error scenario: library mode covers it".into());
    }
    let store = match load_dataset(scenario, base, rec) {
        Ok(store) => store,
        Err(msg) => return RunStatus::Fail(vec![msg]),
    };
    let competitors = store.len();
    let tag: String = scenario
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let mut server = match ServeChild::spawn(&store, &tag) {
        Ok(s) => s,
        Err(msg) => return RunStatus::Fail(vec![format!("serve: {msg}")]),
    };

    let mut failures = Vec::new();
    let mut rebuilt_by_op = vec![false; scenario.ops.len()];
    for (op_idx, mutation) in expanded_ops(&scenario.ops) {
        let line = match &mutation {
            Mutation::AddCompetitor(p) => Json::obj(vec![
                ("op", Json::Str("add".into())),
                ("point", render_point(p)),
            ])
            .render(),
            Mutation::RemoveCompetitor(cid) => Json::obj(vec![
                ("op", Json::Str("remove".into())),
                ("cid", Json::Uint(*cid)),
            ])
            .render(),
            Mutation::AddCompetitorWithCid(..) => unreachable!("not scriptable"),
        };
        match server.request(&line) {
            Ok(doc) => {
                if doc.get("rebuilt") == Some(&Json::Bool(true)) {
                    rebuilt_by_op[op_idx] = true;
                }
            }
            Err(e) => return RunStatus::Fail(vec![format!("serve: ops[{op_idx}]: {e}")]),
        }
    }
    check_rebuilds(&scenario.ops, &rebuilt_by_op, "serve", &mut failures);

    let mut summary = format!("{competitors} competitors");
    if let Some(query) = &scenario.query {
        match server
            .request(&query_request_json(query))
            .and_then(|doc| observed_from_wire(&doc))
        {
            Ok(obs) => {
                summary = format!(
                    "{competitors} competitors, {} products, {}",
                    query.products.len(),
                    obs.completion
                );
                check_expect(&scenario.expect, &obs, "serve", &mut failures);
            }
            Err(e) => failures.push(format!("serve: query failed: {e}")),
        }
    }

    if failures.is_empty() {
        RunStatus::Pass(summary)
    } else {
        RunStatus::Fail(failures)
    }
}

// ---------------------------------------------------------------------
// The suite driver
// ---------------------------------------------------------------------

/// Collects `*.toml` / `*.json` scenario files of `dir`, name-sorted.
pub fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.is_file()
                && matches!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("toml") | Some("json")
                )
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "{}: no *.toml or *.json scenario files",
            dir.display()
        ));
    }
    Ok(files)
}

/// Runs `skyup test`. Returns the process exit code (0/1/2).
pub fn run_test(args: &[String]) -> Result<i32, String> {
    let mut suite: Option<PathBuf> = None;
    let mut serve = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--suite" => {
                suite = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--suite needs a value")?,
                ));
                i += 2;
            }
            "--serve" => {
                serve = true;
                i += 1;
            }
            "--help" | "-h" => return Err(TEST_USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{TEST_USAGE}")),
        }
    }
    let suite = suite.ok_or_else(|| format!("--suite missing\n{TEST_USAGE}"))?;
    let mut out = std::io::stdout().lock();
    let code = run_suite(&suite, serve, &mut out).map_err(|e| e.to_string())?;
    Ok(code)
}

/// Runs every scenario of `dir`, writing one line per scenario plus a
/// summary to `out`. Returns the exit code per the 0/1/2 contract.
pub fn run_suite(dir: &Path, serve: bool, out: &mut dyn Write) -> std::io::Result<i32> {
    let files = match scenario_files(dir) {
        Ok(files) => files,
        Err(msg) => {
            writeln!(out, "error: {msg}")?;
            return Ok(1);
        }
    };
    let base = dir;
    let mut metrics = QueryMetrics::new();
    let (mut passed, mut failed, mut skipped) = (0u64, 0u64, 0u64);
    for path in &files {
        let display = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("scenario");
        let scenario = match load_scenario(path) {
            Ok(s) => s,
            Err(msg) => {
                failed += 1;
                writeln!(out, "FAIL {display}")?;
                writeln!(out, "     {msg}")?;
                continue;
            }
        };
        if scenario.serve_only && !serve {
            skipped += 1;
            writeln!(out, "SKIP {display} (needs --serve)")?;
            continue;
        }
        metrics.bump(Counter::ScenariosRun);
        let mut status = run_library(&scenario, base, &mut metrics);
        if serve {
            if let RunStatus::Pass(_) = &status {
                status = run_serve_mode(&scenario, base, &mut metrics);
            }
        }
        match status {
            RunStatus::Pass(summary) => {
                passed += 1;
                writeln!(out, "PASS {display} ({summary})")?;
            }
            RunStatus::Fail(reasons) => {
                failed += 1;
                writeln!(out, "FAIL {display}")?;
                for reason in reasons {
                    writeln!(out, "     {reason}")?;
                }
            }
            RunStatus::Skip(reason) => {
                skipped += 1;
                writeln!(out, "SKIP {display} ({reason})")?;
            }
        }
    }
    writeln!(
        out,
        "\nsuite: {passed} passed, {failed} failed, {skipped} skipped ({} scenarios run)",
        metrics.get(Counter::ScenariosRun)
    )?;
    Ok(if failed > 0 {
        1
    } else if skipped > 0 {
        2
    } else {
        0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_obs::NullRecorder;

    const TOML_SCENARIO: &str = "\
name = \"inline demo\"

[dataset]
competitors = [[0.2, 0.8], [0.8, 0.2], [0.5, 0.5]]

[[ops]]
add = [0.4, 0.4]

[[ops]]
remove = 2

[query]
products = [[1.5, 1.5], [1.2, 1.9]]
k = 2
cost = \"reciprocal:0.001\"

[expect]
completion = \"exact\"
evaluated = 2
";

    #[test]
    fn decodes_toml_scenarios() {
        let doc = parse_toml(TOML_SCENARIO).unwrap();
        let s = decode_scenario(&doc, "stem").unwrap();
        assert_eq!(s.name, "inline demo");
        assert!(!s.serve_only);
        assert!(matches!(&s.dataset, Dataset::Inline(rows) if rows.len() == 3));
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.ops[0].kind, OpKind::Add(vec![0.4, 0.4]));
        assert_eq!(s.ops[1].kind, OpKind::Remove(2));
        let q = s.query.unwrap();
        assert_eq!(q.k, 2);
        assert_eq!(q.cost, CostSpec::Reciprocal(0.001));
        assert_eq!(s.expect.completion.as_deref(), Some("exact"));
        assert_eq!(s.expect.evaluated, Some(2));
    }

    #[test]
    fn decodes_json_scenarios() {
        let doc = skyup_obs::json::parse(
            r#"{"dataset":{"competitors":[[0.1,0.9]]},
                "query":{"products":[[1.5,1.5]],"k":1},
                "expect":{"completion":"exact",
                          "top":[{"index":0,"cost":2.0,"tol":0.5}]}}"#,
        )
        .unwrap();
        let s = decode_scenario(&doc, "wire").unwrap();
        assert_eq!(s.name, "wire");
        let top = s.expect.top.unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].index, 0);
        assert_eq!(top[0].tol, 0.5);
    }

    #[test]
    fn decode_rejects_assertion_free_scenarios() {
        let doc = parse_toml("[dataset]\ncompetitors = [[0.1, 0.2]]\n").unwrap();
        let err = decode_scenario(&doc, "x").unwrap_err();
        assert!(err.contains("asserts nothing"), "{err}");
    }

    #[test]
    fn decode_rejects_ambiguous_ops_and_datasets() {
        let doc = parse_toml(
            "[dataset]\ncompetitors = [[0.1]]\nfile = \"x.csv\"\n[query]\nproducts = [[1.5]]\n",
        )
        .unwrap();
        assert!(decode_scenario(&doc, "x")
            .unwrap_err()
            .contains("both `competitors` and `file`"));

        let doc = parse_toml(
            "[dataset]\ncompetitors = [[0.1]]\n[[ops]]\nadd = [0.2]\nremove = 1\n[query]\nproducts = [[1.5]]\n",
        )
        .unwrap();
        assert!(decode_scenario(&doc, "x")
            .unwrap_err()
            .contains("exactly one of"));
    }

    #[test]
    fn library_mode_runs_an_exact_scenario() {
        let doc = parse_toml(TOML_SCENARIO).unwrap();
        let s = decode_scenario(&doc, "stem").unwrap();
        let status = run_library(&s, Path::new("."), &mut NullRecorder);
        assert!(
            matches!(&status, RunStatus::Pass(d) if d.contains("exact")),
            "{status:?}"
        );
    }

    #[test]
    fn library_mode_reports_mismatches() {
        let doc = parse_toml(
            "[dataset]\ncompetitors = [[0.5, 0.5]]\n\
             [query]\nproducts = [[1.5, 1.5]]\n\
             [expect]\ncompletion = \"partial\"\nevaluated = 7\n",
        )
        .unwrap();
        let s = decode_scenario(&doc, "broken").unwrap();
        let RunStatus::Fail(reasons) = run_library(&s, Path::new("."), &mut NullRecorder) else {
            panic!("expected failure");
        };
        assert_eq!(reasons.len(), 2, "{reasons:?}");
        assert!(reasons[0].contains("expected completion partial"));
        assert!(reasons[1].contains("expected evaluated 7"));
    }

    #[test]
    fn library_mode_matches_error_scenarios() {
        let dir = std::env::temp_dir().join(format!("skyup-scen-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.csv"), "1.0,2.0\nnan,3.0\n").unwrap();
        let doc =
            parse_toml("[dataset]\nfile = \"bad.csv\"\n[expect]\nerror = \"line 2\"\n").unwrap();
        let s = decode_scenario(&doc, "nan").unwrap();
        let status = run_library(&s, &dir, &mut NullRecorder);
        assert!(matches!(&status, RunStatus::Pass(_)), "{status:?}");

        // Wrong substring -> failure.
        let doc =
            parse_toml("[dataset]\nfile = \"bad.csv\"\n[expect]\nerror = \"line 99\"\n").unwrap();
        let s = decode_scenario(&doc, "nan").unwrap();
        assert!(matches!(
            run_library(&s, &dir, &mut NullRecorder),
            RunStatus::Fail(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_scenarios_complete_partially() {
        let doc = parse_toml(
            "[dataset]\ncompetitors = [[0.2, 0.8], [0.8, 0.2]]\n\
             [query]\nproducts = [[1.5, 1.5], [1.2, 1.9], [1.9, 1.2]]\nk = 3\nmax_products = 1\n\
             [expect]\ncompletion = \"partial\"\nevaluated = 1\n\
             top = [{ index = 0, cost = 0.0, tol = 1e9 }]\n",
        )
        .unwrap();
        let s = decode_scenario(&doc, "budget").unwrap();
        let status = run_library(&s, Path::new("."), &mut NullRecorder);
        assert!(matches!(&status, RunStatus::Pass(_)), "{status:?}");
    }
}
