//! The `skyup serve` / `skyup query --connect` subcommands: the CLI
//! face of the [`skyup_serve`] crate.
//!
//! `skyup serve` loads a competitor set (from a delimited file or a
//! `--warm-start` snapshot written by `--save-snapshot`), starts the
//! worker pool, prints `listening on HOST:PORT` on stdout, and runs the
//! NDJSON accept loop until a client sends `{"op":"shutdown"}`.
//!
//! `skyup query --connect HOST:PORT` is a one-shot client: it sends a
//! single request line (query, add, remove, stats, metrics, trace, or
//! shutdown), prints
//! the response line, and exits with the same code contract as the
//! offline CLI — `0` exact, `2` partial (a budget fired or the server
//! shed the request), `1` error.
//!
//! `skyup serve --shard-id I --shards N` starts the same server in the
//! shard role (slab `I` of the partition, globally assigned competitor
//! ids, mutations only via the coordinator's two-phase publish), and
//! `skyup coordinate --shard HOST:PORT ...` starts the scatter/gather
//! coordinator in front of those shards — clients speak to it with the
//! unchanged `query` verbs.

use skyup_data::read_delimited;
use skyup_obs::json::{parse, Json};
use skyup_rtree::persist::write_atomic;
use skyup_serve::proto::parse_cost;
use skyup_serve::{
    bind_local, serve, wal, Client, Coordinator, CoordinatorDispatch, Engine, EngineConfig,
    FsyncPolicy, Partition, ServeConfig, ServeHandle, ShardDispatch, ShardState, TcpLink,
    WalConfig,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Usage text for the serving subcommands, appended to the main help.
pub const SERVE_USAGE: &str = "\
serve subcommands:
  skyup serve (--competitors <file> | --warm-start <snap>) [options]
    --port <n>             TCP port on 127.0.0.1 (default 0 = ephemeral)
    --threads <n>          query worker threads (default 2); with
                           batching on, shard workers per batch
    --queue-cap <n>        bounded request queue capacity (default 64)
    --batch-window-us <n>  batch admission window in microseconds
                           (default 0 = per-request execution)
    --max-batch <n>        most requests coalesced per batch (default 32)
    --slow-ms <n>          slow-query log threshold in milliseconds
                           (default 100; 0 keeps only shed/partial)
    --trace-buffer <n>     flight-recorder depth in traces (default 256)
    --delimiter <c>        cell delimiter for --competitors (default ',')
    --header               skip the first line of --competitors
    --save-snapshot <f>    write a versioned snapshot file, then serve
    --wal <dir>            make mutations durable: append to a
                           write-ahead log before acking; on restart,
                           recover checkpoint + log (tolerating a torn
                           tail) and ignore --competitors/--warm-start
    --fsync <policy>       when WAL appends reach disk: always (default),
                           interval:<n>, or never
    --checkpoint-every <n> snapshot + truncate the log every n appends
                           (default 1024; 0 = only the initial one)
    --shard-id <i>         serve shard i of an n-shard topology (needs
                           --shards; seeds only this shard's partition
                           slab of --competitors, under global ids)
    --shards <n>           shard count of the topology
    prints `listening on HOST:PORT`, serves NDJSON requests until a
    client sends {\"op\":\"shutdown\"}

  skyup coordinate --shard HOST:PORT [--shard ...] [options]
    --shard <addr>         a shard server started with --shard-id i
                           --shards n; repeat once per shard, in
                           shard-id order
    --competitors <file>   the FULL competitor file every shard was
                           seeded from (assigns ids and ownership)
    --threads <n>          merge kernel threads (default 1)
    --port <n>             TCP port on 127.0.0.1 (default 0 = ephemeral)
    --delimiter <c>, --header   as for serve
    scatter/gather front-end: clients send the same query/add/remove/
    stats/health/metrics verbs; answers are bit-identical to a single
    server holding the full set at the same epoch

  skyup query --connect HOST:PORT [op]
    -t <x,y,...>           product to evaluate (repeatable; default op)
    -k <n>                 top-k (default 1)
    --cost reciprocal:<eps> | linear:<slope>
    --max-products <n>     per-request product budget
    --deadline-ms <n>      per-request wall-clock deadline
    --add <x,y,...>        add a competitor instead of querying
    --remove <cid>         remove a competitor by id
    --stats                read engine stats and serving counters
    --health               liveness probe: epoch, WAL seq, queue depth,
                           recovery/read-only state
    --metrics              read per-class latency histograms
    --trace <n>            dump the last n traces and the slow-query log
    --shutdown             stop the server
    connection-refused is retried 3 times with jittered backoff (a
    restarting server's listen window); other errors fail fast
    exit codes: 0 = exact, 2 = partial (budget fired or request shed),
    1 = error
";

fn value(args: &[String], i: usize, flag: &str) -> Result<String, String> {
    args.get(i + 1)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_point(spec: &str) -> Result<Vec<f64>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("`{s}` is not a number"))
        })
        .collect()
}

/// Loads every column of a delimited file (all columns of line 1).
fn load_points(
    path: &Path,
    delimiter: char,
    header: bool,
) -> Result<skyup_geom::PointStore, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    if header {
        lines.next();
    }
    let first = lines
        .next()
        .ok_or_else(|| format!("{}: empty file", path.display()))?;
    let columns: Vec<usize> = (0..first.split(delimiter).count()).collect();
    read_delimited(path, delimiter, header, &columns)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs `skyup serve`. Blocks until a client requests shutdown.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let mut competitors: Option<PathBuf> = None;
    let mut warm_start: Option<PathBuf> = None;
    let mut save_snapshot: Option<PathBuf> = None;
    let mut wal_dir: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut checkpoint_every = 1024u64;
    let mut port = 0u16;
    let mut delimiter = ',';
    let mut header = false;
    let mut shard_id: Option<u32> = None;
    let mut shards: Option<u32> = None;
    let mut cfg = ServeConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shard-id" => {
                shard_id = Some(
                    value(args, i, "--shard-id")?
                        .parse()
                        .map_err(|e| format!("--shard-id: {e}"))?,
                );
                i += 2;
            }
            "--shards" => {
                shards = Some(
                    value(args, i, "--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                );
                i += 2;
            }
            "--competitors" => {
                competitors = Some(PathBuf::from(value(args, i, "--competitors")?));
                i += 2;
            }
            "--warm-start" => {
                warm_start = Some(PathBuf::from(value(args, i, "--warm-start")?));
                i += 2;
            }
            "--save-snapshot" => {
                save_snapshot = Some(PathBuf::from(value(args, i, "--save-snapshot")?));
                i += 2;
            }
            "--wal" => {
                wal_dir = Some(PathBuf::from(value(args, i, "--wal")?));
                i += 2;
            }
            "--fsync" => {
                fsync = FsyncPolicy::parse(&value(args, i, "--fsync")?)?;
                i += 2;
            }
            "--checkpoint-every" => {
                checkpoint_every = value(args, i, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                i += 2;
            }
            "--port" => {
                port = value(args, i, "--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
                i += 2;
            }
            "--threads" => {
                cfg.threads = value(args, i, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                i += 2;
            }
            "--queue-cap" => {
                cfg.queue_cap = value(args, i, "--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                i += 2;
            }
            "--batch-window-us" => {
                cfg.batch_window_us = value(args, i, "--batch-window-us")?
                    .parse()
                    .map_err(|e| format!("--batch-window-us: {e}"))?;
                i += 2;
            }
            "--max-batch" => {
                cfg.max_batch = value(args, i, "--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
                i += 2;
            }
            "--slow-ms" => {
                cfg.slow_ms = value(args, i, "--slow-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?;
                i += 2;
            }
            "--trace-buffer" => {
                cfg.trace_buffer = value(args, i, "--trace-buffer")?
                    .parse()
                    .map_err(|e| format!("--trace-buffer: {e}"))?;
                i += 2;
            }
            "--delimiter" => {
                let v = value(args, i, "--delimiter")?;
                let mut chars = v.chars();
                delimiter = chars
                    .next()
                    .filter(|_| chars.next().is_none())
                    .ok_or("--delimiter takes a single character")?;
                i += 2;
            }
            "--header" => {
                header = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}\n{SERVE_USAGE}")),
        }
    }

    if competitors.is_some() && warm_start.is_some() {
        return Err("--competitors and --warm-start are mutually exclusive".into());
    }
    let shard = match (shard_id, shards) {
        (None, None) => None,
        (Some(id), Some(n)) => {
            if id >= n {
                return Err(format!("--shard-id {id} is out of range for --shards {n}"));
            }
            if warm_start.is_some() {
                return Err(
                    "--warm-start cannot seed a shard; give the full --competitors file".into(),
                );
            }
            Some((id, n))
        }
        _ => return Err("--shard-id and --shards go together".into()),
    };
    let wal_cfg = wal_dir.map(|dir| WalConfig {
        dir,
        fsync,
        checkpoint_every,
        ..WalConfig::new("")
    });

    // With durable state on disk, the WAL directory is the source of
    // truth: recovery wins over any seed flags, so a restart script can
    // keep passing the same arguments it booted with.
    let engine = match &wal_cfg {
        Some(wc) if wal::has_state(&wc.dir) => {
            if competitors.is_some() || warm_start.is_some() {
                eprintln!(
                    "note: {} holds durable state; recovering from it and \
                     ignoring --competitors/--warm-start",
                    wc.dir.display()
                );
            }
            let engine =
                Engine::recover(EngineConfig::default(), wc.clone()).map_err(|e| e.to_string())?;
            let d = engine.durability().expect("recovered engine has a wal");
            eprintln!(
                "recovered: checkpoint seq {}, {} records replayed, {} torn tail truncated",
                d.recovery.checkpoint_seq, d.recovery.replayed, d.recovery.torn_truncated
            );
            engine
        }
        _ => match (&competitors, &warm_start, &wal_cfg) {
            (None, None, _) => {
                return Err(format!(
                    "serve needs --competitors <file> or --warm-start <snap>\n{SERVE_USAGE}"
                ))
            }
            (Some(path), None, wc) => {
                let store = load_points(path, delimiter, header)?;
                let engine = match shard {
                    // A shard seeds its slab of the partition under the
                    // global ids the coordinator will assign from — row
                    // index in the full file == competitor id.
                    Some((id, n)) => {
                        let partition = Partition::new(n).map_err(|e| e.to_string())?;
                        let next_cid = store.len() as u64;
                        let (slab, cid_of) = partition.shard_seed(&store, id);
                        Engine::with_identified_competitors(
                            slab,
                            cid_of,
                            next_cid,
                            EngineConfig::default(),
                        )
                        .map_err(|e| e.to_string())?
                    }
                    None => Engine::with_competitors(store, EngineConfig::default()),
                };
                match wc {
                    Some(wc) => engine.into_durable(wc.clone()).map_err(|e| e.to_string())?,
                    None => engine,
                }
            }
            (None, Some(path), None) => {
                let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
                Engine::from_snapshot_bytes(&bytes, EngineConfig::default())
                    .map_err(|e| e.to_string())?
            }
            (None, Some(path), Some(wc)) => {
                // Durability over a warm start: seed from the snapshot's
                // store; the initial checkpoint then owns id assignment.
                let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
                let (store, _) = skyup_rtree::persist::snapshot_from_bytes(&bytes)
                    .map_err(|e| format!("{}: snapshot file rejected: {e}", path.display()))?;
                Engine::with_durability(store, EngineConfig::default(), wc.clone())
                    .map_err(|e| e.to_string())?
            }
            (Some(_), Some(_), _) => unreachable!("checked above"),
        },
    };
    if let Some(path) = &save_snapshot {
        write_atomic(path, &engine.save_snapshot_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    serve_on(engine, port, cfg, shard)
}

/// Binds, prints the `listening on` line, and runs the accept loop —
/// as a plain single server, or in the shard role when `--shard-id`
/// was given (direct mutations rejected; `stage`/`flip`/`local_probe`
/// served).
fn serve_on(
    engine: Engine,
    port: u16,
    cfg: ServeConfig,
    shard: Option<(u32, u32)>,
) -> Result<(), String> {
    let (listener, addr) = bind_local(port).map_err(|e| format!("bind: {e}"))?;
    let handle = ServeHandle::start(Arc::new(engine), cfg);
    println!("listening on {addr}");
    std::io::stdout().flush().ok();
    match shard {
        Some((id, n)) => serve(
            ShardDispatch(Arc::new(ShardState::new(handle, id, n))),
            listener,
        ),
        None => serve(handle, listener),
    }
    .map_err(|e| format!("serve: {e}"))
}

/// Runs `skyup coordinate`: the scatter/gather front-end over shard
/// servers. Blocks until a client requests shutdown.
pub fn run_coordinate(args: &[String]) -> Result<(), String> {
    let mut shard_addrs: Vec<String> = Vec::new();
    let mut competitors: Option<PathBuf> = None;
    let mut port = 0u16;
    let mut threads = 1usize;
    let mut delimiter = ',';
    let mut header = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shard" => {
                shard_addrs.push(value(args, i, "--shard")?);
                i += 2;
            }
            "--competitors" => {
                competitors = Some(PathBuf::from(value(args, i, "--competitors")?));
                i += 2;
            }
            "--port" => {
                port = value(args, i, "--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
                i += 2;
            }
            "--threads" => {
                threads = value(args, i, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                i += 2;
            }
            "--delimiter" => {
                let v = value(args, i, "--delimiter")?;
                let mut chars = v.chars();
                delimiter = chars
                    .next()
                    .filter(|_| chars.next().is_none())
                    .ok_or("--delimiter takes a single character")?;
                i += 2;
            }
            "--header" => {
                header = true;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}\n{SERVE_USAGE}")),
        }
    }

    if shard_addrs.is_empty() {
        return Err(format!(
            "coordinate needs at least one --shard HOST:PORT\n{SERVE_USAGE}"
        ));
    }
    let seed_path = competitors
        .ok_or_else(|| format!("coordinate needs --competitors <file>\n{SERVE_USAGE}"))?;
    let seed = load_points(&seed_path, delimiter, header)?;
    let partition = Partition::new(shard_addrs.len() as u32).map_err(|e| e.to_string())?;
    let links: Vec<TcpLink> = shard_addrs.iter().map(|a| TcpLink::new(a)).collect();
    let coordinator = Coordinator::new(links, partition, &seed)
        .map_err(|e| e.to_string())?
        .with_threads(threads);

    let (listener, addr) = bind_local(port).map_err(|e| format!("bind: {e}"))?;
    println!("listening on {addr}");
    std::io::stdout().flush().ok();
    serve(CoordinatorDispatch(Arc::new(coordinator)), listener).map_err(|e| format!("serve: {e}"))
}

enum ClientOp {
    Query,
    Add(Vec<f64>),
    Remove(u64),
    Stats,
    Health,
    Metrics,
    Trace(u64),
    Shutdown,
}

/// Runs `skyup query --connect`: sends one request line, prints the
/// response, and returns the process exit code.
pub fn run_query(args: &[String]) -> Result<i32, String> {
    let mut connect: Option<String> = None;
    let mut products: Vec<Vec<f64>> = Vec::new();
    let mut k = 1u64;
    let mut cost: Option<String> = None;
    let mut max_products: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut op = ClientOp::Query;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                connect = Some(value(args, i, "--connect")?);
                i += 2;
            }
            "-t" => {
                products.push(parse_point(&value(args, i, "-t")?)?);
                i += 2;
            }
            "-k" => {
                k = value(args, i, "-k")?
                    .parse()
                    .map_err(|e| format!("-k: {e}"))?;
                i += 2;
            }
            "--cost" => {
                let spec = value(args, i, "--cost")?;
                parse_cost(&spec)?; // validate locally for a fast error
                cost = Some(spec);
                i += 2;
            }
            "--max-products" => {
                max_products = Some(
                    value(args, i, "--max-products")?
                        .parse()
                        .map_err(|e| format!("--max-products: {e}"))?,
                );
                i += 2;
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    value(args, i, "--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
                i += 2;
            }
            "--add" => {
                op = ClientOp::Add(parse_point(&value(args, i, "--add")?)?);
                i += 2;
            }
            "--remove" => {
                op = ClientOp::Remove(
                    value(args, i, "--remove")?
                        .parse()
                        .map_err(|e| format!("--remove: {e}"))?,
                );
                i += 2;
            }
            "--stats" => {
                op = ClientOp::Stats;
                i += 1;
            }
            "--health" => {
                op = ClientOp::Health;
                i += 1;
            }
            "--metrics" => {
                op = ClientOp::Metrics;
                i += 1;
            }
            "--trace" => {
                op = ClientOp::Trace(
                    value(args, i, "--trace")?
                        .parse()
                        .map_err(|e| format!("--trace: {e}"))?,
                );
                i += 2;
            }
            "--shutdown" => {
                op = ClientOp::Shutdown;
                i += 1;
            }
            other => return Err(format!("unknown argument {other}\n{SERVE_USAGE}")),
        }
    }

    let addr = connect.ok_or_else(|| format!("query needs --connect HOST:PORT\n{SERVE_USAGE}"))?;
    let request = match op {
        ClientOp::Query => {
            if products.is_empty() {
                return Err(format!(
                    "query needs at least one -t <x,y,...>\n{SERVE_USAGE}"
                ));
            }
            let mut fields = vec![
                ("op", Json::Str("query".into())),
                (
                    "products",
                    Json::Arr(
                        products
                            .iter()
                            .map(|p| Json::Arr(p.iter().map(|&v| Json::Num(v)).collect()))
                            .collect(),
                    ),
                ),
                ("k", Json::Uint(k)),
            ];
            if let Some(spec) = &cost {
                fields.push(("cost", Json::Str(spec.clone())));
            }
            if let Some(n) = max_products {
                fields.push(("max_products", Json::Uint(n)));
            }
            if let Some(n) = deadline_ms {
                fields.push(("deadline_ms", Json::Uint(n)));
            }
            Json::obj(fields)
        }
        ClientOp::Add(point) => Json::obj(vec![
            ("op", Json::Str("add".into())),
            (
                "point",
                Json::Arr(point.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ]),
        ClientOp::Remove(cid) => Json::obj(vec![
            ("op", Json::Str("remove".into())),
            ("cid", Json::Uint(cid)),
        ]),
        ClientOp::Stats => Json::obj(vec![("op", Json::Str("stats".into()))]),
        ClientOp::Health => Json::obj(vec![("op", Json::Str("health".into()))]),
        ClientOp::Metrics => Json::obj(vec![("op", Json::Str("metrics".into()))]),
        ClientOp::Trace(n) => Json::obj(vec![
            ("op", Json::Str("trace".into())),
            ("n", Json::Uint(n)),
        ]),
        ClientOp::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
    };

    // The shared serve-crate client carries the bounded
    // connection-refused retry (a restarting server's listen window).
    let mut client = Client::connect(&addr)?;
    let line = client.request(&request.render())?;
    println!("{line}");

    let doc = parse(&line).map_err(|e| format!("bad response: {e}"))?;
    if !matches!(doc.get("ok"), Some(Json::Bool(true))) {
        return Ok(1);
    }
    match doc.get("completion").and_then(|v| v.as_str()) {
        Some("partial") => Ok(2),
        _ => Ok(0),
    }
}
