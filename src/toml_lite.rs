//! A minimal TOML-subset parser for scenario files.
//!
//! The offline build cannot pull a TOML crate, and scenario files only
//! need a small, regular slice of the language. The parser produces the
//! same [`Json`] value the hand-rolled JSON parser does, so the
//! scenario decoder works on one AST regardless of the file format.
//!
//! Supported subset:
//! * bare keys and `key = value` pairs,
//! * `[table]` and `[table.sub]` headers,
//! * `[[array-of-tables]]` headers,
//! * values: basic strings (`"..."` with `\"`, `\\`, `\n`, `\t`
//!   escapes), literal strings (`'...'`), integers, floats, booleans,
//!   (nested, possibly multi-line) arrays, and inline tables
//!   (`{ k = v, ... }`),
//! * `#` comments and blank lines.
//!
//! Not supported (and rejected with a line-numbered error): dotted
//! keys, dates, multi-line strings, and key reassignment.

use skyup_obs::json::Json;

/// Parses the subset into a [`Json::Obj`]. Errors carry the 1-based
/// line number.
pub fn parse_toml(input: &str) -> Result<Json, String> {
    Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    }
    .parse_document()
}

/// One step of a table path: an object key, or "the last element" of an
/// array of tables.
#[derive(Clone, Debug)]
enum Seg {
    Key(String),
    Last(String),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u64,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> String {
        format!("line {}: {}", self.line, msg.into())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// Skips spaces and tabs (not newlines) and comments-to-EOL.
    fn skip_inline_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'#' => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips all whitespace including newlines and comments.
    fn skip_ws(&mut self) {
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                return;
            }
        }
    }

    fn expect_eol(&mut self) -> Result<(), String> {
        self.skip_inline_ws();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err(format!("expected end of line, found `{}`", b as char))),
        }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        let mut root = Json::Obj(Vec::new());
        let mut current: Vec<Seg> = Vec::new();
        loop {
            self.skip_ws();
            let Some(b) = self.peek() else {
                return Ok(root);
            };
            if b == b'[' {
                current = self.parse_header(&mut root)?;
            } else {
                let key = self.parse_key()?;
                self.skip_inline_ws();
                if self.peek() != Some(b'=') {
                    return Err(self.err(format!("expected `=` after key `{key}`")));
                }
                self.bump();
                self.skip_inline_ws();
                let value = self.parse_value()?;
                let table = resolve_mut(&mut root, &current)
                    .ok_or_else(|| self.err("internal: lost the current table"))?;
                let Json::Obj(fields) = table else {
                    return Err(self.err("internal: current table is not a table"));
                };
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(self.err(format!("key `{key}` is set twice")));
                }
                fields.push((key, value));
                self.expect_eol()?;
            }
        }
    }

    /// Parses `[path]` or `[[path]]`, creates the table, and returns
    /// the segment path to it.
    fn parse_header(&mut self, root: &mut Json) -> Result<Vec<Seg>, String> {
        self.bump(); // '['
        let aot = self.peek() == Some(b'[');
        if aot {
            self.bump();
        }
        self.skip_inline_ws();
        let mut keys = vec![self.parse_key()?];
        loop {
            self.skip_inline_ws();
            match self.peek() {
                Some(b'.') => {
                    self.bump();
                    self.skip_inline_ws();
                    keys.push(self.parse_key()?);
                }
                Some(b']') => break,
                other => {
                    return Err(self.err(format!(
                        "expected `.` or `]` in table header, found {other:?}"
                    )))
                }
            }
        }
        self.bump(); // ']'
        if aot && self.bump() != Some(b']') {
            return Err(self.err("array-of-tables header needs `]]`"));
        }

        // Walk/create the intermediate tables.
        let mut path: Vec<Seg> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let last = i + 1 == keys.len();
            let table = resolve_mut(root, &path)
                .ok_or_else(|| self.err("internal: lost the table path"))?;
            let Json::Obj(fields) = table else {
                return Err(self.err(format!("`{key}` is not inside a table")));
            };
            let existing = fields.iter().position(|(k, _)| k == key);
            match (last, aot) {
                (true, true) => {
                    let idx = match existing {
                        Some(i) => i,
                        None => {
                            fields.push((key.clone(), Json::Arr(Vec::new())));
                            fields.len() - 1
                        }
                    };
                    let Json::Arr(items) = &mut fields[idx].1 else {
                        return Err(self.err(format!("`{key}` is not an array of tables")));
                    };
                    items.push(Json::Obj(Vec::new()));
                    path.push(Seg::Last(key.clone()));
                }
                (true, false) => {
                    if existing.is_some() {
                        return Err(self.err(format!("table `{key}` is defined twice")));
                    }
                    fields.push((key.clone(), Json::Obj(Vec::new())));
                    path.push(Seg::Key(key.clone()));
                }
                (false, _) => {
                    match existing {
                        Some(i) => match &fields[i].1 {
                            Json::Obj(_) => path.push(Seg::Key(key.clone())),
                            Json::Arr(_) => path.push(Seg::Last(key.clone())),
                            _ => {
                                return Err(
                                    self.err(format!("`{key}` is not a table to descend into"))
                                )
                            }
                        },
                        None => {
                            fields.push((key.clone(), Json::Obj(Vec::new())));
                            path.push(Seg::Key(key.clone()));
                        }
                    };
                }
            }
        }
        self.expect_eol()?;
        Ok(path)
    }

    fn parse_key(&mut self) -> Result<String, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected a key"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string().map(Json::Str),
            Some(b'\'') => self.parse_literal_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(_) => self.parse_number(),
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, String> {
        self.bump(); // '"'
        let mut out = String::new();
        loop {
            if matches!(self.peek(), None | Some(b'\n')) {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                None | Some(b'\n') => unreachable!("peeked above"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => return Err(self.err(format!("unsupported escape {other:?}"))),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, String> {
        self.bump(); // '\''
        let mut out = String::new();
        loop {
            if matches!(self.peek(), None | Some(b'\n')) {
                return Err(self.err("unterminated string"));
            }
            match self.bump() {
                Some(b'\'') => return Ok(out),
                Some(b) => out.push(b as char),
                None => unreachable!("peeked above"),
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Json, String> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                return Ok(Json::Bool(value));
            }
        }
        Err(self.err("expected `true` or `false`"))
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E' | b'_') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).replace('_', "");
        if text.is_empty() {
            return Err(self.err("expected a value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("`{text}` is not a number")))?;
        if !n.is_finite() {
            return Err(self.err(format!("`{text}` is not finite")));
        }
        Ok(Json::Num(n))
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Json::Arr(items));
            }
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                other => return Err(self.err(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Json, String> {
        self.bump(); // '{'
        let mut fields: Vec<(String, Json)> = Vec::new();
        loop {
            self.skip_inline_ws();
            if self.peek() == Some(b'}') {
                self.bump();
                return Ok(Json::Obj(fields));
            }
            let key = self.parse_key()?;
            self.skip_inline_ws();
            if self.bump() != Some(b'=') {
                return Err(self.err(format!("expected `=` after key `{key}`")));
            }
            self.skip_inline_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_inline_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {}
                other => return Err(self.err(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

fn resolve_mut<'j>(root: &'j mut Json, path: &[Seg]) -> Option<&'j mut Json> {
    let mut node = root;
    for seg in path {
        node = match seg {
            Seg::Key(k) => match node {
                Json::Obj(fields) => fields
                    .iter_mut()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v)?,
                _ => return None,
            },
            Seg::Last(k) => match node {
                Json::Obj(fields) => {
                    let arr = fields
                        .iter_mut()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v)?;
                    match arr {
                        Json::Arr(items) => items.last_mut()?,
                        _ => return None,
                    }
                }
                _ => return None,
            },
        };
    }
    Some(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_tables_and_arrays() {
        let doc = parse_toml(
            "name = \"demo\"            # trailing comment\n\
             count = 3\n\
             ratio = 0.5\n\
             flag = true\n\
             \n\
             [dataset]\n\
             competitors = [[0.1, 0.2], [0.3, 0.4]]\n\
             \n\
             [query]\n\
             k = 2\n",
        )
        .unwrap();
        assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("demo"));
        assert_eq!(doc.get("count").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(doc.get("ratio").and_then(|v| v.as_f64()), Some(0.5));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        let rows = doc.get("dataset").unwrap().get("competitors").unwrap();
        let Json::Arr(rows) = rows else { panic!() };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get(""), None); // rows are arrays, not objects
        assert_eq!(
            doc.get("query").unwrap().get("k").and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn array_of_tables_in_order() {
        let doc = parse_toml(
            "[[ops]]\nadd = [0.5, 0.5]\n\
             [[ops]]\nremove = 3\n\
             [[ops]]\nremove = 4\nexpect_rebuilt = true\n",
        )
        .unwrap();
        let Some(Json::Arr(ops)) = doc.get("ops") else {
            panic!()
        };
        assert_eq!(ops.len(), 3);
        assert!(ops[0].get("add").is_some());
        assert_eq!(ops[1].get("remove").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(ops[2].get("expect_rebuilt"), Some(&Json::Bool(true)));
    }

    #[test]
    fn multiline_arrays_and_inline_tables() {
        let doc = parse_toml(
            "[expect]\n\
             top = [\n\
               { index = 0, cost = 1.25 },  # first\n\
               { index = 1, cost = 2.5 },\n\
             ]\n",
        )
        .unwrap();
        let Some(Json::Arr(top)) = doc.get("expect").unwrap().get("top") else {
            panic!()
        };
        assert_eq!(top.len(), 2);
        assert_eq!(top[1].get("cost").and_then(|v| v.as_f64()), Some(2.5));
    }

    #[test]
    fn dotted_headers_and_negatives() {
        let doc = parse_toml("[a.b]\nx = -1.5\ny = 'lit'\n").unwrap();
        let b = doc.get("a").unwrap().get("b").unwrap();
        assert_eq!(b.get("x").and_then(|v| v.as_f64()), Some(-1.5));
        assert_eq!(b.get("y").and_then(|v| v.as_str()), Some("lit"));
    }

    #[test]
    fn errors_name_the_line() {
        for (text, needle) in [
            ("a = 1\na = 2\n", "line 2"),
            ("[t]\nbad\n", "line 2"),
            ("x = \"unterminated\n", "line 1"),
            ("x = nan\n", "line 1"),
            ("[[t]]\n[t]\n", "line 2"),
        ] {
            let err = parse_toml(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }
}
