//! The `skyup` command-line tool: top-k product upgrading over
//! delimited text files. See `skyup --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match skyup::cli::Config::parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match skyup::cli::run(&cfg) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
