//! The `skyup` command-line tool: top-k product upgrading over
//! delimited text files. See `skyup --help`.
//!
//! Exit codes: `0` — the printed answer is exact; `2` — a
//! `--timeout-ms` / `--max-node-visits` budget fired and the printed
//! answer is the best found so far (partial); `1` — error (bad
//! arguments, unreadable input, invalid data).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            if let Err(msg) = skyup::serve_cli::run_serve(&args[1..]) {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
            return;
        }
        Some("coordinate") => {
            if let Err(msg) = skyup::serve_cli::run_coordinate(&args[1..]) {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
            return;
        }
        Some("query") => match skyup::serve_cli::run_query(&args[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        },
        Some("ingest") => match skyup::ingest_cli::run_ingest(&args[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        },
        Some("test") => match skyup::scenario::run_test(&args[1..]) {
            Ok(code) => std::process::exit(code),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        },
        _ => {}
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", skyup::cli::USAGE);
        print!("{}", skyup::serve_cli::SERVE_USAGE);
        print!("{}", skyup::ingest_cli::INGEST_USAGE);
        print!("{}", skyup::scenario::TEST_USAGE);
        return;
    }
    let cfg = match skyup::cli::Config::parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    match skyup::cli::run(&cfg) {
        Ok((report, completion)) => {
            print!("{report}");
            if !completion.is_exact() {
                std::process::exit(2);
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
