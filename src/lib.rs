//! # skyup — top-k product upgrading over skylines
//!
//! A production-quality Rust implementation of *Upgrading Uncompetitive
//! Products Economically* (Hua Lu and Christian S. Jensen, ICDE 2012).
//!
//! Given a set `P` of competitor products and a set `T` of your own
//! uncompetitive products — both as multidimensional quality points
//! where smaller is better on every dimension — the library finds the
//! `k` products of `T` that can be **upgraded most cheaply** so that no
//! competitor dominates them, under a monotone manufacturing-cost model.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`geom`] — point stores, rectangles, dominance, anti-dominant
//!   regions;
//! * [`rtree`] — a from-scratch R-tree (STR bulk loading + Guttman
//!   insertion) whose node structure is open for traversal algorithms;
//! * [`skyline`] — BNL / SFS / BBS skyline algorithms and the
//!   constrained `getDominatingSky` traversal;
//! * [`core`] — the cost-function framework, Algorithm 1
//!   (single-product upgrade), the probing algorithms, and the
//!   progressive R-tree join with the NLB / CLB / ALB lower bounds;
//! * [`data`] — synthetic workload generators and the wine-quality-like
//!   real-data stand-in used by the paper's experiments;
//! * [`obs`] — the zero-dependency instrumentation layer: a `Recorder`
//!   trait threaded through every algorithm, counters matching the
//!   paper's cost model, span timers, and JSON/text reports (see the
//!   CLI's `--stats`).
//!
//! ## Example
//!
//! ```
//! use skyup::core::cost::SumCost;
//! use skyup::core::join::{JoinUpgrader, LowerBound};
//! use skyup::core::UpgradeConfig;
//! use skyup::geom::PointStore;
//! use skyup::rtree::{RTree, RTreeParams};
//!
//! // Competitor phones: (weight, -standby, -megapixels) — negate
//! // larger-is-better attributes so smaller is uniformly better.
//! let p = PointStore::from_rows(3, vec![
//!     vec![140.0, -200.0, -2.0],
//!     vec![100.0, -160.0, -3.0],
//!     vec![120.0, -180.0, -4.0],
//! ]);
//! // Our phones, all currently dominated.
//! let t = PointStore::from_rows(3, vec![
//!     vec![150.0, -120.0, -2.0],
//!     vec![180.0, -130.0, -1.0],
//! ]);
//!
//! let rp = RTree::bulk_load(&p, RTreeParams::default());
//! let rt = RTree::bulk_load(&t, RTreeParams::default());
//! let cost = SumCost::reciprocal(3, 250.0); // keep 1/(v+eps) finite on negated dims
//!
//! let mut join = JoinUpgrader::new(
//!     &p, &rp, &t, &rt, &cost, UpgradeConfig::default(), LowerBound::Conservative,
//! );
//! let best = join.next().unwrap();
//! println!("upgrade {:?} -> {:?} at cost {}", best.original, best.upgraded, best.cost);
//! ```

pub mod cli;
pub mod ingest_cli;
pub mod scenario;
pub mod serve_cli;
pub mod toml_lite;

pub use skyup_core as core;
pub use skyup_data as data;
pub use skyup_geom as geom;
pub use skyup_obs as obs;
pub use skyup_rtree as rtree;
pub use skyup_skyline as skyline;

/// Crate version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let store = crate::geom::PointStore::new(2);
        assert_eq!(store.dims(), 2);
        assert!(!crate::VERSION.is_empty());
    }
}
