//! Implementation of the `skyup` command-line tool.
//!
//! The binary (`cargo run --bin skyup -- …`) loads competitor and
//! product sets from delimited text files and prints the top-k upgrade
//! plan. All logic lives here so the argument parsing and the run can
//! be unit-tested without spawning processes.

use skyup_core::cost::{AttributeCost, LinearCost, SumCost};
use skyup_core::join::{BoundMode, LowerBound};
use skyup_core::{
    basic_probing_topk_rec, improved_probing_topk_rec, improved_probing_topk_scheduled_rec,
    try_basic_probing_topk, try_improved_probing_topk, try_improved_probing_topk_scheduled,
    Completion, ExecutionLimits, JoinUpgrader, ProbeStrategy, UpgradeConfig, UpgradeResult,
};
use skyup_data::{negate_dimensions, normalize_unit, read_delimited};
use skyup_geom::PointStore;
use skyup_obs::{timed, Phase, QueryMetrics, Recorder};
use skyup_rtree::{RTree, RTreeParams};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Which algorithm the CLI runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 2 (baseline).
    Basic,
    /// Improved probing (Algorithm 2 + `getDominatingSky`).
    Probing,
    /// The progressive R-tree join (Algorithm 4).
    Join,
}

/// Parsed CLI configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Path to the competitor file.
    pub competitors: PathBuf,
    /// Path to the own-product file.
    pub products: PathBuf,
    /// Number of products to upgrade.
    pub k: usize,
    /// Cell delimiter.
    pub delimiter: char,
    /// Whether the files start with a header line to skip.
    pub header: bool,
    /// 0-based columns to read (same for both files).
    pub columns: Vec<usize>,
    /// Dimensions (indices into `columns`) where larger is better.
    pub negate: Vec<usize>,
    /// Normalize both sets jointly into the unit space.
    pub normalize: bool,
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Join lower bound.
    pub bound: LowerBound,
    /// Join bound mode.
    pub mode: BoundMode,
    /// Algorithm 1's ε.
    pub epsilon: f64,
    /// Cost model: `("reciprocal", eps)` or `("linear", slope)`.
    pub cost: CostSpec,
    /// Instrumentation report appended to the output, if requested.
    pub stats: Option<StatsFormat>,
    /// Wall-clock budget for the query phase, in milliseconds. When it
    /// runs out the query degrades to a best-so-far partial answer
    /// (exit code 2 from the binary).
    pub timeout_ms: Option<u64>,
    /// R-tree node-visit budget for the query phase; same degradation.
    pub max_node_visits: Option<u64>,
    /// Worker threads for `--algorithm probing`. With 1 (the default)
    /// the historical sequential path runs, bit-for-bit; with more, the
    /// bound-sorted work-stealing scheduler takes over (same results,
    /// pruned and parallel).
    pub threads: usize,
}

impl Config {
    /// The execution limits implied by `--timeout-ms` /
    /// `--max-node-visits` (unlimited when neither is given).
    pub fn limits(&self) -> ExecutionLimits {
        let mut limits = ExecutionLimits::none();
        if let Some(ms) = self.timeout_ms {
            limits = limits.with_deadline(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_node_visits {
            limits = limits.with_max_node_visits(n);
        }
        limits
    }
}

/// How `--stats` renders the collected query metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsFormat {
    /// Aligned-text phase/counter report.
    Text,
    /// Pretty-printed JSON (schema `skyup-obs/1`; first line is `{`).
    Json,
}

/// The CLI's cost-model choice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostSpec {
    /// `1/(v + eps)` per dimension.
    Reciprocal(f64),
    /// `base − slope·v` per dimension (base fixed at 1000·slope·scale).
    Linear(f64),
}

/// Usage text printed on `--help` or errors.
pub const USAGE: &str = "\
usage: skyup --competitors <file> --products <file> [options]

required:
  --competitors <file>   delimited text file with the competitor set P
  --products <file>      delimited text file with the upgrade candidates T

options:
  -k <n>                 number of products to upgrade (default 3)
  --delimiter <c>        cell delimiter (default ',')
  --header               skip the first line of each file
  --columns a,b,...      0-based columns to use (default: all of line 1)
  --negate i,j,...       dimensions (after column selection) where larger
                         is better; they are negated on load
  --normalize            min-max normalize P and T jointly to [0,1]^c
  --algorithm <a>        basic | probing | join (default join)
  --bound <b>            nlb | clb | alb (default clb)
  --admissible           use the admissible bound mode (exact top-k order)
  --epsilon <f>          strict-improvement margin (default 1e-6)
  --cost reciprocal:<eps> | linear:<slope>   (default reciprocal:0.001)
  --stats[=json]         append a per-phase timing and counter report
                         (text by default, pretty JSON with =json)
  --timeout-ms <n>       wall-clock budget for the query; on expiry the
                         best-so-far partial answer is printed and the
                         binary exits with code 2
  --max-node-visits <n>  R-tree node-visit budget; same degradation
  --threads <n>          worker threads for --algorithm probing
                         (default 1 = the sequential path; more runs the
                         bound-sorted work-stealing scheduler, which
                         returns identical results)

exit codes: 0 = exact answer, 2 = partial answer (a limit fired),
1 = error (bad arguments, unreadable input, invalid data)
";

impl Config {
    /// Parses the argument list (without the program name).
    pub fn parse(args: &[String]) -> Result<Config, String> {
        let mut competitors = None;
        let mut products = None;
        let mut k = 3usize;
        let mut delimiter = ',';
        let mut header = false;
        let mut columns: Vec<usize> = Vec::new();
        let mut negate: Vec<usize> = Vec::new();
        let mut normalize = false;
        let mut algorithm = Algorithm::Join;
        let mut bound = LowerBound::Conservative;
        let mut mode = BoundMode::Paper;
        let mut epsilon = 1e-6;
        let mut cost = CostSpec::Reciprocal(1e-3);
        let mut stats = None;
        let mut timeout_ms = None;
        let mut max_node_visits = None;
        let mut threads = 1usize;

        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--competitors" => {
                    competitors = Some(PathBuf::from(value(args, i, "--competitors")?));
                    i += 2;
                }
                "--products" => {
                    products = Some(PathBuf::from(value(args, i, "--products")?));
                    i += 2;
                }
                "-k" => {
                    k = value(args, i, "-k")?
                        .parse()
                        .map_err(|e| format!("-k: {e}"))?;
                    if k == 0 {
                        return Err("-k must be at least 1".into());
                    }
                    i += 2;
                }
                "--delimiter" => {
                    let v = value(args, i, "--delimiter")?;
                    let mut chars = v.chars();
                    delimiter = chars
                        .next()
                        .filter(|_| chars.next().is_none())
                        .ok_or("--delimiter takes a single character")?;
                    i += 2;
                }
                "--header" => {
                    header = true;
                    i += 1;
                }
                "--columns" => {
                    columns = parse_usize_list(&value(args, i, "--columns")?)?;
                    i += 2;
                }
                "--negate" => {
                    negate = parse_usize_list(&value(args, i, "--negate")?)?;
                    i += 2;
                }
                "--normalize" => {
                    normalize = true;
                    i += 1;
                }
                "--algorithm" => {
                    algorithm = match value(args, i, "--algorithm")?.as_str() {
                        "basic" => Algorithm::Basic,
                        "probing" => Algorithm::Probing,
                        "join" => Algorithm::Join,
                        other => return Err(format!("unknown algorithm {other}")),
                    };
                    i += 2;
                }
                "--bound" => {
                    bound = match value(args, i, "--bound")?.as_str() {
                        "nlb" => LowerBound::Naive,
                        "clb" => LowerBound::Conservative,
                        "alb" => LowerBound::Aggressive,
                        other => return Err(format!("unknown bound {other}")),
                    };
                    i += 2;
                }
                "--admissible" => {
                    mode = BoundMode::Admissible;
                    i += 1;
                }
                "--epsilon" => {
                    epsilon = value(args, i, "--epsilon")?
                        .parse()
                        .map_err(|e| format!("--epsilon: {e}"))?;
                    i += 2;
                }
                "--cost" => {
                    let v = value(args, i, "--cost")?;
                    cost = parse_cost(&v)?;
                    i += 2;
                }
                "--stats" => {
                    stats = Some(StatsFormat::Text);
                    i += 1;
                }
                "--timeout-ms" => {
                    timeout_ms = Some(
                        value(args, i, "--timeout-ms")?
                            .parse()
                            .map_err(|e| format!("--timeout-ms: {e}"))?,
                    );
                    i += 2;
                }
                "--max-node-visits" => {
                    let n: u64 = value(args, i, "--max-node-visits")?
                        .parse()
                        .map_err(|e| format!("--max-node-visits: {e}"))?;
                    if n == 0 {
                        return Err("--max-node-visits must be at least 1".into());
                    }
                    max_node_visits = Some(n);
                    i += 2;
                }
                "--threads" => {
                    threads = value(args, i, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                    if threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    i += 2;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => {
                    if let Some(fmt) = other.strip_prefix("--stats=") {
                        stats = Some(match fmt {
                            "text" => StatsFormat::Text,
                            "json" => StatsFormat::Json,
                            bad => return Err(format!("--stats takes text or json, not {bad}")),
                        });
                        i += 1;
                        continue;
                    }
                    return Err(format!("unknown argument {other}\n{USAGE}"));
                }
            }
        }

        if threads > 1 && algorithm != Algorithm::Probing {
            return Err("--threads applies to --algorithm probing only".into());
        }

        Ok(Config {
            competitors: competitors.ok_or_else(|| format!("--competitors missing\n{USAGE}"))?,
            products: products.ok_or_else(|| format!("--products missing\n{USAGE}"))?,
            k,
            delimiter,
            header,
            columns,
            negate,
            normalize,
            algorithm,
            bound,
            mode,
            epsilon,
            cost,
            stats,
            timeout_ms,
            max_node_visits,
            threads,
        })
    }

    fn cost_fn(&self, dims: usize) -> SumCost {
        match self.cost {
            CostSpec::Reciprocal(eps) => SumCost::reciprocal(dims, eps),
            CostSpec::Linear(slope) => SumCost::new(
                (0..dims)
                    .map(|_| {
                        Box::new(LinearCost::new(1000.0 * slope, slope)) as Box<dyn AttributeCost>
                    })
                    .collect(),
            ),
        }
    }
}

fn parse_usize_list(v: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|c| c.trim().parse::<usize>().map_err(|e| format!("{c}: {e}")))
        .collect()
}

fn parse_cost(v: &str) -> Result<CostSpec, String> {
    let (kind, param) = v
        .split_once(':')
        .ok_or("cost format: reciprocal:<eps> or linear:<slope>")?;
    let value: f64 = param.parse().map_err(|e| format!("cost parameter: {e}"))?;
    match kind {
        "reciprocal" => {
            if value <= 0.0 {
                return Err("reciprocal eps must be positive".into());
            }
            Ok(CostSpec::Reciprocal(value))
        }
        "linear" => {
            if value < 0.0 {
                return Err("linear slope must be non-negative".into());
            }
            Ok(CostSpec::Linear(value))
        }
        other => Err(format!("unknown cost kind {other}")),
    }
}

/// Loads one file per the config.
fn load(cfg: &Config, path: &std::path::Path) -> Result<PointStore, String> {
    let columns = if cfg.columns.is_empty() {
        // Default: every column of the first data line.
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut lines = text.lines();
        if cfg.header {
            lines.next();
        }
        let first = lines
            .next()
            .ok_or_else(|| format!("{}: empty file", path.display()))?;
        (0..first.split(cfg.delimiter).count()).collect()
    } else {
        cfg.columns.clone()
    };
    read_delimited(path, cfg.delimiter, cfg.header, &columns)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs the CLI end to end, returning the report text and how the
/// query completed ([`Completion::Partial`] when a `--timeout-ms` /
/// `--max-node-visits` budget fired; the results are then a valid
/// best-so-far answer). When `cfg.stats` is set, the instrumentation
/// report is appended in the requested format (for JSON, everything
/// from the first `{`-only line on is the document).
pub fn run(cfg: &Config) -> Result<(String, Completion), String> {
    let (mut out, metrics, completion) = run_with_metrics(cfg)?;
    if let Some(m) = &metrics {
        out.push('\n');
        match cfg.stats {
            Some(StatsFormat::Json) => {
                out.push_str(&m.to_json());
                out.push('\n');
            }
            _ => out.push_str(&m.render_text()),
        }
    }
    Ok((out, completion))
}

/// [`run`] without the report formatting: returns the top-k result
/// text, the raw [`QueryMetrics`] when `cfg.stats` is set (index
/// build, query phases, and every counter the chosen algorithm
/// touches), and the completion state.
pub fn run_with_metrics(
    cfg: &Config,
) -> Result<(String, Option<QueryMetrics>, Completion), String> {
    let mut p = load(cfg, &cfg.competitors)?;
    let mut t = load(cfg, &cfg.products)?;
    if p.dims() != t.dims() {
        return Err(format!(
            "dimensionality mismatch: P has {}, T has {}",
            p.dims(),
            t.dims()
        ));
    }
    if !cfg.negate.is_empty() {
        p = negate_dimensions(&p, &cfg.negate);
        t = negate_dimensions(&t, &cfg.negate);
    }
    if cfg.normalize {
        // Normalize jointly so P and T stay comparable.
        let dims = p.dims();
        let mut joint = PointStore::with_capacity(dims, p.len() + t.len());
        for (_, c) in p.iter().chain(t.iter()) {
            joint.push(c);
        }
        let normalized = normalize_unit(&joint);
        let mut np = PointStore::with_capacity(dims, p.len());
        let mut nt = PointStore::with_capacity(dims, t.len());
        for (i, (_, c)) in normalized.iter().enumerate() {
            if i < p.len() {
                np.push(c);
            } else {
                nt.push(c);
            }
        }
        p = np;
        t = nt;
    }

    let cost_fn = cfg.cost_fn(p.dims());
    let upgrade_cfg = UpgradeConfig::with_epsilon(cfg.epsilon);
    let mut metrics = cfg.stats.map(|_| QueryMetrics::new());
    let mut null = skyup_obs::NullRecorder;
    let rec: &mut dyn Recorder = match &mut metrics {
        Some(m) => m,
        None => &mut null,
    };

    let rp = timed(rec, Phase::IndexBuild, |_| {
        RTree::bulk_load(&p, RTreeParams::default())
    });

    let limits = cfg.limits();
    let guarded = !limits.is_unlimited();
    let mut completion = Completion::Exact;
    // Without limits the historical infallible entry points run — their
    // output (and permissiveness, e.g. toward an empty P) is preserved
    // bit for bit. With limits the fallible guarded twins run instead.
    let results: Vec<UpgradeResult> = match cfg.algorithm {
        Algorithm::Basic if guarded => {
            let out =
                try_basic_probing_topk(&p, &rp, &t, cfg.k, &cost_fn, &upgrade_cfg, &limits, rec)
                    .map_err(|e| e.to_string())?;
            completion = out.completion;
            out.results
        }
        Algorithm::Basic => basic_probing_topk_rec(&p, &rp, &t, cfg.k, &cost_fn, &upgrade_cfg, rec),
        Algorithm::Probing if guarded => {
            let out = if cfg.threads > 1 {
                let (any, _stats) = try_improved_probing_topk_scheduled(
                    &p,
                    &rp,
                    &t,
                    cfg.k,
                    &cost_fn,
                    &upgrade_cfg,
                    cfg.threads,
                    ProbeStrategy::BoundSorted,
                    &limits,
                    rec,
                )
                .map_err(|e| e.to_string())?;
                any
            } else {
                try_improved_probing_topk(&p, &rp, &t, cfg.k, &cost_fn, &upgrade_cfg, &limits, rec)
                    .map_err(|e| e.to_string())?
            };
            completion = out.completion;
            out.results
        }
        Algorithm::Probing if cfg.threads > 1 => {
            improved_probing_topk_scheduled_rec(
                &p,
                &rp,
                &t,
                cfg.k,
                &cost_fn,
                &upgrade_cfg,
                cfg.threads,
                ProbeStrategy::BoundSorted,
                rec,
            )
            .0
        }
        Algorithm::Probing => {
            improved_probing_topk_rec(&p, &rp, &t, cfg.k, &cost_fn, &upgrade_cfg, rec)
        }
        Algorithm::Join => {
            let rt = timed(rec, Phase::IndexBuild, |_| {
                RTree::bulk_load(&t, RTreeParams::default())
            });
            if guarded {
                let mut join =
                    JoinUpgrader::try_new(&p, &rp, &t, &rt, &cost_fn, upgrade_cfg, cfg.bound)
                        .map_err(|e| e.to_string())?;
                if cfg.mode == BoundMode::Admissible {
                    join = join.with_bound_mode(BoundMode::Admissible);
                }
                let mut join = join.with_limits(&limits);
                let out = join.collect_topk(cfg.k);
                rec.absorb(join.metrics());
                completion = out.completion;
                out.results
            } else {
                let mut join =
                    JoinUpgrader::new(&p, &rp, &t, &rt, &cost_fn, upgrade_cfg, cfg.bound);
                if cfg.mode == BoundMode::Admissible {
                    join = join.with_bound_mode(BoundMode::Admissible);
                }
                let results: Vec<UpgradeResult> = join.by_ref().take(cfg.k).collect();
                rec.absorb(join.metrics());
                results
            }
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "|P| = {}, |T| = {}, d = {}, algorithm = {:?}, k = {}",
        p.len(),
        t.len(),
        p.dims(),
        cfg.algorithm,
        cfg.k
    );
    if results.is_empty() {
        let _ = writeln!(out, "no products to upgrade");
    }
    for (rank, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "#{} product {} cost {:.6}\n    from {:?}\n    to   {:?}",
            rank + 1,
            r.product,
            r.cost,
            r.original,
            r.upgraded
        );
    }
    if guarded {
        let _ = writeln!(out, "completion: {completion}");
    }
    Ok((out, metrics, completion))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parse_minimal() {
        let cfg = Config::parse(&args("--competitors p.csv --products t.csv")).unwrap();
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.algorithm, Algorithm::Join);
        assert_eq!(cfg.bound, LowerBound::Conservative);
        assert_eq!(cfg.mode, BoundMode::Paper);
        assert_eq!(cfg.cost, CostSpec::Reciprocal(1e-3));
        assert_eq!(cfg.timeout_ms, None);
        assert_eq!(cfg.max_node_visits, None);
        assert!(cfg.limits().is_unlimited());
    }

    #[test]
    fn parse_limit_flags() {
        let cfg = Config::parse(&args(
            "--competitors p.csv --products t.csv --timeout-ms 250 --max-node-visits 1000",
        ))
        .unwrap();
        assert_eq!(cfg.timeout_ms, Some(250));
        assert_eq!(cfg.max_node_visits, Some(1000));
        assert!(!cfg.limits().is_unlimited());
        assert!(Config::parse(&args("--competitors p --products t --max-node-visits 0")).is_err());
        assert!(Config::parse(&args("--competitors p --products t --timeout-ms abc")).is_err());
    }

    #[test]
    fn parse_full() {
        let cfg = Config::parse(&args(
            "--competitors p.csv --products t.csv -k 7 --delimiter ; --header \
             --columns 0,2,3 --negate 1 --normalize --algorithm probing \
             --bound alb --admissible --epsilon 0.5 --cost linear:2.5",
        ))
        .unwrap();
        assert_eq!(cfg.k, 7);
        assert_eq!(cfg.delimiter, ';');
        assert!(cfg.header);
        assert_eq!(cfg.columns, vec![0, 2, 3]);
        assert_eq!(cfg.negate, vec![1]);
        assert!(cfg.normalize);
        assert_eq!(cfg.algorithm, Algorithm::Probing);
        assert_eq!(cfg.bound, LowerBound::Aggressive);
        assert_eq!(cfg.mode, BoundMode::Admissible);
        assert_eq!(cfg.epsilon, 0.5);
        assert_eq!(cfg.cost, CostSpec::Linear(2.5));
    }

    #[test]
    fn parse_stats_flag() {
        let base = "--competitors p.csv --products t.csv";
        assert_eq!(Config::parse(&args(base)).unwrap().stats, None);
        assert_eq!(
            Config::parse(&args(&format!("{base} --stats")))
                .unwrap()
                .stats,
            Some(StatsFormat::Text)
        );
        assert_eq!(
            Config::parse(&args(&format!("{base} --stats=text")))
                .unwrap()
                .stats,
            Some(StatsFormat::Text)
        );
        assert_eq!(
            Config::parse(&args(&format!("{base} --stats=json")))
                .unwrap()
                .stats,
            Some(StatsFormat::Json)
        );
        assert!(Config::parse(&args(&format!("{base} --stats=yaml"))).is_err());
    }

    #[test]
    fn parse_threads_flag() {
        let base = "--competitors p.csv --products t.csv";
        assert_eq!(Config::parse(&args(base)).unwrap().threads, 1);
        let cfg = Config::parse(&args(&format!("{base} --algorithm probing --threads 4"))).unwrap();
        assert_eq!(cfg.threads, 4);
        assert!(Config::parse(&args(&format!("{base} --threads 0"))).is_err());
        // The scheduler is a probing extension; other algorithms are
        // single-threaded.
        assert!(Config::parse(&args(&format!("{base} --algorithm join --threads 4"))).is_err());
        assert!(Config::parse(&args(&format!("{base} --threads 4"))).is_err());
    }

    #[test]
    fn threaded_probing_matches_sequential_output() {
        let dir = std::env::temp_dir().join("skyup-cli-threads");
        std::fs::create_dir_all(&dir).unwrap();
        let p_path = dir.join("p.csv");
        let t_path = dir.join("t.csv");
        let mut state = 0x7177_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut p_text = String::new();
        for _ in 0..300 {
            p_text.push_str(&format!("{},{}\n", next(), next()));
        }
        let mut t_text = String::new();
        for _ in 0..40 {
            t_text.push_str(&format!("{},{}\n", 0.3 + next(), 0.3 + next()));
        }
        std::fs::write(&p_path, p_text).unwrap();
        std::fs::write(&t_path, t_text).unwrap();
        let base = format!(
            "--competitors {} --products {} -k 5 --algorithm probing --cost linear:1.0",
            p_path.display(),
            t_path.display()
        );
        let seq = run(&Config::parse(&args(&base)).unwrap()).unwrap().0;
        for threads in [2, 4] {
            let par = run(&Config::parse(&args(&format!("{base} --threads {threads}"))).unwrap())
                .unwrap()
                .0;
            assert_eq!(seq, par, "threads={threads}");
        }
        // Guarded + threaded: a generous budget completes exactly.
        let (report, completion) = run(&Config::parse(&args(&format!(
            "{base} --threads 4 --max-node-visits 1000000"
        )))
        .unwrap())
        .unwrap();
        assert!(completion.is_exact());
        assert!(report.contains("completion: exact"));
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&t_path).ok();
    }

    #[test]
    fn parse_errors() {
        assert!(Config::parse(&args("--products t.csv")).is_err());
        assert!(Config::parse(&args("--competitors p --products t -k 0")).is_err());
        assert!(Config::parse(&args("--competitors p --products t --bound zzz")).is_err());
        assert!(Config::parse(&args("--competitors p --products t --cost bogus")).is_err());
        assert!(Config::parse(&args("--competitors p --products t --what")).is_err());
    }

    #[test]
    fn end_to_end_run() {
        let dir = std::env::temp_dir().join("skyup-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p_path = dir.join("p.csv");
        let t_path = dir.join("t.csv");
        std::fs::write(&p_path, "0.2,0.8\n0.5,0.5\n0.8,0.2\n").unwrap();
        std::fs::write(&t_path, "0.9,0.9\n0.6,0.7\n").unwrap();
        let cfg = Config::parse(&args(&format!(
            "--competitors {} --products {} -k 2 --admissible",
            p_path.display(),
            t_path.display()
        )))
        .unwrap();
        let (report, completion) = run(&cfg).unwrap();
        assert!(report.contains("|P| = 3, |T| = 2"));
        assert!(report.contains("#1 product"));
        assert!(report.contains("#2 product"));
        // Unlimited runs are exact and keep their historical output:
        // no completion line.
        assert!(completion.is_exact());
        assert!(!report.contains("completion:"));
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&t_path).ok();
    }

    #[test]
    fn guarded_run_reports_completion() {
        let dir = std::env::temp_dir().join("skyup-cli-guarded");
        std::fs::create_dir_all(&dir).unwrap();
        let p_path = dir.join("p.csv");
        let t_path = dir.join("t.csv");
        std::fs::write(&p_path, "0.2,0.8\n0.5,0.5\n0.8,0.2\n").unwrap();
        std::fs::write(&t_path, "0.9,0.9\n0.6,0.7\n").unwrap();
        let base = format!(
            "--competitors {} --products {} -k 2",
            p_path.display(),
            t_path.display()
        );

        for algo in ["basic", "probing", "join"] {
            // Generous budget: the guarded twin completes exactly and
            // says so.
            let cfg = Config::parse(&args(&format!(
                "{base} --algorithm {algo} --max-node-visits 100000"
            )))
            .unwrap();
            let (report, completion) = run(&cfg).unwrap();
            assert!(completion.is_exact(), "{algo}");
            assert!(report.contains("completion: exact"), "{algo}: {report}");

            // One node visit: the query degrades to a partial answer
            // instead of failing.
            let cfg = Config::parse(&args(&format!(
                "{base} --algorithm {algo} --max-node-visits 1"
            )))
            .unwrap();
            let (report, completion) = run(&cfg).unwrap();
            assert!(!completion.is_exact(), "{algo}");
            assert!(
                report.contains("completion: partial (node visit budget exhausted)"),
                "{algo}: {report}"
            );
        }
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&t_path).ok();
    }

    #[test]
    fn stats_report_appended_and_json_round_trips() {
        let dir = std::env::temp_dir().join("skyup-cli-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let p_path = dir.join("p.csv");
        let t_path = dir.join("t.csv");
        std::fs::write(&p_path, "0.2,0.8\n0.5,0.5\n0.8,0.2\n").unwrap();
        std::fs::write(&t_path, "0.9,0.9\n0.6,0.7\n").unwrap();
        let base = format!(
            "--competitors {} --products {} -k 2",
            p_path.display(),
            t_path.display()
        );

        for algo in ["basic", "probing", "join"] {
            // Text report: phase table plus non-zero counters.
            let text =
                run(&Config::parse(&args(&format!("{base} --algorithm {algo} --stats"))).unwrap())
                    .unwrap()
                    .0;
            assert!(text.contains("phase"), "{algo}: {text}");
            assert!(text.contains("index_build"), "{algo}: {text}");
            assert!(text.contains("results_emitted"), "{algo}: {text}");

            // JSON report: everything from the first `{` line on parses
            // back and carries the schema marker and counters.
            let out = run(&Config::parse(&args(&format!(
                "{base} --algorithm {algo} --stats=json"
            )))
            .unwrap())
            .unwrap()
            .0;
            let start = out.find("\n{\n").expect("JSON document present") + 1;
            let doc = skyup_obs::json::parse(&out[start..]).expect("valid JSON");
            assert_eq!(
                doc.get("schema").and_then(|s| s.as_str()),
                Some(skyup_obs::report::SCHEMA),
                "{algo}"
            );
            let counters = doc.get("counters").expect("counters object");
            assert_eq!(
                counters.get("results_emitted").and_then(|v| v.as_u64()),
                Some(2),
                "{algo}"
            );
            assert!(
                doc.get("phases")
                    .and_then(|p| p.get("index_build"))
                    .is_some(),
                "{algo}"
            );
        }
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&t_path).ok();
    }

    #[test]
    fn algorithms_agree_through_cli() {
        let dir = std::env::temp_dir().join("skyup-cli-agree");
        std::fs::create_dir_all(&dir).unwrap();
        let p_path = dir.join("p.csv");
        let t_path = dir.join("t.csv");
        let mut p_text = String::new();
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            p_text.push_str(&format!("{},{}\n", next(), next()));
        }
        let mut t_text = String::new();
        for _ in 0..30 {
            t_text.push_str(&format!("{},{}\n", 1.0 + next(), 1.0 + next()));
        }
        std::fs::write(&p_path, p_text).unwrap();
        std::fs::write(&t_path, t_text).unwrap();

        let base = format!(
            "--competitors {} --products {} -k 3",
            p_path.display(),
            t_path.display()
        );
        let join =
            run(&Config::parse(&args(&format!("{base} --algorithm join --admissible"))).unwrap())
                .unwrap()
                .0;
        let probing = run(&Config::parse(&args(&format!("{base} --algorithm probing"))).unwrap())
            .unwrap()
            .0;
        let basic = run(&Config::parse(&args(&format!("{base} --algorithm basic"))).unwrap())
            .unwrap()
            .0;
        // Reports list identical products in identical order (cost lines
        // include the algorithm-independent exact costs).
        let pick = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.starts_with('#'))
                .map(|l| l.to_string())
                .collect()
        };
        assert_eq!(pick(&join), pick(&probing));
        assert_eq!(pick(&probing), pick(&basic));
        std::fs::remove_file(&p_path).ok();
        std::fs::remove_file(&t_path).ok();
    }
}
