//! The `skyup ingest` subcommand: real-data loading and profiling.
//!
//! Reads a CSV or NDJSON file through [`skyup_data::ingest`], printing
//! either a one-line summary, a per-column profile (`--profile` as an
//! aligned table, `--profile=json` as a `skyup-ingest/1` document), or
//! a normalized copy of the data (`--out`, optionally mapped into the
//! paper's `P ⊂ [0,1]^c` / `T ⊂ (1,2]^c` frames with `--frame`).
//!
//! Exit codes: `0` — loaded; `1` — error (the message names the
//! offending line, e.g. `data.csv: line 7: non-finite value inf ...`).

use skyup_data::ingest::{Format, Frame, IngestOptions, Ingested, NullPolicy};
use skyup_obs::json::Json;
use skyup_obs::{Counter, QueryMetrics};
use std::path::PathBuf;

/// Usage text for `skyup ingest`, appended to the main help.
pub const INGEST_USAGE: &str = "\
ingest subcommand:
  skyup ingest <file> [options]
    --format csv|ndjson    pin the format (default: sniff extension,
                           then first data byte)
    --delimiter <c>        CSV cell delimiter (default: sniff , ; tab |)
    --header / --no-header pin whether line 1 is a header (default:
                           sniff — any non-numeric cell means header)
    --columns a,b,...      0-based columns to keep (default: all)
    --negate i,j,...       dimensions (after column selection) where
                           larger is better; they are negated on load
                           so smaller is uniformly better
    --lenient              skip rows with null/empty cells instead of
                           rejecting the file (skipped rows count as
                           rejected)
    --profile[=json]       print per-column min/max/cardinality/null
                           statistics as a table (or as a
                           `skyup-ingest/1` JSON document)
    --frame unit|products  min-max normalize into [0,1]^c (competitors)
                           or (1,2]^c (uncompetitive products)
    --out <file>           write the loaded (negated, optionally
                           normalized) rows as delimited text
    exit codes: 0 = loaded, 1 = error (messages carry the 1-based line
    of the offending row)
";

/// How `--profile` renders.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ProfileFormat {
    Table,
    Json,
}

/// Parsed `skyup ingest` arguments.
#[derive(Debug)]
struct IngestCli {
    path: PathBuf,
    opts: IngestOptions,
    profile: Option<ProfileFormat>,
    frame: Option<Frame>,
    out: Option<PathBuf>,
}

fn value(args: &[String], i: usize, flag: &str) -> Result<String, String> {
    args.get(i + 1)
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_usize_list(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("`{s}` is not a column index"))
        })
        .collect()
}

fn parse_args(args: &[String]) -> Result<IngestCli, String> {
    let mut path: Option<PathBuf> = None;
    let mut opts = IngestOptions::default();
    let mut profile = None;
    let mut frame = None;
    let mut out = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                opts.format = Some(match value(args, i, "--format")?.as_str() {
                    "csv" => Format::Csv,
                    "ndjson" | "jsonl" => Format::Ndjson,
                    other => return Err(format!("unknown format `{other}`")),
                });
                i += 2;
            }
            "--delimiter" => {
                let v = value(args, i, "--delimiter")?;
                let mut chars = v.chars();
                opts.delimiter = Some(
                    chars
                        .next()
                        .filter(|_| chars.next().is_none())
                        .ok_or("--delimiter takes a single character")?,
                );
                i += 2;
            }
            "--header" => {
                opts.header = Some(true);
                i += 1;
            }
            "--no-header" => {
                opts.header = Some(false);
                i += 1;
            }
            "--columns" => {
                opts.columns = parse_usize_list(&value(args, i, "--columns")?)?;
                i += 2;
            }
            "--negate" => {
                opts.negate = parse_usize_list(&value(args, i, "--negate")?)?;
                i += 2;
            }
            "--lenient" => {
                opts.null_policy = NullPolicy::CountAndSkipRow;
                i += 1;
            }
            "--profile" => {
                profile = Some(ProfileFormat::Table);
                i += 1;
            }
            "--profile=json" => {
                profile = Some(ProfileFormat::Json);
                i += 1;
            }
            "--profile=table" => {
                profile = Some(ProfileFormat::Table);
                i += 1;
            }
            "--frame" => {
                frame = Some(match value(args, i, "--frame")?.as_str() {
                    "unit" => Frame::Unit,
                    "products" => Frame::Products,
                    other => return Err(format!("--frame takes unit or products, not {other}")),
                });
                i += 2;
            }
            "--out" => {
                out = Some(PathBuf::from(value(args, i, "--out")?));
                i += 2;
            }
            "--help" | "-h" => return Err(INGEST_USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown argument {other}\n{INGEST_USAGE}"));
            }
            _ => {
                if path.is_some() {
                    return Err("ingest takes exactly one input file".into());
                }
                path = Some(PathBuf::from(&args[i]));
                i += 1;
            }
        }
    }

    Ok(IngestCli {
        path: path.ok_or_else(|| format!("ingest needs an input file\n{INGEST_USAGE}"))?,
        opts,
        profile,
        frame,
        out,
    })
}

/// Runs `skyup ingest`. Returns the process exit code.
pub fn run_ingest(args: &[String]) -> Result<i32, String> {
    let cli = parse_args(args)?;
    let mut metrics = QueryMetrics::new();
    let ingested =
        skyup_data::ingest(&cli.path, &cli.opts, &mut metrics).map_err(|e| e.to_string())?;

    match cli.profile {
        Some(ProfileFormat::Table) => print!("{}", profile_table(&ingested)),
        Some(ProfileFormat::Json) => println!("{}", profile_json(&ingested).render_pretty()),
        None => print!("{}", summary_line(&ingested)),
    }

    let store = match cli.frame {
        Some(frame) => skyup_data::normalize_frame(&ingested.store, frame),
        None => ingested.store.clone(),
    };
    if let Some(out) = &cli.out {
        skyup_data::write_delimited(out, &store, ',')
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!(
            "wrote {} rows x {} columns to {}",
            store.len(),
            store.dims(),
            out.display()
        );
    }

    debug_assert_eq!(metrics.get(Counter::RowsIngested), ingested.rows_ingested);
    Ok(0)
}

fn summary_line(ing: &Ingested) -> String {
    let s = &ing.schema;
    format!(
        "ingested {} rows x {} columns ({}, delimiter {:?}, {}; {} rejected)\n",
        ing.rows_ingested,
        s.columns.len(),
        s.format.name(),
        s.delimiter,
        if s.header { "header" } else { "no header" },
        ing.rows_rejected,
    )
}

/// The `--profile` table: one aligned row per selected column.
fn profile_table(ing: &Ingested) -> String {
    let mut rows: Vec<[String; 7]> = vec![[
        "column".into(),
        "index".into(),
        "min".into(),
        "max".into(),
        "distinct".into(),
        "nulls".into(),
        "direction".into(),
    ]];
    for (schema, prof) in ing.schema.columns.iter().zip(&ing.profiles) {
        rows.push([
            prof.name.clone(),
            schema.index.to_string(),
            trim_float(prof.min),
            trim_float(prof.max),
            prof.cardinality.to_string(),
            prof.nulls.to_string(),
            if schema.negated {
                "max (negated)".into()
            } else {
                "min".into()
            },
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = summary_line(ing);
    for row in &rows {
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(row) {
            line.push_str(&format!("{cell:<w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// The `--profile=json` document (schema `skyup-ingest/1`).
fn profile_json(ing: &Ingested) -> Json {
    let s = &ing.schema;
    let columns = s
        .columns
        .iter()
        .zip(&ing.profiles)
        .map(|(schema, prof)| {
            Json::obj(vec![
                ("name", Json::Str(prof.name.clone())),
                ("index", Json::Uint(schema.index as u64)),
                ("negated", Json::Bool(schema.negated)),
                ("min", Json::Num(prof.min)),
                ("max", Json::Num(prof.max)),
                ("cardinality", Json::Uint(prof.cardinality)),
                ("nulls", Json::Uint(prof.nulls)),
                ("values", Json::Uint(prof.values)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str("skyup-ingest/1".into())),
        ("format", Json::Str(s.format.name().into())),
        ("delimiter", Json::Str(s.delimiter.to_string())),
        ("header", Json::Bool(s.header)),
        ("total_columns", Json::Uint(s.total_columns as u64)),
        ("rows_ingested", Json::Uint(ing.rows_ingested)),
        ("rows_rejected", Json::Uint(ing.rows_rejected)),
        ("columns", Json::Arr(columns)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let cli = parse_args(&argv(&[
            "data.csv",
            "--format",
            "csv",
            "--delimiter",
            ";",
            "--header",
            "--columns",
            "0,2",
            "--negate",
            "2",
            "--lenient",
            "--profile=json",
            "--frame",
            "products",
            "--out",
            "norm.csv",
        ]))
        .unwrap();
        assert_eq!(cli.path, PathBuf::from("data.csv"));
        assert_eq!(cli.opts.format, Some(Format::Csv));
        assert_eq!(cli.opts.delimiter, Some(';'));
        assert_eq!(cli.opts.header, Some(true));
        assert_eq!(cli.opts.columns, vec![0, 2]);
        assert_eq!(cli.opts.negate, vec![2]);
        assert_eq!(cli.opts.null_policy, NullPolicy::CountAndSkipRow);
        assert_eq!(cli.profile, Some(ProfileFormat::Json));
        assert_eq!(cli.frame, Some(Frame::Products));
        assert_eq!(cli.out, Some(PathBuf::from("norm.csv")));
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&argv(&[])).unwrap_err().contains("input file"));
        assert!(parse_args(&argv(&["a.csv", "b.csv"]))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse_args(&argv(&["a.csv", "--frame", "sideways"]))
            .unwrap_err()
            .contains("unit or products"));
        assert!(parse_args(&argv(&["a.csv", "--wat"]))
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn profile_table_aligns_and_reports_direction() {
        let mut metrics = QueryMetrics::new();
        let ing = skyup_data::ingest_text(
            "mem",
            "price,rating\n10,4\n20,5\n",
            Format::Csv,
            &IngestOptions {
                negate: vec![1],
                ..IngestOptions::default()
            },
            &mut metrics,
        )
        .unwrap();
        let table = profile_table(&ing);
        assert!(table.contains("ingested 2 rows x 2 columns"));
        assert!(table.contains("price"));
        assert!(table.contains("max (negated)"));
        let json = profile_json(&ing).render();
        assert!(json.contains("\"schema\":\"skyup-ingest/1\""));
        assert!(json.contains("\"rows_ingested\":2"));
    }
}
