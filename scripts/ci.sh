#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, and the tier-1 test suite.
# Everything runs with --offline so an unreachable registry can never
# fail the build (the workspace has zero external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --offline --release

echo "== tier-1: cargo test =="
cargo test --offline -q

echo "== workspace tests =="
cargo test --offline -q --workspace

echo "CI OK"
