#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, the tier-1 build + test
# suite, and the perf-regression bench gate.
#
# Exit-code contract (what a red run means):
#   0    every step passed
#   124  a test step exceeded its hard wall-clock cap
#        ($SKYUP_CI_TEST_TIMEOUT, default 900 s). The guardrail suite
#        deliberately injects stalls and unbounded-looking budgets, so a
#        hang must fail loudly instead of wedging CI.
#   1    any other step failed; `set -e` aborts at the first failing
#        step and this script exits with that step's status. In
#        particular scripts/bench_gate.sh exits 1 only after
#        $SKYUP_GATE_ATTEMPTS full re-runs, so a bench-gate red is a
#        reproducible regression, not first-attempt scheduler noise.
#
# Everything runs with --offline so an unreachable registry can never
# fail the build (the workspace has zero external dependencies).
#
# The step list is deliberately deduplicated: `cargo test --workspace`
# already runs every unit, integration (chaos, CLI contract, serve
# smoke, serve property suites), and doc test in the workspace, so no
# test binary is invoked twice, and the full-scale bench gate subsumes
# the old tiny-scale bench smokes (both bench binaries self-assert
# bit-identity before reporting timings).
set -euo pipefail
cd "$(dirname "$0")/.."

# Hard wall-clock cap per test command (seconds).
TEST_TIMEOUT="${SKYUP_CI_TEST_TIMEOUT:-900}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== MSRV pin declared =="
# The release build below runs with this pin in effect; losing the
# declaration would silently float the MSRV to whatever toolchain CI
# happens to have installed.
grep -q '^rust-version = ' Cargo.toml

echo "== tier-1: cargo build --release (MSRV-pinned, std-only) =="
cargo build --offline --release

echo "== tier-1 + workspace tests (unit, chaos, CLI contract, serve smoke, property suites) =="
timeout "$TEST_TIMEOUT" cargo test --offline -q --workspace

echo "== kill-crash durability harness (dedicated hard cap) =="
# Runs again outside the workspace sweep, under its own much tighter
# wall-clock cap: the harness SIGKILLs real server processes and
# restarts them against the surviving WAL, and a recovery bug whose
# failure mode is a hang (replay loop, torn-tail misparse, a child
# that never prints its listen line) must turn CI red in seconds, not
# eat the whole suite budget.
timeout "${SKYUP_CI_CRASH_TIMEOUT:-120}" cargo test --offline -q --test crash_recovery

echo "== multi-shard smoke (2 shards + coordinator, dedicated hard cap) =="
# Spawns two real shard server processes and a real coordinator, drives
# mixed mutations/queries over TCP, and asserts every gathered answer
# byte-identical to a single-engine oracle plus the scatter/gather
# counter invariants. Like the crash harness, its failure mode is a
# wedged child process (a shard that never flips, a coordinator blocked
# on a dead socket), so it gets its own tight wall-clock cap.
timeout "${SKYUP_CI_SHARD_TIMEOUT:-120}" cargo test --offline -q --test shard_smoke

echo "== kernel bench smoke (tiny scale, self-asserting) =="
# The dominance-kernel bench at a tiny scale, under its own hard cap.
# No baseline comparison here (wall-clock at smoke scale is noise) —
# the value is the binary's self-asserts: every variant's dominator
# lists bit-identical to the scalar oracle, the zone-map conservation
# law blocks + skipped == total, and a live pruning path on the skewed
# dataset. These are machine-independent, so this step runs even when
# the timing gate below is skipped.
SKYUP_BENCH_OUT="$(mktemp)" SKYUP_SCALE=0.002 \
    timeout "${SKYUP_CI_KERNEL_TIMEOUT:-120}" \
    cargo run --offline --release -q -p skyup-bench --bin kernel_bench

echo "== bench gate: perf regression vs committed baselines =="
# Regenerates the serving, probe-scheduler, and dominance-kernel
# reports at the committed scale and gates wall-clock (one-sided, 25%
# tolerance) plus the exact
# machine-independent invariants: bit-identity, cache/batch counters,
# the 1.5x batched-speedup floor, and the telemetry accounting on the
# serve report (trace count == requests served, histogram bucket
# conservation, exact per-class trace counts). Set
# SKYUP_CI_SKIP_BENCH_GATE=1 to skip on hardware too noisy for timing
# checks.
if [ "${SKYUP_CI_SKIP_BENCH_GATE:-0}" = 1 ]; then
    echo "skipped (SKYUP_CI_SKIP_BENCH_GATE=1)"
else
    scripts/bench_gate.sh
fi

echo "CI OK"
