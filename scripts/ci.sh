#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, and the tier-1 test suite.
# Everything runs with --offline so an unreachable registry can never
# fail the build (the workspace has zero external dependencies).
#
# Test invocations are wrapped in a hard `timeout`: the guardrail suite
# deliberately injects stalls and unbounded-looking budgets, and a bug
# there must fail CI loudly instead of hanging it.
set -euo pipefail
cd "$(dirname "$0")/.."

# Hard wall-clock cap per test command (seconds).
TEST_TIMEOUT="${SKYUP_CI_TEST_TIMEOUT:-900}"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --offline --release

echo "== tier-1: cargo test =="
timeout "$TEST_TIMEOUT" cargo test --offline -q

echo "== workspace tests =="
timeout "$TEST_TIMEOUT" cargo test --offline -q --workspace

echo "== chaos: fault injection and execution limits =="
timeout "$TEST_TIMEOUT" cargo test --offline -q -p skyup-core --test chaos

echo "== CLI exit-code contract =="
timeout "$TEST_TIMEOUT" cargo test --offline -q --test cli_contract

echo "== serve smoke: NDJSON server, exit codes, cache hits =="
# Spawns the real binary on an ephemeral port, drives it with
# concurrent clients and interleaved mutations, and checks the serving
# counters report actual cache hits before a clean shutdown.
timeout "$TEST_TIMEOUT" cargo test --offline -q --test serve_smoke

echo "== serve property suite: interleavings vs cold oracle =="
timeout "$TEST_TIMEOUT" cargo test --offline -q -p skyup-serve

echo "== bench smoke: serve throughput, warm answers bit-identical =="
# Tiny scale; the binary asserts every cached (warm) answer matches its
# cold computation bit-for-bit before reporting qps.
SKYUP_BENCH_OUT="$(mktemp)" timeout "$TEST_TIMEOUT" \
    cargo run --offline --release -q -p skyup-bench --bin serve_throughput -- --scale 0.05

echo "== bench smoke: probe scheduler bit-identity =="
# Tiny scale; the binary asserts every scheduled run matches the
# sequential oracle bit-for-bit. Writes to a scratch path so the
# committed full-scale BENCH_probing.json is left untouched.
SKYUP_BENCH_OUT="$(mktemp)" timeout "$TEST_TIMEOUT" \
    cargo run --offline --release -q -p skyup-bench --bin probe_sched -- --scale 0.005

echo "CI OK"
