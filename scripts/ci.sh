#!/usr/bin/env bash
# Offline-safe CI gate: formatting, lints, the tier-1 build + test
# suite, the declarative scenario suite, and the perf-regression bench
# gate.
#
# Exit-code contract (what a red run means):
#   0    every step passed
#   124  a test step exceeded its hard wall-clock cap
#        ($SKYUP_CI_TEST_TIMEOUT, default 900 s). The guardrail suite
#        deliberately injects stalls and unbounded-looking budgets, so a
#        hang must fail loudly instead of wedging CI.
#   1    any other step failed; `set -e` aborts at the first failing
#        step and this script exits with that step's status. In
#        particular scripts/bench_gate.sh exits 1 only after
#        $SKYUP_GATE_ATTEMPTS full re-runs, so a bench-gate red is a
#        reproducible regression, not first-attempt scheduler noise.
#        The scenario-suite step surfaces `skyup test`'s own contract:
#        1 = a scenario failed (the step prints which, with the
#        mismatches), 2 = all passed but some were skipped — the
#        committed corpus must never skip, so both turn CI red.
#
# Everything runs with --offline so an unreachable registry can never
# fail the build (the workspace has zero external dependencies).
#
# The step list is deliberately deduplicated: `cargo test --workspace`
# already runs every unit, integration (chaos, CLI contract, serve
# smoke, serve property suites), and doc test in the workspace, so no
# test binary is invoked twice, and the full-scale bench gate subsumes
# the old tiny-scale bench smokes (both bench binaries self-assert
# bit-identity before reporting timings).
#
# Each step's wall-clock is recorded; a plain-text timing summary is
# printed at the end (also on failure, covering the steps that ran) and
# appended to $GITHUB_STEP_SUMMARY when GitHub Actions sets it.
set -euo pipefail
cd "$(dirname "$0")/.."

# Hard wall-clock cap per test command (seconds).
TEST_TIMEOUT="${SKYUP_CI_TEST_TIMEOUT:-900}"

# Scratch output of the kernel-bench smoke; removed on every exit path.
KERNEL_BENCH_OUT="$(mktemp)"

STEP_NAMES=()
STEP_SECS=()

# step <name> <command...> — announces the step, runs it, records its
# wall-clock seconds for the summary. `set -e` still aborts the script
# on the first failing step.
step() {
    local name="$1"
    shift
    echo "== $name =="
    local t0=$SECONDS
    "$@"
    STEP_NAMES+=("$name")
    STEP_SECS+=("$((SECONDS - t0))")
}

print_timings() {
    [ "${#STEP_NAMES[@]}" -gt 0 ] || return 0
    echo
    echo "step timing summary:"
    local i
    for i in "${!STEP_NAMES[@]}"; do
        printf '  %-64s %4ss\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}"
    done
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        {
            echo "### CI step timings"
            echo
            echo "| step | seconds |"
            echo "| --- | ---: |"
            for i in "${!STEP_NAMES[@]}"; do
                echo "| ${STEP_NAMES[$i]} | ${STEP_SECS[$i]} |"
            done
        } >>"$GITHUB_STEP_SUMMARY"
    fi
}

on_exit() {
    rm -f "$KERNEL_BENCH_OUT"
    print_timings
}
trap on_exit EXIT

step "cargo fmt --check" \
    cargo fmt --all -- --check

step "cargo clippy (workspace, deny warnings)" \
    cargo clippy --offline --workspace --all-targets -- -D warnings

# The release build below runs with this pin in effect; losing the
# declaration would silently float the MSRV to whatever toolchain CI
# happens to have installed.
step "MSRV pin declared" \
    grep -q '^rust-version = ' Cargo.toml

step "tier-1: cargo build --release (MSRV-pinned, std-only)" \
    cargo build --offline --release

step "tier-1 + workspace tests (unit, chaos, CLI contract, serve smoke, property suites)" \
    timeout "$TEST_TIMEOUT" cargo test --offline -q --workspace

# Runs again outside the workspace sweep, under its own much tighter
# wall-clock cap: the harness SIGKILLs real server processes and
# restarts them against the surviving WAL, and a recovery bug whose
# failure mode is a hang (replay loop, torn-tail misparse, a child
# that never prints its listen line) must turn CI red in seconds, not
# eat the whole suite budget.
step "kill-crash durability harness (dedicated hard cap)" \
    timeout "${SKYUP_CI_CRASH_TIMEOUT:-120}" cargo test --offline -q --test crash_recovery

# Spawns two real shard server processes and a real coordinator, drives
# mixed mutations/queries over TCP, and asserts every gathered answer
# byte-identical to a single-engine oracle plus the scatter/gather
# counter invariants. Like the crash harness, its failure mode is a
# wedged child process (a shard that never flips, a coordinator blocked
# on a dead socket), so it gets its own tight wall-clock cap.
step "multi-shard smoke (2 shards + coordinator, dedicated hard cap)" \
    timeout "${SKYUP_CI_SHARD_TIMEOUT:-120}" cargo test --offline -q --test shard_smoke

# The committed regression corpus: every scenario under scenarios/ runs
# through ingestion, the serving engine, and the expected-answer
# comparator. `skyup test` exits 0 only when every scenario PASSes
# (1 = a failure, 2 = a skip — both red here). The cap bounds the whole
# suite: scenarios spawn no child processes without --serve, so a hang
# is an engine bug, not slow machinery.
step "scenario suite (committed corpus, declarative regression vehicle)" \
    timeout "${SKYUP_CI_SCENARIO_TIMEOUT:-120}" \
    cargo run --offline --release -q --bin skyup -- test --suite scenarios/

# The dominance-kernel bench at a tiny scale, under its own hard cap.
# No baseline comparison here (wall-clock at smoke scale is noise) —
# the value is the binary's self-asserts: every variant's dominator
# lists bit-identical to the scalar oracle, the zone-map conservation
# law blocks + skipped == total, and a live pruning path on the skewed
# dataset. These are machine-independent, so this step runs even when
# the timing gate below is skipped. The report lands in a mktemp file
# cleaned up by the EXIT trap.
step "kernel bench smoke (tiny scale, self-asserting)" \
    env SKYUP_BENCH_OUT="$KERNEL_BENCH_OUT" SKYUP_SCALE=0.002 \
    timeout "${SKYUP_CI_KERNEL_TIMEOUT:-120}" \
    cargo run --offline --release -q -p skyup-bench --bin kernel_bench

# Regenerates the serving, probe-scheduler, and dominance-kernel
# reports at the committed scale and gates wall-clock (one-sided, 25%
# tolerance) plus the exact
# machine-independent invariants: bit-identity, cache/batch counters,
# the 1.5x batched-speedup floor, and the telemetry accounting on the
# serve report (trace count == requests served, histogram bucket
# conservation, exact per-class trace counts). Set
# SKYUP_CI_SKIP_BENCH_GATE=1 to skip on hardware too noisy for timing
# checks.
bench_gate() {
    if [ "${SKYUP_CI_SKIP_BENCH_GATE:-0}" = 1 ]; then
        echo "skipped (SKYUP_CI_SKIP_BENCH_GATE=1)"
    else
        scripts/bench_gate.sh
    fi
}
step "bench gate: perf regression vs committed baselines" \
    bench_gate

echo "CI OK"
