#!/usr/bin/env bash
# Perf-regression gate: regenerates the serving, probe-scheduler, and
# dominance-kernel bench reports at the committed scale and compares
# them against the checked-in baselines with `bench_gate`.
#
# Exit codes:
#   0  every invariant and wall-clock check passed (possibly on a retry)
#   1  a check still failed after $SKYUP_GATE_ATTEMPTS attempts
#   other  build failure or unexpected error (set -e)
#
# Invariant failures (bit-identity, cache counts, speedup floor, the
# telemetry accounting on the serve report's latency rows: trace count
# == requests served, per-class histogram bucket conservation, exact
# per-class trace counts) are deterministic and will fail every
# attempt; only wall-clock noise on shared hardware benefits from the
# retries, which re-run the benches from scratch each time.
set -euo pipefail
cd "$(dirname "$0")/.."

ATTEMPTS="${SKYUP_GATE_ATTEMPTS:-3}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

echo "== bench gate: building release binaries =="
cargo build --offline --release -q -p skyup-bench

GATE=(cargo run --offline --release -q -p skyup-bench --bin bench_gate --)

for attempt in $(seq 1 "$ATTEMPTS"); do
    echo "== bench gate: attempt $attempt/$ATTEMPTS =="

    echo "-- serve_throughput (committed scale) --"
    SKYUP_BENCH_OUT="$OUT_DIR/serve.json" \
        cargo run --offline --release -q -p skyup-bench --bin serve_throughput

    echo "-- probe_sched (committed scale) --"
    SKYUP_BENCH_OUT="$OUT_DIR/probing.json" \
        cargo run --offline --release -q -p skyup-bench --bin probe_sched

    echo "-- kernel_bench (committed scale) --"
    SKYUP_BENCH_OUT="$OUT_DIR/kernel.json" \
        cargo run --offline --release -q -p skyup-bench --bin kernel_bench

    ok=1
    "${GATE[@]}" serve "$OUT_DIR/serve.json" bench_results/BENCH_serve.json || ok=0
    "${GATE[@]}" probing "$OUT_DIR/probing.json" bench_results/BENCH_probing.json || ok=0
    "${GATE[@]}" kernel "$OUT_DIR/kernel.json" bench_results/BENCH_kernel.json || ok=0
    if [ "$ok" = 1 ]; then
        echo "bench gate: OK (attempt $attempt)"
        exit 0
    fi
    echo "bench gate: attempt $attempt failed"
done

echo "bench gate: FAILED after $ATTEMPTS attempts" >&2
exit 1
