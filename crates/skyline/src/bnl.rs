//! Block-Nested-Loops skyline (Börzsönyi et al., ICDE 2001).
//!
//! Maintains a window of candidate skyline points; each incoming point is
//! compared against the window, evicting window points it dominates and
//! being discarded if dominated itself. In-memory data means one pass
//! suffices (no temp-file overflow handling is needed).
//!
//! The window check is split into a columnar "dominated by any window
//! point?" prepass (the blockwise kernel over a dims-major mirror of the
//! window) followed by a scalar eviction pass. The split is exact: the
//! window is mutually non-dominated, so a candidate dominated by some
//! window point can dominate no window point — the original interleaved
//! loop would have evicted nothing before discarding it.

use crate::{PointId, PointStore};
use skyup_geom::dominance::dominates;
use skyup_geom::ColumnarPoints;
use skyup_obs::{Counter, NullRecorder, Recorder};

/// Computes the skyline of `ids` with the BNL window algorithm.
pub fn skyline_bnl(store: &PointStore, ids: &[PointId]) -> Vec<PointId> {
    skyline_bnl_rec(store, ids, &mut NullRecorder)
}

/// [`skyline_bnl`] with instrumentation: counts every window comparison
/// and the skyline points retained.
pub fn skyline_bnl_rec<R: Recorder + ?Sized>(
    store: &PointStore,
    ids: &[PointId],
    rec: &mut R,
) -> Vec<PointId> {
    let mut window: Vec<PointId> = Vec::new();
    let mut cols = ColumnarPoints::new(store.dims());
    for &candidate in ids {
        let c = store.point(candidate);
        // Columnar prepass: discard the candidate if the window holds a
        // dominator.
        let scan = cols.dominated_by_any(c);
        rec.incr(Counter::DominanceTests, scan.points);
        rec.incr(Counter::KernelBlockScans, scan.blocks);
        rec.incr(Counter::KernelBlocksSkipped, scan.skipped);
        if scan.dominated {
            continue;
        }
        // Eviction pass: remove window points the candidate dominates
        // (same swap_remove order as the interleaved loop, applied to
        // the id vector and its columnar mirror in lockstep).
        let mut i = 0;
        while i < window.len() {
            rec.bump(Counter::DominanceTests);
            if dominates(c, store.point(window[i])) {
                window.swap_remove(i);
                cols.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push(candidate);
        cols.push(c);
    }
    rec.incr(Counter::SkylinePointsRetained, window.len() as u64);
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    fn pseudo_random_store(n: usize, dims: usize, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn agrees_with_naive_on_random_data() {
        for dims in [1, 2, 3, 4] {
            let s = pseudo_random_store(300, dims, 0xfeed + dims as u64);
            let ids: Vec<PointId> = s.ids().collect();
            let mut a = skyline_bnl(&s, &ids);
            let mut b = skyline_naive(&s, &ids);
            a.sort();
            b.sort();
            assert_eq!(a, b, "dims={dims}");
        }
    }

    #[test]
    fn window_eviction_order_independent() {
        // A point arriving late that dominates several window entries.
        let s = PointStore::from_rows(
            2,
            vec![
                vec![5.0, 5.0],
                vec![4.0, 6.0],
                vec![6.0, 4.0],
                vec![1.0, 1.0], // dominates all of the above
            ],
        );
        let ids: Vec<PointId> = s.ids().collect();
        let sky = skyline_bnl(&s, &ids);
        assert_eq!(sky, vec![PointId(3)]);
    }

    #[test]
    fn all_equal_points_survive() {
        let s = PointStore::from_rows(3, vec![vec![1.0, 2.0, 3.0]; 5]);
        let ids: Vec<PointId> = s.ids().collect();
        assert_eq!(skyline_bnl(&s, &ids).len(), 5);
    }

    #[test]
    fn empty_input() {
        let s = PointStore::new(2);
        assert!(skyline_bnl(&s, &[]).is_empty());
    }
}
