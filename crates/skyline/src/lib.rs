//! Skyline computation algorithms.
//!
//! The skyline of a point set is the subset not dominated by any other
//! point (Börzsönyi et al., ICDE 2001). The product-upgrading algorithms
//! need skylines in two places:
//!
//! * the probing algorithms compute the skyline of a product's dominators
//!   (all of `P` inside the anti-dominant region `ADR(t)`);
//! * the join algorithm computes the skyline of the points below the
//!   entries remaining in a leaf product's join list.
//!
//! Implementations, from simplest to most index-aware:
//!
//! * [`skyline_naive`] — `O(n²)` pairwise reference, the test oracle;
//! * [`skyline_bnl`] — Block-Nested-Loops with a dominance window;
//! * [`skyline_sfs`] — Sort-Filter-Skyline: presort by coordinate sum so
//!   the window only ever holds skyline points;
//! * [`skyline_bbs`] — Branch-and-Bound Skyline over an
//!   [`skyup_rtree::RTree`] (Papadias et al., SIGMOD 2003), plus the
//!   constrained variant [`dominating_skyline`] that implements the
//!   paper's Algorithm 3 (`getDominatingSky`).
//!
//! Duplicate coordinates never dominate each other, so all algorithms
//! retain every copy of a skyline-coordinate point; the test suite checks
//! the algorithms agree exactly (as id sets).

pub mod bbs;
pub mod bnl;
pub mod constrained;
pub mod dnc;
pub mod naive;
pub mod sfs;
pub mod skyband;

pub use bbs::{skyline_bbs, skyline_bbs_rec};
pub use bnl::{skyline_bnl, skyline_bnl_rec};
pub use constrained::{
    dominating_skyline, dominating_skyline_from, dominating_skyline_from_into,
    dominating_skyline_from_lim, dominating_skyline_from_rec, dominating_skyline_into,
    dominating_skyline_lim, dominating_skyline_rec, SkylineScratch,
};
pub use dnc::skyline_dnc;
pub use naive::skyline_naive;
pub use sfs::{skyline_sfs, skyline_sfs_rec};
pub use skyband::{dominator_count, skyband};

pub(crate) use skyup_geom::{PointId, PointStore};
