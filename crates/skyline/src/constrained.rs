//! `getDominatingSky` — the paper's Algorithm 3.
//!
//! Given the competitor R-tree `R_P` and a product `t`, returns the
//! skyline of `t`'s dominators by integrating the ADR range restriction
//! into a BBS traversal: only entries whose MBR overlaps `ADR(t)` are
//! visited, and entries dominated by the skyline found so far are pruned
//! (paper Figure 2 shows the node-level savings over a plain range
//! query).

use crate::bbs::{dominated_by_any, HeapItem};
use crate::{PointId, PointStore};
use skyup_geom::adr::rect_intersects_adr;
use skyup_geom::dominance::dominates;
use skyup_geom::point::coord_sum;
use skyup_geom::ColumnarPoints;
use skyup_obs::{Counter, ExecGuard, Interrupt, NullRecorder, Recorder};
use skyup_rtree::{EntryRef, RTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable state for repeated `getDominatingSky` traversals: the BBS
/// priority queue, the skyline id list, and its columnar mirror (the
/// layout the blockwise dominance kernel scans). A probe loop that keeps
/// one scratch per worker performs no per-product heap allocations once
/// the buffers have grown to the workload's high-water mark.
pub struct SkylineScratch {
    heap: BinaryHeap<Reverse<(HeapItem, EntryRef)>>,
    cols: ColumnarPoints,
    skyline: Vec<PointId>,
}

impl SkylineScratch {
    /// Creates an empty scratch for `dims`-dimensional points.
    pub fn new(dims: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            cols: ColumnarPoints::new(dims),
            skyline: Vec::new(),
        }
    }

    /// The skyline left by the last `*_into` traversal.
    pub fn skyline(&self) -> &[PointId] {
        &self.skyline
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.cols.clear();
        self.skyline.clear();
    }
}

/// Computes the skyline of the points of `tree` that dominate `t`
/// (Algorithm 3). The result is the minimal set an upgrade of `t` must
/// escape: `t` upgraded to be non-dominated w.r.t. this set is
/// non-dominated w.r.t. all of the indexed set, by transitivity.
///
/// ```
/// use skyup_geom::PointStore;
/// use skyup_rtree::{RTree, RTreeParams};
/// use skyup_skyline::dominating_skyline;
///
/// let store = PointStore::from_rows(2, vec![
///     vec![0.1, 0.9], // dominates t, skyline of dominators
///     vec![0.3, 0.3], // dominates t, skyline of dominators
///     vec![0.4, 0.4], // dominates t but shadowed by (0.3, 0.3)
///     vec![0.9, 0.9], // does not dominate t
/// ]);
/// let tree = RTree::bulk_load(&store, RTreeParams::default());
/// let sky = dominating_skyline(&store, &tree, &[0.5, 0.95]);
/// let ids: Vec<u32> = sky.iter().map(|p| p.0).collect();
/// assert_eq!(ids.len(), 2);
/// assert!(ids.contains(&0) && ids.contains(&1));
/// ```
pub fn dominating_skyline(store: &PointStore, tree: &RTree, t: &[f64]) -> Vec<PointId> {
    dominating_skyline_rec(store, tree, t, &mut NullRecorder)
}

/// [`dominating_skyline`] with instrumentation: counts heap traffic,
/// node and entry accesses, dominance tests, and the dominator-skyline
/// points retained.
pub fn dominating_skyline_rec<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    t: &[f64],
    rec: &mut R,
) -> Vec<PointId> {
    if tree.is_empty() {
        return Vec::new();
    }
    dominating_skyline_from_rec(store, tree, &[EntryRef::Node(tree.root_id())], t, rec)
}

/// [`dominating_skyline_rec`] under an execution guard (see
/// [`dominating_skyline_from_lim`] for the interruption contract).
pub fn dominating_skyline_lim<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    t: &[f64],
    rec: &mut R,
    guard: &mut ExecGuard,
) -> Result<Vec<PointId>, Interrupt> {
    if tree.is_empty() {
        return Ok(Vec::new());
    }
    dominating_skyline_from_lim(
        store,
        tree,
        &[EntryRef::Node(tree.root_id())],
        t,
        rec,
        guard,
    )
}

/// Generalization of [`dominating_skyline`] that starts the constrained
/// BBS traversal from an arbitrary set of `seeds` (entries of `tree`)
/// instead of the root. The join algorithm uses this to compute the
/// dominator skyline of a leaf product against the subtrees remaining in
/// its join list (Algorithm 4, line 9) without materializing their
/// points.
///
/// Seeds must reference disjoint subtrees / distinct points, as join
/// lists always do; a duplicated seed would double-count its points.
pub fn dominating_skyline_from(
    store: &PointStore,
    tree: &RTree,
    seeds: &[EntryRef],
    t: &[f64],
) -> Vec<PointId> {
    dominating_skyline_from_rec(store, tree, seeds, t, &mut NullRecorder)
}

/// [`dominating_skyline_from`] with instrumentation (see
/// [`dominating_skyline_rec`]).
pub fn dominating_skyline_from_rec<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    seeds: &[EntryRef],
    t: &[f64],
    rec: &mut R,
) -> Vec<PointId> {
    dominating_skyline_from_lim(store, tree, seeds, t, rec, &mut ExecGuard::unlimited())
        .expect("unlimited guard cannot interrupt")
}

/// [`dominating_skyline_from_rec`] under an execution guard: node
/// expansions are charged via [`ExecGuard::visit_node`] (before the
/// node is read) and heap pushes via [`ExecGuard::heap_push`]; the
/// traversal aborts with `Err` the moment the guard trips.
///
/// On interruption the partially built skyline is discarded — a prefix
/// of a BBS dominator skyline may be *missing* dominators, so it is not
/// a safe input for Algorithm 1; callers treat the whole product as
/// unevaluated. With [`ExecGuard::unlimited`] the traversal is
/// bit-identical to [`dominating_skyline_from_rec`].
pub fn dominating_skyline_from_lim<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    seeds: &[EntryRef],
    t: &[f64],
    rec: &mut R,
    guard: &mut ExecGuard,
) -> Result<Vec<PointId>, Interrupt> {
    let mut scratch = SkylineScratch::new(t.len());
    dominating_skyline_from_into(store, tree, seeds, t, rec, guard, &mut scratch)?;
    Ok(std::mem::take(&mut scratch.skyline))
}

/// Root-seeded [`dominating_skyline_from_into`]: the workhorse of the
/// probe scheduler's per-worker loop. The dominator skyline is left in
/// `scratch` ([`SkylineScratch::skyline`]); all traversal state reuses
/// the scratch's buffers, so a warm scratch makes the call
/// allocation-free.
pub fn dominating_skyline_into<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    t: &[f64],
    rec: &mut R,
    guard: &mut ExecGuard,
    scratch: &mut SkylineScratch,
) -> Result<(), Interrupt> {
    if tree.is_empty() {
        scratch.reset();
        return Ok(());
    }
    dominating_skyline_from_into(
        store,
        tree,
        &[EntryRef::Node(tree.root_id())],
        t,
        rec,
        guard,
        scratch,
    )
}

/// [`dominating_skyline_from_lim`] writing into a caller-provided
/// [`SkylineScratch`] instead of freshly allocated buffers. Identical
/// traversal, counters, and guard charging; on `Err` the scratch's
/// skyline is left empty (a partial dominator skyline may be missing
/// dominators and must not reach Algorithm 1).
pub fn dominating_skyline_from_into<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    seeds: &[EntryRef],
    t: &[f64],
    rec: &mut R,
    guard: &mut ExecGuard,
    scratch: &mut SkylineScratch,
) -> Result<(), Interrupt> {
    assert_eq!(store.dims(), t.len(), "product dimensionality mismatch");
    scratch.reset();
    let run = (|| {
        let SkylineScratch {
            heap,
            cols,
            skyline,
        } = scratch;
        for &seed in seeds {
            // Lines 3-6: consider a seed only if it can contain dominators.
            let admit = match seed {
                EntryRef::Node(n) => rect_intersects_adr(tree.node(n).mbr(), t),
                EntryRef::Point(p) => store.point(p).iter().zip(t).all(|(&x, &y)| x <= y),
            };
            if admit {
                guard.heap_push()?;
                let lo = tree.entry_lo(store, seed);
                heap.push(Reverse(HeapItem::new(coord_sum(lo), seed)));
                rec.bump(Counter::HeapPushes);
            }
        }

        while let Some(Reverse((_, entry))) = heap.pop() {
            rec.bump(Counter::HeapPops);
            // Line 9: re-check dominance against the grown skyline.
            let lo = tree.entry_lo(store, entry);
            if dominated_by_any(cols, lo, rec) {
                continue;
            }
            match entry {
                EntryRef::Point(p) => {
                    // Only actual dominators of t enter S: a point inside
                    // ADR(t) with some coordinate equal to t's may fail to
                    // dominate t (e.g. t itself).
                    rec.bump(Counter::DominanceTests);
                    if dominates(store.point(p), t) {
                        skyline.push(p);
                        cols.push(store.point(p));
                    }
                }
                EntryRef::Node(n) => {
                    // Lines 11-13: push children that overlap ADR(t) and are
                    // not dominated by the current skyline.
                    guard.visit_node()?;
                    rec.bump(Counter::RtreeNodeAccesses);
                    for child in tree.node(n).entries() {
                        rec.bump(Counter::RtreeEntryAccesses);
                        let child_lo = tree.entry_lo(store, child);
                        let overlaps = match child {
                            EntryRef::Node(c) => rect_intersects_adr(tree.node(c).mbr(), t),
                            EntryRef::Point(_) => child_lo.iter().zip(t).all(|(&x, &y)| x <= y),
                        };
                        if overlaps && !dominated_by_any(cols, child_lo, rec) {
                            guard.heap_push()?;
                            heap.push(Reverse(HeapItem::new(coord_sum(child_lo), child)));
                            rec.bump(Counter::HeapPushes);
                        }
                    }
                }
            }
        }
        Ok(())
    })();
    match run {
        Ok(()) => {
            rec.incr(Counter::SkylinePointsRetained, scratch.skyline.len() as u64);
            Ok(())
        }
        Err(i) => {
            scratch.reset();
            Err(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;
    use skyup_geom::adr::point_in_adr;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| next()).collect();
            s.push(&row);
        }
        s
    }

    /// Reference: filter dominators by scan, then take their skyline.
    fn oracle(store: &PointStore, t: &[f64]) -> Vec<PointId> {
        let dominators: Vec<PointId> = store
            .iter()
            .filter(|(_, c)| dominates(c, t))
            .map(|(id, _)| id)
            .collect();
        skyline_naive(store, &dominators)
    }

    #[test]
    fn agrees_with_oracle() {
        for dims in [2, 3, 4] {
            let s = pseudo_random_store(600, dims, 0xd0d0 + dims as u64);
            let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
            for t_seed in 0..5u32 {
                let t: Vec<f64> = (0..dims)
                    .map(|d| 0.3 + 0.6 * ((t_seed as usize + d) % 3) as f64 / 3.0)
                    .collect();
                let mut got = dominating_skyline(&s, &tree, &t);
                let mut want = oracle(&s, &t);
                got.sort();
                want.sort();
                assert_eq!(got, want, "dims={dims}, t={t:?}");
            }
        }
    }

    #[test]
    fn every_result_dominates_t_and_is_undominated() {
        let s = pseudo_random_store(500, 3, 0xccc);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(16));
        let t = [0.8, 0.8, 0.8];
        let sky = dominating_skyline(&s, &tree, &t);
        for &p in &sky {
            assert!(dominates(s.point(p), &t));
            assert!(point_in_adr(s.point(p), &t));
            assert!(!sky
                .iter()
                .any(|&q| q != p && dominates(s.point(q), s.point(p))));
        }
    }

    #[test]
    fn point_with_no_dominators() {
        let s = pseudo_random_store(200, 2, 0x11);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        // The origin cannot be dominated.
        assert!(dominating_skyline(&s, &tree, &[0.0, 0.0]).is_empty());
    }

    #[test]
    fn t_equal_to_existing_point_is_not_its_own_dominator() {
        let mut s = PointStore::new(2);
        s.push(&[0.5, 0.5]);
        s.push(&[0.2, 0.9]);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        // t coincides with point 0; neither stored point dominates it.
        assert!(dominating_skyline(&s, &tree, &[0.5, 0.5]).is_empty());
        // A strictly worse t is dominated by point 0 only.
        let sky = dominating_skyline(&s, &tree, &[0.6, 0.6]);
        assert_eq!(sky, vec![PointId(0)]);
    }

    #[test]
    fn seeded_traversal_matches_root_traversal() {
        let s = pseudo_random_store(400, 2, 0x999);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        let t = [0.7, 0.7];
        // Seeding with the root's children must give the same skyline as
        // seeding with the root.
        let seeds: Vec<EntryRef> = tree.root().entries().collect();
        let mut a = dominating_skyline_from(&s, &tree, &seeds, &t);
        let mut b = dominating_skyline(&s, &tree, &t);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Empty seed list: empty skyline.
        assert!(dominating_skyline_from(&s, &tree, &[], &t).is_empty());
    }

    #[test]
    fn guarded_traversal_matches_unguarded_and_trips_on_budget() {
        use skyup_obs::ExecutionLimits;

        let s = pseudo_random_store(500, 3, 0xfee1);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        let t = [0.85, 0.85, 0.85];

        let mut unguarded = dominating_skyline(&s, &tree, &t);
        let mut guarded = dominating_skyline_lim(
            &s,
            &tree,
            &t,
            &mut NullRecorder,
            &mut ExecGuard::unlimited(),
        )
        .unwrap();
        unguarded.sort();
        guarded.sort();
        assert_eq!(guarded, unguarded);

        // A tiny node budget interrupts the traversal instead of
        // returning an incomplete skyline.
        let mut g = ExecutionLimits::none().with_max_node_visits(1).start();
        let err = dominating_skyline_lim(&s, &tree, &t, &mut NullRecorder, &mut g);
        assert_eq!(err, Err(Interrupt::NodeVisitBudget));
    }

    #[test]
    fn reused_scratch_matches_fresh_allocations() {
        use skyup_obs::ExecutionLimits;
        let s = pseudo_random_store(500, 3, 0x5c7a);
        let tree = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        let mut scratch = SkylineScratch::new(3);
        for i in 0..20u32 {
            let t = [
                0.4 + 0.5 * (i % 5) as f64 / 5.0,
                0.4 + 0.5 * ((i / 5) % 4) as f64 / 4.0,
                0.9,
            ];
            dominating_skyline_into(
                &s,
                &tree,
                &t,
                &mut NullRecorder,
                &mut ExecGuard::unlimited(),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(
                scratch.skyline(),
                dominating_skyline(&s, &tree, &t),
                "t={t:?}"
            );
        }
        // An interrupted traversal leaves the scratch empty, then the
        // scratch is reusable for the next product.
        let mut g = ExecutionLimits::none().with_max_node_visits(1).start();
        let t = [0.85, 0.85, 0.85];
        let err = dominating_skyline_into(&s, &tree, &t, &mut NullRecorder, &mut g, &mut scratch);
        assert_eq!(err, Err(Interrupt::NodeVisitBudget));
        assert!(scratch.skyline().is_empty());
        dominating_skyline_into(
            &s,
            &tree,
            &t,
            &mut NullRecorder,
            &mut ExecGuard::unlimited(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(scratch.skyline(), dominating_skyline(&s, &tree, &t));
    }

    #[test]
    fn empty_tree_yields_empty() {
        let s = PointStore::new(2);
        let tree = RTree::bulk_load(&s, RTreeParams::default());
        assert!(dominating_skyline(&s, &tree, &[0.5, 0.5]).is_empty());
    }
}
