//! Branch-and-Bound Skyline over an R-tree (Papadias et al., SIGMOD 2003).
//!
//! BBS performs a best-first traversal ordered by the L1 distance of each
//! entry's minimum corner to the origin (its coordinate sum). Because a
//! dominator always has a strictly smaller coordinate sum than the points
//! it dominates, every point popped from the heap that is not dominated
//! by the skyline found so far is itself a skyline point — BBS is both
//! progressive and I/O-optimal.

use crate::{PointId, PointStore};
use skyup_geom::point::coord_sum;
use skyup_geom::{ColumnarPoints, OrderedF64};
use skyup_obs::{Counter, NullRecorder, Recorder};
use skyup_rtree::{EntryRef, RTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A heap item ordered by mindist key, tie-broken deterministically by
/// entry identity so the heap order is total.
#[derive(PartialEq, Eq)]
pub(crate) struct HeapItem {
    pub key: OrderedF64,
    pub rank: (u8, u32),
}

impl HeapItem {
    pub(crate) fn new(key: f64, entry: EntryRef) -> (Self, EntryRef) {
        let rank = match entry {
            EntryRef::Node(n) => (0, n.0),
            EntryRef::Point(p) => (1, p.0),
        };
        (
            HeapItem {
                key: OrderedF64::new(key),
                rank,
            },
            entry,
        )
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key).then(self.rank.cmp(&other.rank))
    }
}

/// "Is `target` dominated by any mirrored skyline point", via the
/// blockwise columnar kernel, with the scan work charged to the
/// recorder: every covered point is a `DominanceTests`, every scanned
/// block a `KernelBlockScans`, and every block the zone maps skipped a
/// `KernelBlocksSkipped`. The verdict is bit-identical to the scalar
/// `skyline.iter().any(dominates)` loop.
pub(crate) fn dominated_by_any<R: Recorder + ?Sized>(
    cols: &ColumnarPoints,
    target: &[f64],
    rec: &mut R,
) -> bool {
    let scan = cols.dominated_by_any(target);
    rec.incr(Counter::DominanceTests, scan.points);
    rec.incr(Counter::KernelBlockScans, scan.blocks);
    rec.incr(Counter::KernelBlocksSkipped, scan.skipped);
    scan.dominated
}

/// Computes the skyline of every point indexed by `tree` using BBS.
pub fn skyline_bbs(store: &PointStore, tree: &RTree) -> Vec<PointId> {
    skyline_bbs_rec(store, tree, &mut NullRecorder)
}

/// [`skyline_bbs`] with instrumentation: counts heap traffic, node and
/// entry accesses, dominance tests, and skyline points retained.
pub fn skyline_bbs_rec<R: Recorder + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    rec: &mut R,
) -> Vec<PointId> {
    let mut skyline: Vec<PointId> = Vec::new();
    if tree.is_empty() {
        return skyline;
    }
    // Columnar mirror of `skyline`, kept in sync so every dominance
    // re-check runs through the blockwise kernel.
    let mut cols = ColumnarPoints::new(store.dims());

    let mut heap: BinaryHeap<Reverse<(HeapItem, EntryRef)>> = BinaryHeap::new();
    let root = EntryRef::Node(tree.root_id());
    heap.push(Reverse(HeapItem::new(
        coord_sum(tree.entry_lo(store, root)),
        root,
    )));
    rec.bump(Counter::HeapPushes);

    while let Some(Reverse((_, entry))) = heap.pop() {
        rec.bump(Counter::HeapPops);
        // Lazy re-check: the skyline may have grown since this entry was
        // pushed (Algorithm 3 line 9 does the same re-check).
        let lo = tree.entry_lo(store, entry);
        if dominated_by_any(&cols, lo, rec) {
            continue;
        }
        match entry {
            EntryRef::Point(p) => {
                skyline.push(p);
                cols.push(store.point(p));
            }
            EntryRef::Node(n) => {
                rec.bump(Counter::RtreeNodeAccesses);
                for child in tree.node(n).entries() {
                    rec.bump(Counter::RtreeEntryAccesses);
                    let child_lo = tree.entry_lo(store, child);
                    if !dominated_by_any(&cols, child_lo, rec) {
                        heap.push(Reverse(HeapItem::new(coord_sum(child_lo), child)));
                        rec.bump(Counter::HeapPushes);
                    }
                }
            }
        }
    }
    rec.incr(Counter::SkylinePointsRetained, skyline.len() as u64);
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn agrees_with_naive() {
        for dims in [2, 3, 4] {
            let s = pseudo_random_store(500, dims, 0xbb5 + dims as u64);
            let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
            let ids: Vec<PointId> = s.ids().collect();
            let mut a = skyline_bbs(&s, &t);
            let mut b = skyline_naive(&s, &ids);
            a.sort();
            b.sort();
            assert_eq!(a, b, "dims={dims}");
        }
    }

    #[test]
    fn progressive_order_is_by_coordinate_sum() {
        let s = pseudo_random_store(300, 2, 0x5eed);
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(8));
        let sky = skyline_bbs(&s, &t);
        let sums: Vec<f64> = sky.iter().map(|&p| coord_sum(s.point(p))).collect();
        assert!(
            sums.windows(2).all(|w| w[0] <= w[1]),
            "BBS must emit skyline points in mindist order"
        );
    }

    #[test]
    fn works_on_insertion_built_tree() {
        let s = pseudo_random_store(400, 3, 0x77);
        let t = RTree::from_insertion(&s, RTreeParams::with_max_entries(8));
        let ids: Vec<PointId> = s.ids().collect();
        let mut a = skyline_bbs(&s, &t);
        let mut b = skyline_naive(&s, &ids);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree() {
        let s = PointStore::new(2);
        let t = RTree::bulk_load(&s, RTreeParams::default());
        assert!(skyline_bbs(&s, &t).is_empty());
    }

    #[test]
    fn duplicate_skyline_points_kept() {
        let mut s = PointStore::new(2);
        s.push(&[0.1, 0.9]);
        s.push(&[0.1, 0.9]);
        s.push(&[0.9, 0.1]);
        s.push(&[0.5, 0.5]);
        s.push(&[0.6, 0.6]); // dominated
        let t = RTree::bulk_load(&s, RTreeParams::with_max_entries(4));
        let sky = skyline_bbs(&s, &t);
        assert_eq!(sky.len(), 4);
    }
}
