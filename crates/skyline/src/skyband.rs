//! k-skyband computation.
//!
//! The *k-skyband* of a point set is the subset of points dominated by
//! fewer than `k` other points; the skyline is the 1-skyband. Skybands
//! quantify *how* uncompetitive a product is — a natural companion
//! analysis to upgrading: products just outside the skyline (in the
//! 2- or 3-skyband) are typically the cheap upgrades the paper's top-k
//! query surfaces.

use crate::{PointId, PointStore};
use skyup_geom::dominance::dominates;

/// Returns the ids in `ids` dominated by fewer than `k` points of `ids`,
/// together with each survivor's dominator count, sorted by id.
///
/// ```
/// use skyup_geom::PointStore;
/// use skyup_skyline::skyband;
///
/// let store = PointStore::from_rows(2, vec![
///     vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0], // skyline
///     vec![2.5, 2.5],                                 // 1 dominator
/// ]);
/// let ids: Vec<_> = store.ids().collect();
/// assert_eq!(skyband(&store, &ids, 1).len(), 3);
/// assert_eq!(skyband(&store, &ids, 2).len(), 4);
/// ```
///
/// # Panics
/// Panics if `k == 0` (the 0-skyband is empty by definition and almost
/// always a caller bug).
pub fn skyband(store: &PointStore, ids: &[PointId], k: usize) -> Vec<(PointId, usize)> {
    assert!(k > 0, "the 0-skyband is empty; use k >= 1");
    let mut out: Vec<(PointId, usize)> = Vec::new();
    for &a in ids {
        let pa = store.point(a);
        let mut count = 0usize;
        for &b in ids {
            if b != a && dominates(store.point(b), pa) {
                count += 1;
                if count >= k {
                    break;
                }
            }
        }
        if count < k {
            out.push((a, count));
        }
    }
    out
}

/// Counts, for one probe point `t`, how many points of `ids` dominate
/// it. Useful to gauge how far a product is from competitiveness.
pub fn dominator_count(store: &PointStore, ids: &[PointId], t: &[f64]) -> usize {
    ids.iter()
        .filter(|&&p| dominates(store.point(p), t))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    fn staircase_with_tail() -> (PointStore, Vec<PointId>) {
        let s = PointStore::from_rows(
            2,
            vec![
                vec![1.0, 4.0], // 0: skyline
                vec![2.0, 3.0], // 1: skyline
                vec![3.0, 2.0], // 2: skyline
                vec![2.5, 3.5], // 3: dominated by 1 only
                vec![3.0, 4.0], // 4: dominated by 0? (1<=3,4<=4 strict on x) yes; 1 yes; 3 yes
                vec![9.0, 9.0], // 5: dominated by everything
            ],
        );
        let ids = s.ids().collect();
        (s, ids)
    }

    #[test]
    fn one_skyband_is_the_skyline() {
        let (s, ids) = staircase_with_tail();
        let band: Vec<PointId> = skyband(&s, &ids, 1).into_iter().map(|(p, _)| p).collect();
        let mut sky = skyline_naive(&s, &ids);
        sky.sort();
        assert_eq!(band, sky);
        // Skyline members report zero dominators.
        for (_, count) in skyband(&s, &ids, 1) {
            assert_eq!(count, 0);
        }
    }

    #[test]
    fn band_grows_with_k() {
        let (s, ids) = staircase_with_tail();
        let sizes: Vec<usize> = (1..=6).map(|k| skyband(&s, &ids, k).len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*sizes.last().unwrap(), 6, "k = n admits everything");
        // Point 3 has exactly one dominator: enters at k = 2.
        let two: Vec<PointId> = skyband(&s, &ids, 2).into_iter().map(|(p, _)| p).collect();
        assert!(two.contains(&PointId(3)));
        assert!(!skyband(&s, &ids, 1).iter().any(|(p, _)| *p == PointId(3)));
    }

    #[test]
    fn dominator_counts_reported() {
        let (s, ids) = staircase_with_tail();
        let band = skyband(&s, &ids, 6);
        let count_of = |id: u32| band.iter().find(|(p, _)| p.0 == id).unwrap().1;
        assert_eq!(count_of(0), 0);
        assert_eq!(count_of(3), 1);
        assert_eq!(count_of(5), 5);
    }

    #[test]
    fn probe_counting() {
        let (s, ids) = staircase_with_tail();
        assert_eq!(dominator_count(&s, &ids, &[10.0, 10.0]), 6);
        assert_eq!(dominator_count(&s, &ids, &[0.5, 0.5]), 0);
        // A probe equal to a stored point is not dominated by it.
        assert_eq!(dominator_count(&s, &ids, &[1.0, 4.0]), 0);
    }

    #[test]
    #[should_panic(expected = "0-skyband")]
    fn zero_k_rejected() {
        let (s, ids) = staircase_with_tail();
        let _ = skyband(&s, &ids, 0);
    }
}
