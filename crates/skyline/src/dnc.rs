//! Divide-and-conquer skyline (Börzsönyi et al.'s D&C, simplified for
//! main memory).
//!
//! Splits the data on the median of the first dimension, recursively
//! computes both halves' skylines, and removes the points of the "worse"
//! half that some point of the "better" half dominates. `O(n log n)`
//! behaviour on typical inputs; primarily here as an independently
//! derived oracle for the other algorithms and as the fastest choice on
//! very large low-dimensional inputs.

use crate::{PointId, PointStore};
use skyup_geom::dominance::dominates;

/// Computes the skyline of `ids` by divide and conquer.
pub fn skyline_dnc(store: &PointStore, ids: &[PointId]) -> Vec<PointId> {
    let mut work: Vec<PointId> = ids.to_vec();
    dnc(store, &mut work)
}

fn dnc(store: &PointStore, ids: &mut [PointId]) -> Vec<PointId> {
    if ids.len() <= 8 {
        // Small base case: quadratic scan.
        return ids
            .iter()
            .copied()
            .filter(|&a| {
                !ids.iter()
                    .any(|&b| b != a && dominates(store.point(b), store.point(a)))
            })
            .collect();
    }
    // Split at the median of dimension 0 (ties broken by id so the two
    // halves are always strictly smaller).
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        store.point(a)[0]
            .total_cmp(&store.point(b)[0])
            .then(a.cmp(&b))
    });
    let (lo_half, hi_half) = ids.split_at_mut(mid);
    let lo_sky = dnc(store, lo_half);
    let hi_sky = dnc(store, hi_half);

    // Points in the low half can never be dominated by the high half on
    // dimension 0... not strictly true with ties, so do the full merge:
    // keep a low point unless some high skyline point dominates it, and
    // vice versa. (Dominance inside each half was already resolved.)
    let mut out: Vec<PointId> = Vec::with_capacity(lo_sky.len() + hi_sky.len());
    for &a in &lo_sky {
        let pa = store.point(a);
        if !hi_sky.iter().any(|&b| dominates(store.point(b), pa)) {
            out.push(a);
        }
    }
    for &b in &hi_sky {
        let pb = store.point(b);
        if !lo_sky.iter().any(|&a| dominates(store.point(a), pb)) {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    fn pseudo_random_store(n: usize, dims: usize, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn agrees_with_naive() {
        for dims in [1, 2, 3, 5] {
            let s = pseudo_random_store(700, dims, 0xd1c + dims as u64);
            let ids: Vec<PointId> = s.ids().collect();
            let mut a = skyline_dnc(&s, &ids);
            let mut b = skyline_naive(&s, &ids);
            a.sort();
            b.sort();
            assert_eq!(a, b, "dims={dims}");
        }
    }

    #[test]
    fn handles_heavy_ties_on_split_dimension() {
        // All points share dimension 0: the split must still terminate
        // and produce the correct result.
        let mut s = PointStore::new(2);
        for i in 0..100 {
            s.push(&[0.5, (i % 37) as f64]);
        }
        let ids: Vec<PointId> = s.ids().collect();
        let mut a = skyline_dnc(&s, &ids);
        let mut b = skyline_naive(&s, &ids);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicates_survive() {
        let s = PointStore::from_rows(2, vec![vec![0.1, 0.1]; 20]);
        let ids: Vec<PointId> = s.ids().collect();
        assert_eq!(skyline_dnc(&s, &ids).len(), 20);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let s = PointStore::from_rows(2, vec![vec![0.3, 0.4]]);
        assert!(skyline_dnc(&s, &[]).is_empty());
        assert_eq!(skyline_dnc(&s, &[PointId(0)]), vec![PointId(0)]);
    }
}
