//! Quadratic reference skyline: the oracle every other algorithm is
//! checked against.

use crate::{PointId, PointStore};
use skyup_geom::dominance::dominates;

/// Returns the ids in `ids` whose points are dominated by no other point
/// in `ids`. `O(n²)`; intended for tests and tiny inputs.
pub fn skyline_naive(store: &PointStore, ids: &[PointId]) -> Vec<PointId> {
    ids.iter()
        .copied()
        .filter(|&a| {
            let pa = store.point(a);
            !ids.iter().any(|&b| b != a && dominates(store.point(b), pa))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(rows: &[[f64; 2]]) -> (PointStore, Vec<PointId>) {
        let s = PointStore::from_rows(2, rows.iter().map(|r| r.to_vec()));
        let ids = s.ids().collect();
        (s, ids)
    }

    #[test]
    fn simple_staircase() {
        let (s, ids) = store_of(&[
            [1.0, 5.0],
            [2.0, 4.0],
            [3.0, 3.0],
            [4.0, 2.0],
            [5.0, 1.0],
            [3.5, 3.5], // dominated by nothing? (3,3) dominates it
        ]);
        let sky = skyline_naive(&s, &ids);
        let got: Vec<u32> = sky.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn duplicates_all_kept() {
        let (s, ids) = store_of(&[[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]);
        let sky = skyline_naive(&s, &ids);
        assert_eq!(sky.len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let (s, _) = store_of(&[[1.0, 1.0]]);
        assert!(skyline_naive(&s, &[]).is_empty());
        assert_eq!(skyline_naive(&s, &[PointId(0)]).len(), 1);
    }

    #[test]
    fn subset_restriction() {
        let (s, _) = store_of(&[[1.0, 1.0], [2.0, 2.0], [3.0, 0.5]]);
        // Over the full set: {0, 2}. Over {1, 2} only: both survive?
        // (2,2) vs (3,0.5): incomparable, so both.
        let sky = skyline_naive(&s, &[PointId(1), PointId(2)]);
        assert_eq!(sky.len(), 2);
    }
}
