//! Sort-Filter-Skyline (Chomicki et al., ICDE 2003).
//!
//! Presorting by a monotone score (here: coordinate sum, with a
//! lexicographic tie-break) guarantees that no later point can dominate
//! an earlier one, so every point that survives the window test is
//! immediately a confirmed skyline point and the window never shrinks.

use crate::{PointId, PointStore};
use skyup_geom::point::{coord_sum, lex_cmp};
use skyup_geom::ColumnarPoints;
use skyup_obs::{Counter, NullRecorder, Recorder};

/// Computes the skyline of `ids` with the SFS algorithm. The input slice
/// is not modified; ids are copied and sorted internally.
pub fn skyline_sfs(store: &PointStore, ids: &[PointId]) -> Vec<PointId> {
    skyline_sfs_rec(store, ids, &mut NullRecorder)
}

/// [`skyline_sfs`] with instrumentation: counts every window dominance
/// test and the skyline points retained.
pub fn skyline_sfs_rec<R: Recorder + ?Sized>(
    store: &PointStore,
    ids: &[PointId],
    rec: &mut R,
) -> Vec<PointId> {
    let mut sorted: Vec<PointId> = ids.to_vec();
    sorted.sort_by(|&a, &b| {
        let (pa, pb) = (store.point(a), store.point(b));
        coord_sum(pa)
            .total_cmp(&coord_sum(pb))
            .then_with(|| lex_cmp(pa, pb))
    });

    let mut skyline: Vec<PointId> = Vec::new();
    let mut cols = ColumnarPoints::new(store.dims());
    for candidate in sorted {
        let c = store.point(candidate);
        // A dominator has a strictly smaller coordinate sum, so it must
        // already sit in the window; a pure membership test (here the
        // blockwise columnar kernel over the window mirror) suffices.
        let scan = cols.dominated_by_any(c);
        rec.incr(Counter::DominanceTests, scan.points);
        rec.incr(Counter::KernelBlockScans, scan.blocks);
        rec.incr(Counter::KernelBlocksSkipped, scan.skipped);
        if !scan.dominated {
            skyline.push(candidate);
            cols.push(c);
        }
    }
    rec.incr(Counter::SkylinePointsRetained, skyline.len() as u64);
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skyline_bnl, skyline_naive};

    fn anti_correlated(n: usize, seed: u64) -> PointStore {
        // x + y ≈ const with jitter: many skyline points.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(2);
        for _ in 0..n {
            let x = next();
            let jitter = 0.1 * (next() - 0.5);
            let y = (1.0 - x + jitter).clamp(0.0, 1.0);
            s.push(&[x, y]);
        }
        s
    }

    #[test]
    fn agrees_with_naive_and_bnl() {
        let s = anti_correlated(400, 0xabc);
        let ids: Vec<PointId> = s.ids().collect();
        let mut a = skyline_sfs(&s, &ids);
        let mut b = skyline_naive(&s, &ids);
        let mut c = skyline_bnl(&s, &ids);
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(
            a.len() > 10,
            "anti-correlated data should have many skyline points"
        );
    }

    #[test]
    fn window_only_holds_skyline_points() {
        let s = anti_correlated(200, 0x123);
        let ids: Vec<PointId> = s.ids().collect();
        let sfs = skyline_sfs(&s, &ids);
        let naive: std::collections::BTreeSet<_> = skyline_naive(&s, &ids).into_iter().collect();
        // Every point SFS ever emitted must be a true skyline point.
        for p in &sfs {
            assert!(naive.contains(p));
        }
    }

    #[test]
    fn duplicates_kept() {
        let s = PointStore::from_rows(2, vec![vec![0.5, 0.5]; 3]);
        let ids: Vec<PointId> = s.ids().collect();
        assert_eq!(skyline_sfs(&s, &ids).len(), 3);
    }

    #[test]
    fn handles_empty() {
        let s = PointStore::new(2);
        assert!(skyline_sfs(&s, &[]).is_empty());
    }
}
