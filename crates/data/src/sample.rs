//! The paper's `P`/`T` split for real data (Section IV-B): "we pick
//! 1,000 non-skyline tuples at random as the product data set `T` and
//! let the remaining tuples be the competitor data set `P`".

use crate::rng::Rng;
use skyup_geom::{PointId, PointStore};
use skyup_skyline::skyline_sfs;

/// Splits `store` into `(P, T)`: `t_size` non-skyline tuples sampled
/// uniformly (deterministic in `seed`) become `T`, everything else stays
/// in `P`. Skyline tuples always remain in `P` — they are competitive
/// already, so they are not upgrade candidates.
///
/// # Panics
/// Panics if `store` has fewer than `t_size` non-skyline tuples.
pub fn split_products(store: &PointStore, t_size: usize, seed: u64) -> (PointStore, PointStore) {
    let ids: Vec<PointId> = store.ids().collect();
    let skyline: std::collections::HashSet<PointId> =
        skyline_sfs(store, &ids).into_iter().collect();
    let mut non_skyline: Vec<PointId> = ids
        .iter()
        .copied()
        .filter(|id| !skyline.contains(id))
        .collect();
    assert!(
        non_skyline.len() >= t_size,
        "cannot sample {} products from {} non-skyline tuples",
        t_size,
        non_skyline.len()
    );
    let mut rng = Rng::seed_from_u64(seed);
    rng.shuffle(&mut non_skyline);
    let t_ids: std::collections::HashSet<PointId> = non_skyline.into_iter().take(t_size).collect();

    let dims = store.dims();
    let mut p = PointStore::with_capacity(dims, store.len() - t_size);
    let mut t = PointStore::with_capacity(dims, t_size);
    for (id, coords) in store.iter() {
        if t_ids.contains(&id) {
            t.push(coords);
        } else {
            p.push(coords);
        }
    }
    (p, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Distribution, SyntheticConfig};
    use skyup_geom::dominance::dominates;

    #[test]
    fn split_sizes_and_determinism() {
        let store = generate(
            500,
            &SyntheticConfig::unit(2, Distribution::Independent, 11),
        );
        let (p1, t1) = split_products(&store, 100, 1);
        let (p2, t2) = split_products(&store, 100, 1);
        assert_eq!(p1.len(), 400);
        assert_eq!(t1.len(), 100);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        let (_, t3) = split_products(&store, 100, 2);
        assert_ne!(t1, t3, "different seeds give different samples");
    }

    #[test]
    fn every_t_product_is_dominated_by_some_p_product() {
        let store = generate(
            300,
            &SyntheticConfig::unit(3, Distribution::Independent, 13),
        );
        let (p, t) = split_products(&store, 50, 7);
        for (_, tp) in t.iter() {
            let dominated = p.iter().any(|(_, pp)| dominates(pp, tp));
            assert!(dominated, "sampled product {tp:?} is not dominated");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let store = PointStore::from_rows(2, vec![vec![0.1, 0.9], vec![0.9, 0.1]]);
        // Both tuples are skyline: no non-skyline tuples to sample.
        let _ = split_products(&store, 1, 0);
    }
}
