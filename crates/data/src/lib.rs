//! Workload generators for the `skyup` experiments.
//!
//! * [`synthetic`] — the independent / correlated / anti-correlated
//!   generators of Börzsönyi et al. (ICDE 2001), used by the paper's
//!   Sections IV-C and IV-D with `P ⊂ [0,1]^c` and `T ⊂ (1,2]^c`.
//! * [`wine`] — a statistically faithful stand-in for the UCI
//!   winequality-white data set used in Section IV-B (the original CSV
//!   cannot be fetched in this offline environment; see DESIGN.md §4).
//! * [`normalize`] — min-max normalization into the unit space and
//!   negation of larger-is-better attributes.
//! * [`sample`] — the paper's `P`/`T` split: sample non-skyline tuples
//!   at random as the upgrade candidates `T`, keep the rest as `P`.
//! * [`rng`] — the deterministic in-repo PRNG backing all of the above
//!   (the offline environment has no `rand` crate).
//!
//! * [`ingest`] — real-data ingestion: CSV/NDJSON loading with schema
//!   inference, per-column min/max/cardinality/null profiling,
//!   direction flags, and normalization into the paper's
//!   `P ⊂ [0,1]^c` / `T ⊂ (1,2]^c` frame, with line-numbered
//!   `SkyupError::DataLoad` errors.
//!
//! All generators are deterministic given a seed.

pub mod ingest;
pub mod io;
pub mod normalize;
pub mod rng;
pub mod sample;
pub mod synthetic;
pub mod wine;

pub use ingest::{
    ingest, ingest_text, normalize_frame, ColumnProfile, Format, Frame, IngestOptions, Ingested,
    NullPolicy,
};
pub use io::{read_delimited, write_delimited};
pub use normalize::{negate_dimensions, normalize_unit};
pub use rng::Rng;
pub use sample::split_products;
pub use synthetic::{generate, paper_competitors, paper_products, Distribution, SyntheticConfig};
pub use wine::{load_wine_csv, wine_dataset, WineAttr};
