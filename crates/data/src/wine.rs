//! A statistically faithful stand-in for the UCI winequality-white data
//! set (Cortez et al. 2009) used in the paper's Section IV-B.
//!
//! The original 4,898-tuple CSV cannot be downloaded in this offline
//! environment, so this module *synthesizes* a data set whose three
//! experiment attributes — chlorides, sulphates, and total sulfur
//! dioxide — match the published summary statistics of the real data:
//! means, standard deviations, value ranges, right-skewed marginal
//! shapes (log-normal for the two concentrations, near-normal for total
//! sulfur dioxide), and the weak positive pairwise correlations. The
//! experiments only exercise relative algorithm performance on a small,
//! mildly correlated real-world-like distribution, which this
//! reconstruction preserves (DESIGN.md §4).
//!
//! Directions: chlorides and total sulfur dioxide are smaller-is-better
//! (wine faults), sulphates larger-is-better (preservative headroom);
//! the larger-is-better attribute is negated before normalization, per
//! the paper's footnote 1.

use skyup_geom::PointStore;

use crate::rng::Rng;

use crate::normalize::{negate_dimensions, normalize_unit};

/// Number of tuples in the winequality-white data set.
pub const WINE_ROWS: usize = 4898;

/// The three attributes the paper selects ("indicative of wine quality,
/// as well as changeable to some degree by wine manufacturers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WineAttr {
    /// Sodium chloride, g/dm³. Smaller is better.
    Chlorides,
    /// Potassium sulphate, g/dm³. Larger is better (negated internally).
    Sulphates,
    /// Total SO₂, mg/dm³. Smaller is better.
    TotalSulfurDioxide,
}

impl WineAttr {
    /// The paper's single-letter abbreviation (Table III).
    pub fn abbrev(self) -> &'static str {
        match self {
            WineAttr::Chlorides => "c",
            WineAttr::Sulphates => "s",
            WineAttr::TotalSulfurDioxide => "t",
        }
    }

    /// The four attribute combinations of Table III.
    pub fn table_three() -> [Vec<WineAttr>; 4] {
        use WineAttr::*;
        [
            vec![Chlorides, Sulphates],
            vec![Chlorides, TotalSulfurDioxide],
            vec![Sulphates, TotalSulfurDioxide],
            vec![Chlorides, Sulphates, TotalSulfurDioxide],
        ]
    }
}

// Published summary statistics of winequality-white.
const CHLORIDES_RANGE: (f64, f64) = (0.009, 0.346);
const SULPHATES_RANGE: (f64, f64) = (0.22, 1.08);
const TSD_RANGE: (f64, f64) = (9.0, 440.0);

/// Generates the wine-like data set restricted to `attrs`, negates the
/// larger-is-better sulphates attribute, and normalizes into `[0,1]^c` —
/// ready for the Section IV-B experiments.
///
/// # Panics
/// Panics if `attrs` is empty or contains duplicates.
pub fn wine_dataset(attrs: &[WineAttr], seed: u64) -> PointStore {
    assert!(!attrs.is_empty(), "need at least one attribute");
    for (i, a) in attrs.iter().enumerate() {
        assert!(
            !attrs[..i].contains(a),
            "duplicate attribute {a:?} in selection"
        );
    }

    let mut rng = Rng::seed_from_u64(seed);
    let mut full = PointStore::with_capacity(3, WINE_ROWS);
    for _ in 0..WINE_ROWS {
        full.push(&wine_row(&mut rng));
    }

    // Project to the selected attribute combination.
    let mut projected = PointStore::with_capacity(attrs.len(), WINE_ROWS);
    let mut buf = vec![0.0; attrs.len()];
    for (_, row) in full.iter() {
        for (i, a) in attrs.iter().enumerate() {
            buf[i] = match a {
                WineAttr::Chlorides => row[0],
                WineAttr::Sulphates => row[1],
                WineAttr::TotalSulfurDioxide => row[2],
            };
        }
        projected.push(&buf);
    }

    // Negate larger-is-better dimensions, then normalize to [0,1]^c.
    let negate: Vec<usize> = attrs
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a, WineAttr::Sulphates))
        .map(|(i, _)| i)
        .collect();
    normalize_unit(&negate_dimensions(&projected, &negate))
}

/// Loads the **genuine** UCI `winequality-white.csv` (semicolon
/// delimited, header line, 4,898 rows) restricted to `attrs`, applying
/// the same negate-and-normalize pipeline as [`wine_dataset`]. Rows
/// with missing, non-numeric, or non-finite cells are rejected with
/// their line number (see [`crate::io::read_delimited`]) rather than
/// poisoning the downstream dominance tests. Use this when the real
/// file is available to replace the synthetic stand-in:
///
/// ```no_run
/// use skyup_data::wine::{load_wine_csv, WineAttr};
/// let store = load_wine_csv(
///     std::path::Path::new("winequality-white.csv"),
///     &[WineAttr::Chlorides, WineAttr::Sulphates],
/// ).unwrap();
/// ```
pub fn load_wine_csv(path: &std::path::Path, attrs: &[WineAttr]) -> std::io::Result<PointStore> {
    assert!(!attrs.is_empty(), "need at least one attribute");
    // Column layout of the UCI file: fixed acidity; volatile acidity;
    // citric acid; residual sugar; chlorides; free sulfur dioxide;
    // total sulfur dioxide; density; pH; sulphates; alcohol; quality.
    let columns: Vec<usize> = attrs
        .iter()
        .map(|a| match a {
            WineAttr::Chlorides => 4,
            WineAttr::TotalSulfurDioxide => 6,
            WineAttr::Sulphates => 9,
        })
        .collect();
    let raw = crate::io::read_delimited(path, ';', true, &columns)?;
    let negate: Vec<usize> = attrs
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a, WineAttr::Sulphates))
        .map(|(i, _)| i)
        .collect();
    Ok(normalize_unit(&negate_dimensions(&raw, &negate)))
}

/// One (chlorides, sulphates, total SO₂) tuple via a Gaussian copula
/// with the real data's weak positive correlations
/// (ρ(c,s) ≈ 0.02, ρ(c,t) ≈ 0.20, ρ(s,t) ≈ 0.13).
fn wine_row(rng: &mut Rng) -> [f64; 3] {
    let z_c = rng.std_normal();
    let z_s = 0.02 * z_c + (1.0f64 - 0.02 * 0.02).sqrt() * rng.std_normal();
    // Cholesky third row for the correlation matrix above.
    let l31 = 0.20;
    let l32 = (0.13 - 0.20 * 0.02) / (1.0f64 - 0.02 * 0.02).sqrt();
    let l33 = (1.0f64 - l31 * l31 - l32 * l32).sqrt();
    let z_t = l31 * z_c + l32 * z_s + l33 * rng.std_normal();

    // Log-normal marginals for the concentrations (right-skewed),
    // near-normal for total SO2; parameters fitted to the published
    // mean/std (mean 0.0458/sd 0.0218, mean 0.4898/sd 0.1141,
    // mean 138.36/sd 42.50).
    let chlorides = (-3.185 + 0.452 * z_c).exp();
    let sulphates = (-0.740 + 0.230 * z_s).exp();
    let tsd = 138.36 + 42.50 * z_t;

    [
        chlorides.clamp(CHLORIDES_RANGE.0, CHLORIDES_RANGE.1),
        sulphates.clamp(SULPHATES_RANGE.0, SULPHATES_RANGE.1),
        tsd.clamp(TSD_RANGE.0, TSD_RANGE.1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_and_unit_domain() {
        for attrs in WineAttr::table_three() {
            let s = wine_dataset(&attrs, 2012);
            assert_eq!(s.len(), WINE_ROWS);
            assert_eq!(s.dims(), attrs.len());
            for (_, p) in s.iter() {
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn raw_marginals_match_published_statistics() {
        let mut rng = Rng::seed_from_u64(99);
        let rows: Vec<[f64; 3]> = (0..WINE_ROWS).map(|_| wine_row(&mut rng)).collect();
        let mean = |i: usize| rows.iter().map(|r| r[i]).sum::<f64>() / rows.len() as f64;
        let sd = |i: usize, m: f64| {
            (rows.iter().map(|r| (r[i] - m).powi(2)).sum::<f64>() / rows.len() as f64).sqrt()
        };
        let (mc, ms, mt) = (mean(0), mean(1), mean(2));
        assert!((mc - 0.0458).abs() < 0.006, "chlorides mean {mc}");
        assert!((ms - 0.4898).abs() < 0.03, "sulphates mean {ms}");
        assert!((mt - 138.36).abs() < 5.0, "TSD mean {mt}");
        assert!((sd(0, mc) - 0.0218).abs() < 0.007, "chlorides sd");
        assert!((sd(1, ms) - 0.1141).abs() < 0.03, "sulphates sd");
        assert!((sd(2, mt) - 42.5).abs() < 6.0, "TSD sd");
        // Ranges respected.
        for r in &rows {
            assert!((0.009..=0.346).contains(&r[0]));
            assert!((0.22..=1.08).contains(&r[1]));
            assert!((9.0..=440.0).contains(&r[2]));
        }
    }

    #[test]
    fn chlorides_tsd_positively_correlated() {
        let mut rng = Rng::seed_from_u64(7);
        let rows: Vec<[f64; 3]> = (0..WINE_ROWS).map(|_| wine_row(&mut rng)).collect();
        let n = rows.len() as f64;
        let mc = rows.iter().map(|r| r[0]).sum::<f64>() / n;
        let mt = rows.iter().map(|r| r[2]).sum::<f64>() / n;
        let cov = rows.iter().map(|r| (r[0] - mc) * (r[2] - mt)).sum::<f64>() / n;
        let sc = (rows.iter().map(|r| (r[0] - mc).powi(2)).sum::<f64>() / n).sqrt();
        let st = (rows.iter().map(|r| (r[2] - mt).powi(2)).sum::<f64>() / n).sqrt();
        let rho = cov / (sc * st);
        assert!((0.1..0.3).contains(&rho), "rho(c,t) = {rho}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = wine_dataset(&[WineAttr::Chlorides, WineAttr::Sulphates], 1);
        let b = wine_dataset(&[WineAttr::Chlorides, WineAttr::Sulphates], 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_rejected() {
        let _ = wine_dataset(&[WineAttr::Chlorides, WineAttr::Chlorides], 0);
    }

    #[test]
    fn enough_non_skyline_tuples_for_paper_split() {
        // Section IV-B needs 1,000 non-skyline tuples in every
        // combination.
        for attrs in WineAttr::table_three() {
            let s = wine_dataset(&attrs, 2012);
            let (p, t) = crate::sample::split_products(&s, 1000, 2012);
            assert_eq!(p.len(), WINE_ROWS - 1000);
            assert_eq!(t.len(), 1000);
        }
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn load_real_format_csv() {
        // A miniature file in the genuine UCI layout.
        let dir = std::env::temp_dir().join("skyup-wine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("winequality-white.csv");
        std::fs::write(
            &path,
            "\"fixed acidity\";\"volatile acidity\";\"citric acid\";\"residual sugar\";\"chlorides\";\"free sulfur dioxide\";\"total sulfur dioxide\";\"density\";\"pH\";\"sulphates\";\"alcohol\";\"quality\"\n\
             7;0.27;0.36;20.7;0.045;45;170;1.001;3;0.45;8.8;6\n\
             6.3;0.3;0.34;1.6;0.049;14;132;0.994;3.3;0.49;9.5;6\n\
             8.1;0.28;0.4;6.9;0.05;30;97;0.9951;3.26;0.44;10.1;6\n",
        )
        .unwrap();
        let store = load_wine_csv(&path, &[WineAttr::Chlorides, WineAttr::Sulphates]).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.dims(), 2);
        // Chlorides normalized: 0.045 is the min -> 0.0; 0.05 the max -> 1.0.
        assert_eq!(store.point(skyup_geom::PointId(0))[0], 0.0);
        assert_eq!(store.point(skyup_geom::PointId(2))[0], 1.0);
        // Sulphates negated then normalized: highest raw value (0.49,
        // best) maps to 0.
        assert_eq!(store.point(skyup_geom::PointId(1))[1], 0.0);
        assert_eq!(store.point(skyup_geom::PointId(2))[1], 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_row_reported_with_line_number() {
        let dir = std::env::temp_dir().join("skyup-wine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("winequality-broken.csv");
        std::fs::write(
            &path,
            "h1;h2;h3;h4;chlorides;h6;tsd;h8;h9;sulphates;h11;q\n\
             7;0.27;0.36;20.7;0.045;45;170;1.001;3;0.45;8.8;6\n\
             7;0.27;0.36;20.7;inf;45;170;1.001;3;0.45;8.8;6\n",
        )
        .unwrap();
        let err = load_wine_csv(&path, &[WineAttr::Chlorides, WineAttr::Sulphates]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
