//! Synthetic data distributions (Börzsönyi et al., ICDE 2001).

use crate::rng::Rng;
use skyup_geom::PointStore;

/// The three classic skyline benchmark distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Each coordinate uniform and independent: moderately many skyline
    /// points.
    Independent,
    /// Coordinates positively correlated (good products are good
    /// everywhere): few skyline points.
    Correlated,
    /// Coordinates anti-correlated along `Σ x_i ≈ const` (every product
    /// trades one quality for another): very many skyline points. The
    /// paper's hardest setting.
    AntiCorrelated,
}

impl Distribution {
    /// Short name used by the benchmark harness reports.
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::AntiCorrelated => "anti-correlated",
        }
    }
}

/// Configuration for [`generate`].
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Dimensionality `c` of the product space.
    pub dims: usize,
    /// Which distribution to draw from.
    pub distribution: Distribution,
    /// Lower bound of every dimension's domain.
    pub lo: f64,
    /// Upper bound of every dimension's domain.
    pub hi: f64,
    /// RNG seed; equal seeds give equal data sets.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A unit-domain configuration.
    pub fn unit(dims: usize, distribution: Distribution, seed: u64) -> Self {
        Self {
            dims,
            distribution,
            lo: 0.0,
            hi: 1.0,
            seed,
        }
    }
}

/// Generates `n` points according to `cfg`.
///
/// ```
/// use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
/// let cfg = SyntheticConfig::unit(3, Distribution::AntiCorrelated, 42);
/// let points = generate(1000, &cfg);
/// assert_eq!(points.len(), 1000);
/// assert_eq!(points.dims(), 3);
/// // Deterministic per seed.
/// assert_eq!(points, generate(1000, &cfg));
/// ```
///
/// # Panics
/// Panics if `cfg.lo >= cfg.hi` or `cfg.dims == 0`.
pub fn generate(n: usize, cfg: &SyntheticConfig) -> PointStore {
    assert!(cfg.lo < cfg.hi, "empty domain");
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut store = PointStore::with_capacity(cfg.dims, n);
    let mut buf = vec![0.0; cfg.dims];
    let span = cfg.hi - cfg.lo;
    for _ in 0..n {
        match cfg.distribution {
            Distribution::Independent => independent_point(&mut rng, &mut buf),
            Distribution::Correlated => correlated_point(&mut rng, &mut buf),
            Distribution::AntiCorrelated => anti_correlated_point(&mut rng, &mut buf),
        }
        for v in buf.iter_mut() {
            *v = cfg.lo + span * *v;
        }
        store.push(&buf);
    }
    store
}

/// The paper's competitor set: `|P|` points in `[0,1]^c` (Section IV-A).
pub fn paper_competitors(n: usize, dims: usize, dist: Distribution, seed: u64) -> PointStore {
    generate(n, &SyntheticConfig::unit(dims, dist, seed))
}

/// The paper's product set: `|T|` points in `(1,2]^c` (Section IV-A) —
/// uncompetitive by construction, as every competitor coordinate is
/// smaller.
pub fn paper_products(n: usize, dims: usize, dist: Distribution, seed: u64) -> PointStore {
    generate(
        n,
        &SyntheticConfig {
            dims,
            distribution: dist,
            lo: 1.0 + f64::EPSILON,
            hi: 2.0,
            seed,
        },
    )
}

fn independent_point(rng: &mut Rng, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = rng.next_f64();
    }
}

/// Correlated: a shared quality level plus small independent jitter.
fn correlated_point(rng: &mut Rng, out: &mut [f64]) {
    let base = clamped_normal(rng, 0.5, 0.25);
    for v in out.iter_mut() {
        *v = (base + 0.15 * (rng.next_f64() - 0.5)).clamp(0.0, 1.0);
    }
}

/// Anti-correlated: place the point on the hyperplane `Σ x_i = c·v`
/// (with `v` normal around 0.5), then redistribute mass between random
/// coordinate pairs — the construction of the original `randdataset`
/// generator. The sum stays fixed, so improving one attribute always
/// costs another.
fn anti_correlated_point(rng: &mut Rng, out: &mut [f64]) {
    let dims = out.len();
    // Rejection-sample the plane position so extremes stay feasible.
    let v = loop {
        let candidate = rng.normal(0.5, 0.05);
        if (0.0..=1.0).contains(&candidate) {
            break candidate;
        }
    };
    out.fill(v);
    if dims == 1 {
        return;
    }
    // One pass of pairwise transfers bounded by the line's slack
    // l = 2·min(v, 1−v): the sum stays at dims·v and coordinates remain
    // interior, so points spread along the hyperplane instead of piling
    // on the domain boundary.
    let l = 2.0 * v.min(1.0 - v);
    if l > 0.0 {
        for d in 0..dims - 1 {
            let h = rng.range_f64(-l / 2.0, l / 2.0);
            out[d] += h;
            out[d + 1] -= h;
        }
    }
    for v in out.iter_mut() {
        *v = v.clamp(0.0, 1.0);
    }
}

/// Normal sample clamped into `[0, 1]`.
fn clamped_normal(rng: &mut Rng, mean: f64, sd: f64) -> f64 {
    rng.normal(mean, sd).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_skyline::skyline_sfs;

    fn skyline_size(store: &PointStore) -> usize {
        let ids: Vec<_> = store.ids().collect();
        skyline_sfs(store, &ids).len()
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig::unit(3, Distribution::AntiCorrelated, 42);
        let a = generate(100, &cfg);
        let b = generate(100, &cfg);
        assert_eq!(a, b);
        let c = generate(100, &SyntheticConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn domains_respected() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ] {
            let cfg = SyntheticConfig {
                dims: 4,
                distribution: dist,
                lo: 1.0,
                hi: 2.0,
                seed: 7,
            };
            let s = generate(500, &cfg);
            for (_, p) in s.iter() {
                assert!(
                    p.iter().all(|&x| (1.0..=2.0).contains(&x)),
                    "{dist:?}: {p:?}"
                );
            }
        }
    }

    #[test]
    fn anti_correlated_has_many_more_skyline_points() {
        let n = 2000;
        let anti = generate(
            n,
            &SyntheticConfig::unit(2, Distribution::AntiCorrelated, 1),
        );
        let ind = generate(n, &SyntheticConfig::unit(2, Distribution::Independent, 1));
        let corr = generate(n, &SyntheticConfig::unit(2, Distribution::Correlated, 1));
        let (sa, si, sc) = (skyline_size(&anti), skyline_size(&ind), skyline_size(&corr));
        assert!(
            sa > 2 * si,
            "anti-correlated skyline {sa} should dwarf independent {si}"
        );
        assert!(
            sa > sc,
            "anti-correlated skyline {sa} should exceed correlated {sc}"
        );
    }

    #[test]
    fn anti_correlated_sums_concentrate() {
        let s = generate(
            500,
            &SyntheticConfig::unit(4, Distribution::AntiCorrelated, 3),
        );
        // Coordinate sums should cluster near dims * 0.5 with modest spread.
        let sums: Vec<f64> = s.iter().map(|(_, p)| p.iter().sum()).collect();
        let mean = sums.iter().sum::<f64>() / sums.len() as f64;
        assert!((mean - 2.0).abs() < 0.25, "mean sum {mean}");
    }

    #[test]
    fn paper_domains_disjoint() {
        let p = paper_competitors(200, 3, Distribution::Independent, 5);
        let t = paper_products(50, 3, Distribution::Independent, 6);
        let p_max = p
            .iter()
            .flat_map(|(_, c)| c.to_vec())
            .fold(f64::NEG_INFINITY, f64::max);
        let t_min = t
            .iter()
            .flat_map(|(_, c)| c.to_vec())
            .fold(f64::INFINITY, f64::min);
        assert!(p_max <= 1.0);
        assert!(t_min > 1.0);
    }

    #[test]
    fn one_dimensional_generation() {
        let s = generate(
            50,
            &SyntheticConfig::unit(1, Distribution::AntiCorrelated, 9),
        );
        assert_eq!(s.len(), 50);
        assert_eq!(s.dims(), 1);
    }
}
