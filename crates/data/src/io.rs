//! Reading and writing point sets as delimited text files.
//!
//! Lets downstream users run the experiments on their own data — in
//! particular on the genuine UCI `winequality-white.csv` (semicolon
//! delimited), replacing this crate's synthetic stand-in (see
//! [`crate::wine::load_wine_csv`]).

use skyup_geom::PointStore;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Reads the given `columns` (0-based) of a delimited text file into a
/// point store, one point per line. `skip_header` drops the first line.
/// Blank lines are ignored; any non-numeric or non-finite cell (`inf`,
/// `NaN` parse as floats but poison dominance tests) is an error
/// carrying its 1-based line number.
pub fn read_delimited(
    path: &Path,
    delimiter: char,
    skip_header: bool,
    columns: &[usize],
) -> io::Result<PointStore> {
    assert!(!columns.is_empty(), "select at least one column");
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    parse_delimited(reader, delimiter, skip_header, columns)
}

/// [`read_delimited`] over any reader — used by tests and for in-memory
/// data.
pub fn parse_delimited<R: BufRead>(
    reader: R,
    delimiter: char,
    skip_header: bool,
    columns: &[usize],
) -> io::Result<PointStore> {
    let mut store = PointStore::new(columns.len());
    let mut buf = vec![0.0; columns.len()];
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 && skip_header {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(delimiter).collect();
        for (i, &col) in columns.iter().enumerate() {
            let cell = cells.get(col).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing column {}", lineno + 1, col),
                )
            })?;
            buf[i] = cell.trim().trim_matches('"').parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: column {}: {}", lineno + 1, col, e),
                )
            })?;
        }
        store.try_push(&buf).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
    }
    Ok(store)
}

/// Writes a point store as a delimited text file, one point per line,
/// full precision.
pub fn write_delimited(path: &Path, store: &PointStore, delimiter: char) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (_, p) in store.iter() {
        let mut first = true;
        for v in p {
            if !first {
                write!(w, "{delimiter}")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_selected_columns() {
        let data = "a;b;c;d\n1.0;2.0;3.0;4.0\n5.0;6.0;7.0;8.0\n";
        let store = parse_delimited(Cursor::new(data), ';', true, &[1, 3]).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.point(skyup_geom::PointId(0)), &[2.0, 4.0]);
        assert_eq!(store.point(skyup_geom::PointId(1)), &[6.0, 8.0]);
    }

    #[test]
    fn blank_lines_and_quotes_tolerated() {
        let data = "\"1.5\",2.5\n\n\"3.5\",4.5\n";
        let store = parse_delimited(Cursor::new(data), ',', false, &[0, 1]).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.point(skyup_geom::PointId(1)), &[3.5, 4.5]);
    }

    #[test]
    fn missing_column_is_an_error() {
        let data = "1.0;2.0\n";
        let err = parse_delimited(Cursor::new(data), ';', false, &[0, 5]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("column 5"));
    }

    #[test]
    fn non_numeric_cell_is_an_error() {
        let data = "1.0;oops\n";
        let err = parse_delimited(Cursor::new(data), ';', false, &[0, 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_finite_cell_is_an_error_with_line_context() {
        // `inf` and `NaN` parse as f64 but would poison dominance tests
        // downstream; the fallible store push rejects them here, at the
        // ingestion boundary, with the offending line number.
        let data = "1.0;2.0\n1.0;inf\n";
        let err = parse_delimited(Cursor::new(data), ';', false, &[0, 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("finite"), "{err}");

        let nan = "NaN,0.5\n";
        let err = parse_delimited(Cursor::new(nan), ',', false, &[0, 1]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn roundtrip_through_file() {
        let store = PointStore::from_rows(3, vec![vec![0.1, 0.2, 0.3], vec![4.0, 5.0, 6.0]]);
        let dir = std::env::temp_dir().join("skyup-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.csv");
        write_delimited(&path, &store, ',').unwrap();
        let back = read_delimited(&path, ',', false, &[0, 1, 2]).unwrap();
        assert_eq!(store, back);
        std::fs::remove_file(&path).ok();
    }
}
