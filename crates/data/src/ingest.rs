//! Real-data ingestion: CSV / NDJSON loading with schema inference,
//! per-column profiling, and normalization into the paper's frame.
//!
//! Every workload elsewhere in this crate is a synthetic generator;
//! this module is the path for feeding *real* value distributions —
//! correlated or anti-correlated columns, duplicate coordinates,
//! heavy-tailed popularity — into the upgrade algorithms and the
//! scenario harness. It loads delimited text (CSV and friends) and
//! newline-delimited JSON (one array or object per line), infers the
//! schema (format, delimiter, header, column names), profiles every
//! column (min / max / cardinality / null count), applies direction
//! flags (bigger-is-better columns are negated into the
//! smaller-is-better convention), and can normalize the result into
//! the paper's `P ⊂ [0,1]^c` competitor frame or the `T ⊂ (1,2]^c`
//! uncompetitive-product frame (Section IV-A).
//!
//! Errors are structured [`SkyupError::DataLoad`] values carrying the
//! 1-based line number of the offending row: malformed cells, ragged
//! column counts, non-finite values (`NaN`, `inf`, `1e999`), and empty
//! files all name the exact line so a million-row file never has to be
//! bisected by hand.

use skyup_core::SkyupError;
use skyup_geom::PointStore;
use skyup_obs::json::{parse as parse_json, Json};
use skyup_obs::{Counter, Recorder};
use std::collections::HashSet;
use std::path::Path;

/// The two supported file formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Delimited text, one row per line (`,`, `;`, tab, or `|`).
    Csv,
    /// Newline-delimited JSON: one array (`[1.0, 2.0]`) or object
    /// (`{"price": 1.0, "weight": 2.0}`) per line.
    Ndjson,
}

impl Format {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Format::Csv => "csv",
            Format::Ndjson => "ndjson",
        }
    }
}

/// How null cells (empty CSV cells, JSON `null`, missing object
/// fields) are handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NullPolicy {
    /// A null cell is a load error naming its line — the default for
    /// building point stores, where every coordinate must exist.
    #[default]
    Reject,
    /// Profile the row's non-null cells, count the null, and skip the
    /// row (it is not ingested into the store). Used by
    /// `skyup ingest --profile --lenient` to survey dirty files.
    CountAndSkipRow,
}

/// Ingestion options. Every `None` / empty field is inferred.
#[derive(Clone, Debug, Default)]
pub struct IngestOptions {
    /// File format; inferred from the extension (`.ndjson`, `.jsonl`)
    /// and, failing that, from the first byte of data (`[` or `{` means
    /// NDJSON).
    pub format: Option<Format>,
    /// CSV cell delimiter; inferred by splitting the first data line
    /// with each of `,`, `;`, tab, and `|` and keeping the winner.
    pub delimiter: Option<char>,
    /// Whether the first CSV line is a header; inferred (a first line
    /// with any non-numeric, non-empty cell is a header).
    pub header: Option<bool>,
    /// Selected columns (0-based indices into the file's own columns);
    /// empty selects every column.
    pub columns: Vec<usize>,
    /// Direction flags: indices into the *selected* columns where
    /// larger is better. Those columns are negated on load, converting
    /// them to the smaller-is-better convention all algorithms assume.
    pub negate: Vec<usize>,
    /// Null handling; see [`NullPolicy`].
    pub null_policy: NullPolicy,
}

/// One selected column of the inferred schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnSchema {
    /// Column name: the CSV header cell or NDJSON field name when one
    /// exists, else `c<index>`.
    pub name: String,
    /// 0-based index into the file's own columns.
    pub index: usize,
    /// Whether this column is negated on load (larger-is-better flag).
    pub negated: bool,
}

/// The inferred (or confirmed) shape of the file.
#[derive(Clone, Debug)]
pub struct Schema {
    /// Detected format.
    pub format: Format,
    /// Detected CSV delimiter (`,` reported for NDJSON).
    pub delimiter: char,
    /// Whether the first line was treated as a header.
    pub header: bool,
    /// Total columns each row must have (ragged rows are errors).
    pub total_columns: usize,
    /// The selected columns, in selection order.
    pub columns: Vec<ColumnSchema>,
}

/// Per-column statistics over the raw (pre-negation) values.
#[derive(Clone, Debug)]
pub struct ColumnProfile {
    /// Column name (see [`ColumnSchema::name`]).
    pub name: String,
    /// Minimum over non-null values; `NaN` when the column is all-null.
    pub min: f64,
    /// Maximum over non-null values; `NaN` when the column is all-null.
    pub max: f64,
    /// Number of distinct non-null values.
    pub cardinality: u64,
    /// Null cells seen (only non-zero under
    /// [`NullPolicy::CountAndSkipRow`]; with [`NullPolicy::Reject`] the
    /// first null aborts the load instead).
    pub nulls: u64,
    /// Non-null values seen.
    pub values: u64,
}

impl ColumnProfile {
    fn new(name: String) -> ColumnProfile {
        ColumnProfile {
            name,
            min: f64::NAN,
            max: f64::NAN,
            cardinality: 0,
            nulls: 0,
            values: 0,
        }
    }
}

/// The result of a successful ingestion pass.
#[derive(Clone, Debug)]
pub struct Ingested {
    /// What the file turned out to look like.
    pub schema: Schema,
    /// The loaded points, direction flags applied, in file order.
    pub store: PointStore,
    /// Per selected column, statistics over the raw values (before
    /// negation), aligned with [`Schema::columns`].
    pub profiles: Vec<ColumnProfile>,
    /// Rows accepted into the store.
    pub rows_ingested: u64,
    /// Rows skipped for null cells (lenient mode only).
    pub rows_rejected: u64,
}

/// The normalization target frame (Section IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Competitors: min-max normalize every dimension into `[0, 1]`.
    Unit,
    /// Uncompetitive products: map every dimension into `(1, 2]` — the
    /// column maximum lands on `2.0` and the minimum just above `1.0`,
    /// keeping the frame's open lower end exact so every normalized
    /// product is strictly worse than the whole unit cube.
    Products,
}

fn data_err(source: &str, line: u64, message: impl Into<String>) -> SkyupError {
    SkyupError::DataLoad {
        source: source.to_string(),
        line,
        message: message.into(),
    }
}

/// Ingests a file. Format, delimiter, and header are inferred unless
/// pinned in `opts`; `rec` is charged `RowsIngested` / `RowsRejected`.
pub fn ingest(
    path: &Path,
    opts: &IngestOptions,
    rec: &mut dyn Recorder,
) -> Result<Ingested, SkyupError> {
    let source = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| data_err(&source, 0, e.to_string()))?;
    let format = opts.format.unwrap_or_else(|| detect_format(path, &text));
    ingest_text(&source, &text, format, opts, rec)
}

/// [`ingest`] over in-memory text with an explicit format — the
/// library face used by tests and the scenario harness.
pub fn ingest_text(
    source: &str,
    text: &str,
    format: Format,
    opts: &IngestOptions,
    rec: &mut dyn Recorder,
) -> Result<Ingested, SkyupError> {
    match format {
        Format::Csv => ingest_csv(source, text, opts, rec),
        Format::Ndjson => ingest_ndjson(source, text, opts, rec),
    }
}

/// Sniffs the file format: extension first, then the first data byte.
pub fn detect_format(path: &Path, text: &str) -> Format {
    match path.extension().and_then(|e| e.to_str()) {
        Some("ndjson") | Some("jsonl") | Some("json") => return Format::Ndjson,
        Some("csv") | Some("tsv") | Some("txt") => return Format::Csv,
        _ => {}
    }
    match first_data_line(text).map(|(_, l)| l.trim_start().as_bytes().first().copied()) {
        Some(Some(b'[')) | Some(Some(b'{')) => Format::Ndjson,
        _ => Format::Csv,
    }
}

/// Sniffs the CSV delimiter: the candidate that splits the first data
/// line into the most cells wins (ties resolve in candidate order, so
/// `,` beats the rest on single-column files).
pub fn detect_delimiter(line: &str) -> char {
    const CANDIDATES: [char; 4] = [',', ';', '\t', '|'];
    let mut best = ',';
    let mut best_cells = 0;
    for cand in CANDIDATES {
        let cells = line.split(cand).count();
        if cells > best_cells {
            best = cand;
            best_cells = cells;
        }
    }
    best
}

fn first_data_line(text: &str) -> Option<(usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .find(|(_, l)| !l.trim().is_empty())
}

fn clean_cell(cell: &str) -> &str {
    cell.trim().trim_matches('"')
}

/// Whether a first line looks like a header: at least one cell that is
/// non-empty and does not parse as a number.
fn looks_like_header(line: &str, delimiter: char) -> bool {
    line.split(delimiter).any(|cell| {
        let cell = clean_cell(cell);
        !cell.is_empty() && cell.parse::<f64>().is_err()
    })
}

struct RowSink<'a> {
    source: &'a str,
    opts: &'a IngestOptions,
    profiles: Vec<ColumnProfile>,
    distinct: Vec<HashSet<u64>>,
    store: PointStore,
    buf: Vec<f64>,
    rows_ingested: u64,
    rows_rejected: u64,
}

impl<'a> RowSink<'a> {
    fn new(source: &'a str, opts: &'a IngestOptions, columns: &[ColumnSchema]) -> RowSink<'a> {
        RowSink {
            source,
            opts,
            profiles: columns
                .iter()
                .map(|c| ColumnProfile::new(c.name.clone()))
                .collect(),
            distinct: vec![HashSet::new(); columns.len()],
            store: PointStore::new(columns.len()),
            buf: vec![0.0; columns.len()],
            rows_ingested: 0,
            rows_rejected: 0,
        }
    }

    /// Feeds one row of selected cells (`None` = null). Errors carry
    /// `lineno`.
    fn row(&mut self, lineno: u64, cells: &[Option<f64>]) -> Result<(), SkyupError> {
        let mut has_null = false;
        for (i, cell) in cells.iter().enumerate() {
            match *cell {
                Some(v) => {
                    if !v.is_finite() {
                        self.rows_rejected += 1;
                        return Err(data_err(
                            self.source,
                            lineno,
                            format!(
                                "column {}: non-finite value {v} (NaN and infinities poison \
                                 dominance tests)",
                                self.profiles[i].name
                            ),
                        ));
                    }
                    let p = &mut self.profiles[i];
                    p.min = if p.values == 0 { v } else { p.min.min(v) };
                    p.max = if p.values == 0 { v } else { p.max.max(v) };
                    p.values += 1;
                    if self.distinct[i].insert(v.to_bits()) {
                        p.cardinality += 1;
                    }
                    self.buf[i] = if self.opts.negate.contains(&i) { -v } else { v };
                }
                None => {
                    if self.opts.null_policy == NullPolicy::Reject {
                        self.rows_rejected += 1;
                        return Err(data_err(
                            self.source,
                            lineno,
                            format!("column {}: null (missing) value", self.profiles[i].name),
                        ));
                    }
                    self.profiles[i].nulls += 1;
                    has_null = true;
                }
            }
        }
        if has_null {
            self.rows_rejected += 1;
            return Ok(());
        }
        self.store
            .try_push(&self.buf)
            .map_err(|e| data_err(self.source, lineno, e.to_string()))?;
        self.rows_ingested += 1;
        Ok(())
    }

    fn finish(self, schema: Schema, rec: &mut dyn Recorder) -> Result<Ingested, SkyupError> {
        rec.incr(Counter::RowsIngested, self.rows_ingested);
        rec.incr(Counter::RowsRejected, self.rows_rejected);
        if self.rows_ingested == 0 && self.rows_rejected == 0 {
            return Err(data_err(self.source, 0, "empty file (no data rows)"));
        }
        Ok(Ingested {
            schema,
            store: self.store,
            profiles: self.profiles,
            rows_ingested: self.rows_ingested,
            rows_rejected: self.rows_rejected,
        })
    }
}

fn validate_selection(
    source: &str,
    opts: &IngestOptions,
    total_columns: usize,
) -> Result<Vec<usize>, SkyupError> {
    let selected: Vec<usize> = if opts.columns.is_empty() {
        (0..total_columns).collect()
    } else {
        for &c in &opts.columns {
            if c >= total_columns {
                return Err(data_err(
                    source,
                    0,
                    format!("--columns selects column {c} but the file has {total_columns}"),
                ));
            }
        }
        opts.columns.clone()
    };
    for &d in &opts.negate {
        if d >= selected.len() {
            return Err(data_err(
                source,
                0,
                format!(
                    "--negate flags selected column {d} but only {} are selected",
                    selected.len()
                ),
            ));
        }
    }
    Ok(selected)
}

fn ingest_csv(
    source: &str,
    text: &str,
    opts: &IngestOptions,
    rec: &mut dyn Recorder,
) -> Result<Ingested, SkyupError> {
    let Some((_, first)) = first_data_line(text) else {
        return Err(data_err(source, 0, "empty file (no data rows)"));
    };
    let delimiter = opts.delimiter.unwrap_or_else(|| detect_delimiter(first));
    let header = opts
        .header
        .unwrap_or_else(|| looks_like_header(first, delimiter));
    let total_columns = first.split(delimiter).count();
    let selected = validate_selection(source, opts, total_columns)?;

    let names: Vec<String> = if header {
        let cells: Vec<&str> = first.split(delimiter).map(clean_cell).collect();
        selected
            .iter()
            .map(|&c| {
                let name = cells.get(c).copied().unwrap_or("");
                if name.is_empty() {
                    format!("c{c}")
                } else {
                    name.to_string()
                }
            })
            .collect()
    } else {
        selected.iter().map(|&c| format!("c{c}")).collect()
    };
    let columns: Vec<ColumnSchema> = selected
        .iter()
        .zip(&names)
        .map(|(&index, name)| ColumnSchema {
            name: name.clone(),
            index,
            negated: false, // patched below from opts.negate
        })
        .collect();
    let schema = Schema {
        format: Format::Csv,
        delimiter,
        header,
        total_columns,
        columns: mark_negated(columns, &opts.negate),
    };

    let mut sink = RowSink::new(source, opts, &schema.columns);
    let mut cells: Vec<Option<f64>> = vec![None; selected.len()];
    let mut seen_first = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !seen_first {
            seen_first = true;
            if header {
                continue;
            }
        }
        let row: Vec<&str> = trimmed.split(delimiter).collect();
        if row.len() != total_columns {
            sink.rows_rejected += 1;
            return Err(data_err(
                source,
                lineno,
                format!(
                    "ragged row: has {} columns, expected {total_columns}",
                    row.len()
                ),
            ));
        }
        for (i, &c) in selected.iter().enumerate() {
            let cell = clean_cell(row[c]);
            cells[i] = if cell.is_empty() {
                None
            } else {
                Some(cell.parse::<f64>().map_err(|_| {
                    sink.rows_rejected += 1;
                    data_err(
                        source,
                        lineno,
                        format!("column {}: `{cell}` is not a number", sink.profiles[i].name),
                    )
                })?)
            };
        }
        sink.row(lineno, &cells)?;
    }
    sink.finish(schema, rec)
}

fn ingest_ndjson(
    source: &str,
    text: &str,
    opts: &IngestOptions,
    rec: &mut dyn Recorder,
) -> Result<Ingested, SkyupError> {
    let Some((first_lineno, first)) = first_data_line(text) else {
        return Err(data_err(source, 0, "empty file (no data rows)"));
    };
    let first_doc = parse_json(first.trim())
        .map_err(|e| data_err(source, first_lineno as u64, format!("malformed JSON: {e}")))?;
    // Schema: field names of the first record, in document order for
    // objects, `c<i>` for arrays.
    let field_names: Vec<String> = match &first_doc {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        Json::Arr(items) => (0..items.len()).map(|i| format!("c{i}")).collect(),
        _ => {
            return Err(data_err(
                source,
                first_lineno as u64,
                "each NDJSON line must be an array or an object",
            ))
        }
    };
    let total_columns = field_names.len();
    let selected = validate_selection(source, opts, total_columns)?;
    let columns: Vec<ColumnSchema> = selected
        .iter()
        .map(|&index| ColumnSchema {
            name: field_names[index].clone(),
            index,
            negated: false,
        })
        .collect();
    let schema = Schema {
        format: Format::Ndjson,
        delimiter: ',',
        header: false,
        total_columns,
        columns: mark_negated(columns, &opts.negate),
    };

    let mut sink = RowSink::new(source, opts, &schema.columns);
    let mut cells: Vec<Option<f64>> = vec![None; selected.len()];
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno as u64 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let doc = parse_json(trimmed)
            .map_err(|e| data_err(source, lineno, format!("malformed JSON: {e}")))?;
        for (i, &c) in selected.iter().enumerate() {
            let value = match &doc {
                Json::Arr(items) => {
                    if items.len() != total_columns {
                        sink.rows_rejected += 1;
                        return Err(data_err(
                            source,
                            lineno,
                            format!(
                                "ragged row: has {} columns, expected {total_columns}",
                                items.len()
                            ),
                        ));
                    }
                    Some(&items[c])
                }
                Json::Obj(_) => doc.get(&field_names[c]),
                _ => {
                    return Err(data_err(
                        source,
                        lineno,
                        "each NDJSON line must be an array or an object",
                    ))
                }
            };
            cells[i] = match value {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_f64() {
                    Some(n) => Some(n),
                    None => {
                        sink.rows_rejected += 1;
                        return Err(data_err(
                            source,
                            lineno,
                            format!(
                                "column {}: expected a number, got {}",
                                field_names[c],
                                v.render()
                            ),
                        ));
                    }
                },
            };
        }
        sink.row(lineno, &cells)?;
    }
    sink.finish(schema, rec)
}

fn mark_negated(mut columns: Vec<ColumnSchema>, negate: &[usize]) -> Vec<ColumnSchema> {
    for &d in negate {
        if let Some(c) = columns.get_mut(d) {
            c.negated = true;
        }
    }
    columns
}

/// Min-max normalizes `store` into the chosen frame (Section IV-A):
/// [`Frame::Unit`] maps every dimension into `[0, 1]` (competitors),
/// [`Frame::Products`] into `(1, 2]` (uncompetitive products — every
/// normalized coordinate is strictly worse than the entire unit cube).
/// Constant dimensions map to the frame's low end.
pub fn normalize_frame(store: &PointStore, frame: Frame) -> PointStore {
    let dims = store.dims();
    if store.is_empty() {
        return PointStore::new(dims);
    }
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for (_, p) in store.iter() {
        for (i, &v) in p.iter().enumerate() {
            lo[i] = lo[i].min(v);
            hi[i] = hi[i].max(v);
        }
    }
    // The products frame keeps its open lower end exact: t ∈ [0, 1] is
    // mapped affinely onto [1 + EPS, 2], so a column minimum lands just
    // above 1 and the maximum exactly on 2.
    const EPS: f64 = 1e-9;
    let mut out = PointStore::with_capacity(dims, store.len());
    let mut buf = vec![0.0; dims];
    for (_, p) in store.iter() {
        for (i, &v) in p.iter().enumerate() {
            let span = hi[i] - lo[i];
            let t = if span > 0.0 { (v - lo[i]) / span } else { 0.0 };
            buf[i] = match frame {
                Frame::Unit => t,
                Frame::Products => 1.0 + EPS + (1.0 - EPS) * t,
            };
        }
        out.push(&buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_geom::PointId;
    use skyup_obs::NullRecorder;

    fn load(text: &str, format: Format, opts: &IngestOptions) -> Result<Ingested, SkyupError> {
        ingest_text("test", text, format, opts, &mut NullRecorder)
    }

    #[test]
    fn csv_schema_inference_header_and_delimiter() {
        let text = "price;weight;rating\n1.0;2.0;3.0\n4.0;5.0;6.0\n";
        let got = load(text, Format::Csv, &IngestOptions::default()).unwrap();
        assert_eq!(got.schema.delimiter, ';');
        assert!(got.schema.header);
        assert_eq!(got.schema.total_columns, 3);
        let names: Vec<&str> = got.schema.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["price", "weight", "rating"]);
        assert_eq!(got.rows_ingested, 2);
        assert_eq!(got.store.point(PointId(1)), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn csv_headerless_numeric_first_line() {
        let text = "1.5,2.5\n3.5,4.5\n";
        let got = load(text, Format::Csv, &IngestOptions::default()).unwrap();
        assert!(!got.schema.header);
        assert_eq!(got.rows_ingested, 2);
        assert_eq!(got.schema.columns[0].name, "c0");
    }

    #[test]
    fn csv_column_selection_and_negation() {
        let text = "a,b,c\n1.0,10.0,100.0\n2.0,20.0,200.0\n";
        let opts = IngestOptions {
            columns: vec![2, 0],
            negate: vec![1], // negates selected column 1 == file column a
            ..IngestOptions::default()
        };
        let got = load(text, Format::Csv, &opts).unwrap();
        assert_eq!(got.store.point(PointId(0)), &[100.0, -1.0]);
        assert_eq!(got.schema.columns[1].name, "a");
        assert!(got.schema.columns[1].negated);
        // Profiles keep the raw (pre-negation) values.
        assert_eq!(got.profiles[1].min, 1.0);
        assert_eq!(got.profiles[1].max, 2.0);
    }

    #[test]
    fn profile_min_max_cardinality_nulls() {
        let text = "1.0,5.0\n1.0,\n3.0,7.0\n";
        let opts = IngestOptions {
            header: Some(false),
            null_policy: NullPolicy::CountAndSkipRow,
            ..IngestOptions::default()
        };
        let got = load(text, Format::Csv, &opts).unwrap();
        assert_eq!(got.rows_ingested, 2);
        assert_eq!(got.rows_rejected, 1);
        let c0 = &got.profiles[0];
        assert_eq!((c0.min, c0.max), (1.0, 3.0));
        assert_eq!(c0.cardinality, 2); // 1.0 twice, 3.0 once
        assert_eq!(c0.values, 3);
        assert_eq!(got.profiles[1].nulls, 1);
        assert_eq!(got.profiles[1].values, 2);
    }

    #[test]
    fn null_rejected_by_default_with_line() {
        let text = "1.0,5.0\n1.0,\n";
        let err = load(text, Format::Csv, &IngestOptions::default()).unwrap_err();
        let SkyupError::DataLoad { line, message, .. } = &err else {
            panic!("want DataLoad, got {err:?}");
        };
        assert_eq!(*line, 2);
        assert!(message.contains("null"), "{message}");
    }

    #[test]
    fn malformed_cell_names_line_and_column() {
        let text = "1.0,2.0\n1.0,oops\n";
        let err = load(text, Format::Csv, &IngestOptions::default()).unwrap_err();
        let SkyupError::DataLoad { line, message, .. } = &err else {
            panic!("want DataLoad, got {err:?}");
        };
        assert_eq!(*line, 2);
        assert!(message.contains("oops"), "{message}");
        assert!(message.contains("c1"), "{message}");
    }

    #[test]
    fn ragged_row_is_an_error() {
        let text = "1.0,2.0\n3.0\n";
        let err = load(text, Format::Csv, &IngestOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("ragged"), "{err}");
    }

    #[test]
    fn non_finite_is_an_error() {
        for bad in ["inf", "NaN", "-inf"] {
            let text = format!("1.0,2.0\n3.0,{bad}\n");
            let err = load(&text, Format::Csv, &IngestOptions::default()).unwrap_err();
            assert!(err.to_string().contains("line 2"), "{bad}: {err}");
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_file_is_an_error() {
        for text in ["", "\n\n", "a,b\n"] {
            let err = load(text, Format::Csv, &IngestOptions::default()).unwrap_err();
            assert!(
                err.to_string().contains("empty file"),
                "{text:?} gave {err}"
            );
        }
    }

    #[test]
    fn ndjson_arrays_and_objects() {
        let arrays = "[1.0, 2.0]\n[3.0, 4.0]\n";
        let got = load(arrays, Format::Ndjson, &IngestOptions::default()).unwrap();
        assert_eq!(got.rows_ingested, 2);
        assert_eq!(got.schema.columns[1].name, "c1");

        let objects = "{\"price\": 1.0, \"weight\": 2.0}\n{\"weight\": 4.0, \"price\": 3.0}\n";
        let got = load(objects, Format::Ndjson, &IngestOptions::default()).unwrap();
        assert_eq!(got.schema.columns[0].name, "price");
        // Field order follows the first record, not each line.
        assert_eq!(got.store.point(PointId(1)), &[3.0, 4.0]);
    }

    #[test]
    fn ndjson_missing_field_is_null_and_huge_literal_is_non_finite() {
        let text = "{\"a\": 1.0, \"b\": 2.0}\n{\"a\": 3.0}\n";
        let err = load(text, Format::Ndjson, &IngestOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("null"), "{err}");

        // 1e999 parses as +inf — rejected with its line, not silently
        // poisoning dominance tests downstream.
        let text = "[1.0]\n[1e999]\n";
        let err = load(text, Format::Ndjson, &IngestOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn ndjson_ragged_array_is_an_error() {
        let text = "[1.0, 2.0]\n[1.0, 2.0, 3.0]\n";
        let err = load(text, Format::Ndjson, &IngestOptions::default()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("ragged"), "{err}");
    }

    #[test]
    fn format_detection() {
        assert_eq!(detect_format(Path::new("x.ndjson"), ""), Format::Ndjson);
        assert_eq!(detect_format(Path::new("x.csv"), "{"), Format::Csv);
        assert_eq!(
            detect_format(Path::new("x.dat"), "[1, 2]\n"),
            Format::Ndjson
        );
        assert_eq!(detect_format(Path::new("x.dat"), "1,2\n"), Format::Csv);
    }

    #[test]
    fn frames_cover_the_paper_intervals() {
        let mut store = PointStore::new(2);
        store.push(&[10.0, 5.0]);
        store.push(&[20.0, 5.0]);
        store.push(&[15.0, 9.0]);

        let unit = normalize_frame(&store, Frame::Unit);
        for (_, p) in unit.iter() {
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        assert_eq!(unit.point(PointId(1))[0], 1.0);

        let prod = normalize_frame(&store, Frame::Products);
        for (_, p) in prod.iter() {
            assert!(p.iter().all(|&x| 1.0 < x && x <= 2.0), "{p:?}");
        }
        assert_eq!(prod.point(PointId(1))[0], 2.0);
        // Order is preserved within each dimension.
        assert!(prod.point(PointId(0))[0] < prod.point(PointId(2))[0]);
    }

    #[test]
    fn counters_charged() {
        use skyup_obs::QueryMetrics;
        let mut m = QueryMetrics::new();
        let text = "1.0,5.0\n1.0,\n3.0,7.0\n";
        let opts = IngestOptions {
            header: Some(false),
            null_policy: NullPolicy::CountAndSkipRow,
            ..IngestOptions::default()
        };
        ingest_text("test", text, Format::Csv, &opts, &mut m).unwrap();
        assert_eq!(m.get(Counter::RowsIngested), 2);
        assert_eq!(m.get(Counter::RowsRejected), 1);
    }
}
