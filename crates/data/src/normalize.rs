//! Normalization into the unit space and attribute-direction handling.

use skyup_geom::PointStore;

/// Min-max normalizes every dimension of `store` into `[0, 1]`
/// (Section IV-B: "All data sets are normalized into the unit space").
/// Constant dimensions map to `0`.
pub fn normalize_unit(store: &PointStore) -> PointStore {
    let dims = store.dims();
    if store.is_empty() {
        return PointStore::new(dims);
    }
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for (_, p) in store.iter() {
        for (i, &v) in p.iter().enumerate() {
            lo[i] = lo[i].min(v);
            hi[i] = hi[i].max(v);
        }
    }
    let mut out = PointStore::with_capacity(dims, store.len());
    let mut buf = vec![0.0; dims];
    for (_, p) in store.iter() {
        for (i, &v) in p.iter().enumerate() {
            let span = hi[i] - lo[i];
            buf[i] = if span > 0.0 { (v - lo[i]) / span } else { 0.0 };
        }
        out.push(&buf);
    }
    out
}

/// Negates the listed dimensions, converting larger-is-better attributes
/// into the smaller-is-better convention all algorithms assume (the
/// paper's footnote 1).
pub fn negate_dimensions(store: &PointStore, dims_to_negate: &[usize]) -> PointStore {
    let dims = store.dims();
    for &d in dims_to_negate {
        assert!(d < dims, "dimension {d} out of range for {dims}-d store");
    }
    let mut out = PointStore::with_capacity(dims, store.len());
    let mut buf = vec![0.0; dims];
    for (_, p) in store.iter() {
        buf.copy_from_slice(p);
        for &d in dims_to_negate {
            buf[d] = -buf[d];
        }
        out.push(&buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_bounds_and_order() {
        let s = PointStore::from_rows(2, vec![vec![10.0, 5.0], vec![20.0, 5.0], vec![15.0, 9.0]]);
        let n = normalize_unit(&s);
        for (_, p) in n.iter() {
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // Min maps to 0, max to 1, order preserved.
        assert_eq!(n.point(skyup_geom::PointId(0))[0], 0.0);
        assert_eq!(n.point(skyup_geom::PointId(1))[0], 1.0);
        assert_eq!(n.point(skyup_geom::PointId(2))[0], 0.5);
        // Constant dimension 1 on first two rows: maps within [0,1].
        assert_eq!(n.point(skyup_geom::PointId(0))[1], 0.0);
        assert_eq!(n.point(skyup_geom::PointId(2))[1], 1.0);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let s = PointStore::from_rows(1, vec![vec![3.0], vec![3.0]]);
        let n = normalize_unit(&s);
        assert!(n.iter().all(|(_, p)| p[0] == 0.0));
    }

    #[test]
    fn negation_flips_dominance() {
        use skyup_geom::dominance::dominates;
        // Larger-is-better on dim 1: (1, 9) should beat (1, 4).
        let s = PointStore::from_rows(2, vec![vec![1.0, 9.0], vec![1.0, 4.0]]);
        let n = negate_dimensions(&s, &[1]);
        let a = n.point(skyup_geom::PointId(0));
        let b = n.point(skyup_geom::PointId(1));
        assert!(dominates(a, b));
    }

    #[test]
    fn empty_store_normalizes_to_empty() {
        let s = PointStore::new(3);
        assert!(normalize_unit(&s).is_empty());
    }
}
