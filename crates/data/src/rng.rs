//! A small deterministic PRNG (splitmix64 seeding + xoshiro256++).
//!
//! The offline environment cannot pull the `rand` crate, and workload
//! generation only needs uniform doubles, bounded integers, and a
//! Fisher–Yates shuffle — all deterministic per seed so data sets are
//! reproducible across runs and platforms. Not cryptographic.

/// Deterministic pseudo-random generator. Equal seeds produce equal
/// streams on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` with
    /// splitmix64, the recommended seeding for the xoshiro family.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform double in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift with a
    /// rejection step to remove modulo bias.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        let n = n as u64;
        // Reject the low-order overhang so every value is equally likely.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Fisher–Yates shuffle, deterministic per seed.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// A standard normal sample (Box–Muller; one of the pair is
    /// discarded to keep the stream simple).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn doubles_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
        assert_eq!(rng.range_f64(2.0, 2.0), 2.0);
    }

    #[test]
    fn range_usize_unbiased_enough_and_bounded() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.range_usize(5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
        // Same seed, same permutation.
        let mut rng2 = Rng::seed_from_u64(9);
        let mut v2: Vec<u32> = (0..100).collect();
        rng2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }
}
