//! Property suite for the sharded topology.
//!
//! The anchor claim of the scatter/gather design: a coordinator over N
//! partition shards is *bit-identical* to a single engine holding the
//! full competitor set at the same epoch — for every shard count, at
//! every epoch of a long mutation/query interleaving, across
//! mid-stream shard rebuilds, and under injected faults (dropped
//! flip-acks, truncated probes, unreachable shards) the answer is
//! either byte-for-byte the oracle's or an honestly-labelled partial —
//! never a wrong exact answer.

use skyup_data::rng::Rng;
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_geom::PointStore;
use skyup_obs::{Completion, Interrupt};
use skyup_serve::proto::render_query_response;
use skyup_serve::{
    execute_query, Coordinator, CostSpec, Engine, EngineConfig, FlipAck, LocalLink, Mutation,
    Partition, ProbeRequest, ProbeResponse, QueryRequest, ServeConfig, ServeHandle, ShardLink,
    ShardState, StagedOp,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A [`LocalLink`] with fault injection taps, so one coordinator type
/// covers the healthy path and every failure-matrix row.
#[derive(Clone)]
struct TestLink {
    inner: LocalLink,
    /// Fail every `stage` call (pre-commit abort path).
    fail_stage: Arc<AtomicBool>,
    /// Fail every `flip` call (lost flip-ack path).
    drop_flips: Arc<AtomicBool>,
    /// Fail every `probe` call (unreachable-shard path).
    fail_probe: Arc<AtomicBool>,
    /// Truncate probes to this many evaluated products, tagging them
    /// `Partial(DeadlineExceeded)` (`usize::MAX` = off).
    truncate: Arc<AtomicUsize>,
}

impl TestLink {
    fn healthy(state: Arc<ShardState>) -> TestLink {
        TestLink {
            inner: LocalLink(state),
            fail_stage: Arc::new(AtomicBool::new(false)),
            drop_flips: Arc::new(AtomicBool::new(false)),
            fail_probe: Arc::new(AtomicBool::new(false)),
            truncate: Arc::new(AtomicUsize::new(usize::MAX)),
        }
    }
}

impl ShardLink for TestLink {
    fn stage(&self, epoch: u64, op: Option<&StagedOp>) -> Result<u64, String> {
        if self.fail_stage.load(Ordering::SeqCst) {
            return Err("injected: stage dropped".into());
        }
        self.inner.stage(epoch, op)
    }

    fn flip(&self, epoch: u64) -> Result<FlipAck, String> {
        if self.drop_flips.load(Ordering::SeqCst) {
            return Err("injected: flip-ack lost".into());
        }
        self.inner.flip(epoch)
    }

    fn probe(&self, req: &ProbeRequest) -> Result<ProbeResponse, String> {
        if self.fail_probe.load(Ordering::SeqCst) {
            return Err("injected: shard unreachable".into());
        }
        let mut resp = self.inner.probe(req)?;
        let cut = self.truncate.load(Ordering::SeqCst);
        if resp.evaluated > cut {
            resp.evaluated = cut;
            resp.dominators.truncate(cut);
            resp.completion = Completion::Partial(Interrupt::DeadlineExceeded);
        }
        Ok(resp)
    }

    fn reachable(&self) -> bool {
        !self.fail_probe.load(Ordering::SeqCst)
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

fn seed_store(n: usize, dims: usize) -> PointStore {
    // Anti-correlated: large skylines, so per-shard skylines overlap in
    // dominance and the merge filter actually drops points.
    generate(
        n,
        &SyntheticConfig::unit(dims, Distribution::AntiCorrelated, 0x5AD5),
    )
}

/// An aggressive rebuild threshold so compaction renumbers rows many
/// times mid-stream — the bit-identity claim must survive it on both
/// the shards and the oracle.
fn engine_cfg() -> EngineConfig {
    EngineConfig {
        rebuild_min_dead: 4,
        ..EngineConfig::default()
    }
}

/// Spawns `shards` shard servers seeded from slabs of `store` and
/// returns fault-injectable links plus the states (for label asserts
/// and shutdown).
fn make_topology(store: &PointStore, shards: u32) -> (Vec<TestLink>, Vec<Arc<ShardState>>) {
    let partition = Partition::new(shards).unwrap();
    let mut links = Vec::new();
    let mut states = Vec::new();
    for id in 0..shards {
        let (slab, cid_of) = partition.shard_seed(store, id);
        let engine =
            Engine::with_identified_competitors(slab, cid_of, store.len() as u64, engine_cfg())
                .unwrap();
        let state = Arc::new(ShardState::new(
            ServeHandle::start(Arc::new(engine), ServeConfig::default()),
            id,
            shards,
        ));
        links.push(TestLink::healthy(Arc::clone(&state)));
        states.push(state);
    }
    (links, states)
}

fn shutdown(states: &[Arc<ShardState>]) {
    for s in states {
        s.handle().shutdown();
    }
}

fn random_point(rng: &mut Rng, dims: usize) -> Vec<f64> {
    (0..dims).map(|_| rng.range_f64(0.05, 1.1)).collect()
}

fn random_request(rng: &mut Rng, dims: usize) -> QueryRequest {
    let n_products = 1 + rng.range_usize(3);
    QueryRequest {
        products: (0..n_products).map(|_| random_point(rng, dims)).collect(),
        k: 1 + rng.range_usize(3),
        cost: if rng.range_usize(3) == 0 {
            CostSpec::Linear(2.0)
        } else {
            CostSpec::Reciprocal(1e-3)
        },
        // Budget-cut partials must be bit-identical too (admission is
        // replayed, not timed); deadlines are exercised separately —
        // their cut point is inherently nondeterministic.
        max_products: (rng.range_usize(6) == 0).then(|| rng.range_usize(3) as u64),
        deadline: None,
    }
}

/// A request guaranteed to reach the scatter (no admission budget that
/// could cut it to zero products first) — the fault-injection tests
/// need the gather path itself to run.
fn unbudgeted_request(rng: &mut Rng, dims: usize) -> QueryRequest {
    QueryRequest {
        max_products: None,
        ..random_request(rng, dims)
    }
}

/// The tentpole anchor: a 10k-op mutation/query interleaving, replayed
/// against a single-engine oracle, at shard counts 1, 2, and 4. Every
/// query response must render byte-identically; every mutation ack must
/// agree on epoch, assigned cid, and removal (the per-shard `rebuilt`/
/// `evicted` engine details legitimately differ).
#[test]
fn coordinator_is_bit_identical_to_single_engine_across_shard_counts() {
    let dims = 3;
    let store = seed_store(120, dims);
    for shards in [1u32, 2, 4] {
        let (links, states) = make_topology(&store, shards);
        let coordinator = Coordinator::new(links, Partition::new(shards).unwrap(), &store).unwrap();
        let oracle = Engine::with_competitors(store.clone(), engine_cfg());

        let mut rng = Rng::seed_from_u64(0x5ca77e4 + shards as u64);
        let mut live: Vec<u64> = (0..store.len() as u64).collect();
        for op in 0..10_000 {
            match rng.range_usize(10) {
                // Add a competitor.
                0..=3 => {
                    let point = random_point(&mut rng, dims);
                    let got = coordinator
                        .mutate(Mutation::AddCompetitor(point.clone()))
                        .unwrap();
                    let want = oracle.apply(Mutation::AddCompetitor(point)).unwrap();
                    assert_eq!(got.epoch, want.epoch, "shards={shards} op={op}: add epoch");
                    assert_eq!(got.cid, want.cid, "shards={shards} op={op}: assigned cid");
                    live.push(got.cid.unwrap());
                }
                // Remove a live competitor — or, sometimes, a spent cid
                // (the no-op path must not publish an epoch).
                4..=5 => {
                    let cid = if rng.range_usize(8) == 0 || live.is_empty() {
                        u64::MAX
                    } else {
                        live.swap_remove(rng.range_usize(live.len()))
                    };
                    let got = coordinator.mutate(Mutation::RemoveCompetitor(cid)).unwrap();
                    let want = oracle.apply(Mutation::RemoveCompetitor(cid)).unwrap();
                    assert_eq!(got.epoch, want.epoch, "shards={shards} op={op}: rm epoch");
                    assert_eq!(
                        got.removed, want.removed,
                        "shards={shards} op={op}: removed"
                    );
                }
                // Query.
                _ => {
                    let req = random_request(&mut rng, dims);
                    let got = coordinator.query(&req).unwrap();
                    let want = execute_query(&oracle, &req).unwrap();
                    assert_eq!(
                        render_query_response(&got),
                        render_query_response(&want),
                        "shards={shards} op={op}: rendered response"
                    );
                }
            }
        }
        assert_eq!(coordinator.epoch(), oracle.snapshot().epoch());
        for state in &states {
            assert_eq!(state.label(), coordinator.epoch(), "published labels agree");
        }
        shutdown(&states);
    }
}

/// Failure-matrix row: a shard whose probe deadline fires answers a
/// shorter prefix; the gathered answer is cut to that prefix, labelled
/// partial, and the evaluated prefix is byte-identical to the oracle
/// evaluating exactly those products. Never a wrong exact answer.
#[test]
fn shard_deadline_partial_yields_an_exact_prefix() {
    let dims = 3;
    let store = seed_store(90, dims);
    let (links, states) = make_topology(&store, 2);
    let truncate = Arc::clone(&links[1].truncate);
    let coordinator = Coordinator::new(links, Partition::new(2).unwrap(), &store).unwrap();
    let oracle = Engine::with_competitors(store.clone(), engine_cfg());

    let mut rng = Rng::seed_from_u64(0xdead11);
    let req = QueryRequest {
        products: (0..6).map(|_| random_point(&mut rng, dims)).collect(),
        k: 8,
        cost: CostSpec::Reciprocal(1e-3),
        max_products: None,
        deadline: None,
    };
    truncate.store(4, Ordering::SeqCst);
    let got = coordinator.query(&req).unwrap();
    assert_eq!(
        got.completion,
        Completion::Partial(Interrupt::DeadlineExceeded)
    );
    assert_eq!(got.evaluated, 4, "cut to the slow shard's prefix");

    // The partial must agree byte-for-byte with the oracle run on the
    // surviving prefix (modulo the completion tag, which the oracle —
    // given only 4 products — reports as exact).
    let prefix = QueryRequest {
        products: req.products[..4].to_vec(),
        ..req.clone()
    };
    let want = execute_query(&oracle, &prefix).unwrap();
    assert_eq!(got.epoch, want.epoch);
    assert_eq!(got.results.len(), want.results.len());
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.index, w.index);
        assert_eq!(g.cost.to_bits(), w.cost.to_bits());
        for (a, b) in g.upgraded.iter().zip(&w.upgraded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    // Healthy again: exact and bit-identical end to end.
    truncate.store(usize::MAX, Ordering::SeqCst);
    let got = coordinator.query(&req).unwrap();
    let want = execute_query(&oracle, &req).unwrap();
    assert_eq!(render_query_response(&got), render_query_response(&want));
    shutdown(&states);
}

/// Failure-matrix row: an unreachable shard degrades the gather to an
/// empty, honestly-labelled partial — the coordinator cannot prove any
/// dominator set complete without every slab.
#[test]
fn unreachable_shard_degrades_to_empty_partial() {
    let dims = 3;
    let store = seed_store(60, dims);
    let (links, states) = make_topology(&store, 2);
    let fail_probe = Arc::clone(&links[0].fail_probe);
    let coordinator = Coordinator::new(links, Partition::new(2).unwrap(), &store).unwrap();

    let mut rng = Rng::seed_from_u64(0xdead22);
    let req = unbudgeted_request(&mut rng, dims);
    fail_probe.store(true, Ordering::SeqCst);
    let got = coordinator.query(&req).unwrap();
    assert_eq!(got.completion, Completion::Partial(Interrupt::Overloaded));
    assert_eq!(got.evaluated, 0);
    assert!(got.results.is_empty());
    assert_eq!(got.epoch, coordinator.epoch());

    fail_probe.store(false, Ordering::SeqCst);
    let oracle = Engine::with_competitors(store.clone(), engine_cfg());
    let got = coordinator.query(&req).unwrap();
    let want = execute_query(&oracle, &req).unwrap();
    assert_eq!(render_query_response(&got), render_query_response(&want));
    shutdown(&states);
}

/// Failure-matrix row: every flip-ack to one shard is lost *after* the
/// stage round committed. The mutation still acks (commit point is the
/// stage round), the lagging shard is repaired by the next gather, and
/// the answer is bit-identical to the oracle at the committed epoch.
#[test]
fn lost_flip_ack_is_repaired_on_read() {
    let dims = 3;
    let store = seed_store(60, dims);
    let (links, states) = make_topology(&store, 2);
    let drop_flips = Arc::clone(&links[0].drop_flips);
    let coordinator = Coordinator::new(links, Partition::new(2).unwrap(), &store).unwrap();
    let oracle = Engine::with_competitors(store.clone(), engine_cfg());

    let mut rng = Rng::seed_from_u64(0xdead33);
    drop_flips.store(true, Ordering::SeqCst);
    let point = random_point(&mut rng, dims);
    let got = coordinator
        .mutate(Mutation::AddCompetitor(point.clone()))
        .unwrap();
    let want = oracle.apply(Mutation::AddCompetitor(point)).unwrap();
    assert_eq!(got.epoch, want.epoch, "committed at the stage round");
    assert_eq!(got.cid, want.cid);
    assert_eq!(states[0].label(), got.epoch - 1, "shard 0 missed its flip");

    // The network heals; the very next query repairs shard 0 in-line
    // and must already be bit-identical.
    drop_flips.store(false, Ordering::SeqCst);
    let req = unbudgeted_request(&mut rng, dims);
    let got_q = coordinator.query(&req).unwrap();
    let want_q = execute_query(&oracle, &req).unwrap();
    assert_eq!(
        render_query_response(&got_q),
        render_query_response(&want_q)
    );
    assert_eq!(states[0].label(), got.epoch, "repaired on read");
    shutdown(&states);
}

/// Failure-matrix row: a stage failure aborts *before* the commit
/// point — the client sees the error, no epoch is published anywhere,
/// and the next publish (which re-stages the same epoch number over the
/// leftovers) keeps the topology bit-identical.
#[test]
fn stage_failure_aborts_cleanly_and_epoch_is_reused() {
    let dims = 3;
    let store = seed_store(60, dims);
    let (links, states) = make_topology(&store, 2);
    let fail_stage = Arc::clone(&links[1].fail_stage);
    let coordinator = Coordinator::new(links, Partition::new(2).unwrap(), &store).unwrap();
    let oracle = Engine::with_competitors(store.clone(), engine_cfg());

    let mut rng = Rng::seed_from_u64(0xdead44);
    let epoch_before = coordinator.epoch();
    fail_stage.store(true, Ordering::SeqCst);
    let point = random_point(&mut rng, dims);
    let err = coordinator
        .mutate(Mutation::AddCompetitor(point))
        .unwrap_err();
    assert!(err.to_string().contains("stage"), "surfaced: {err}");
    assert_eq!(coordinator.epoch(), epoch_before, "pre-commit abort");

    // Shard 0 staged epoch_before+1 and was left hanging; the retry
    // overwrites that staged slot with the new op and commits.
    fail_stage.store(false, Ordering::SeqCst);
    let point = random_point(&mut rng, dims);
    let got = coordinator
        .mutate(Mutation::AddCompetitor(point.clone()))
        .unwrap();
    let want = oracle.apply(Mutation::AddCompetitor(point)).unwrap();
    assert_eq!(got.epoch, want.epoch);
    assert_eq!(got.cid, want.cid);

    let req = unbudgeted_request(&mut rng, dims);
    let got_q = coordinator.query(&req).unwrap();
    let want_q = execute_query(&oracle, &req).unwrap();
    assert_eq!(
        render_query_response(&got_q),
        render_query_response(&want_q)
    );
    shutdown(&states);
}
