//! Property suite for the batch execution pipeline.
//!
//! Two anchors:
//!
//! 1. [`execute_batch`] must be a drop-in scheduler swap: for any mix
//!    of requests (multi-product, budgeted, invalid) its per-request
//!    responses are bit-identical to [`execute_query`]'s at every
//!    worker count, hits and misses alike.
//! 2. A live server with batching on — concurrent pipelined clients,
//!    interleaved mutations, deadline- and budget-cut requests landing
//!    mid-batch — produces only responses that a cacheless
//!    cold-recompute oracle reproduces bit-for-bit at the response's
//!    epoch. This is the serving-layer completion of the core claim:
//!    batching may only change *when* an answer is computed, never the
//!    answer.

use skyup_core::{dominators_from_skyline, upgrade_single, UpgradeConfig};
use skyup_data::rng::Rng;
use skyup_data::synthetic::{generate, Distribution, SyntheticConfig};
use skyup_geom::{PointId, PointStore};
use skyup_obs::{Completion, Counter, Interrupt, NullRecorder};
use skyup_serve::{
    execute_batch, execute_query, CompetitorId, CostSpec, Engine, EngineConfig, QueryRequest,
    QueryResponse, ServeConfig, ServeHandle,
};
use skyup_skyline::skyline_sfs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn random_point(rng: &mut Rng, dims: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..dims).map(|_| rng.range_f64(lo, hi)).collect()
}

fn random_request(rng: &mut Rng, dims: usize) -> QueryRequest {
    let n_products = 1 + rng.range_usize(3);
    QueryRequest {
        products: (0..n_products)
            .map(|_| random_point(rng, dims, 0.2, 1.2))
            .collect(),
        k: 1 + rng.range_usize(3),
        cost: if rng.range_usize(3) == 0 {
            CostSpec::Linear(2.0)
        } else {
            CostSpec::Reciprocal(1e-3)
        },
        max_products: (rng.range_usize(5) == 0).then(|| rng.range_usize(3) as u64),
        deadline: None,
    }
}

fn assert_responses_bit_identical(a: &QueryResponse, b: &QueryResponse, what: &str) {
    assert_eq!(a.epoch, b.epoch, "{what}: epoch");
    assert_eq!(a.evaluated, b.evaluated, "{what}: evaluated");
    assert_eq!(
        format!("{:?}", a.completion),
        format!("{:?}", b.completion),
        "{what}: completion"
    );
    assert_eq!(a.results.len(), b.results.len(), "{what}: result count");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.index, y.index, "{what}: index");
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{what}: cost bits");
        assert_eq!(x.upgraded.len(), y.upgraded.len(), "{what}: dims");
        for (u, v) in x.upgraded.iter().zip(&y.upgraded) {
            assert_eq!(u.to_bits(), v.to_bits(), "{what}: upgraded bits");
        }
    }
}

/// Anchor 1: the batch path against the per-request path, same engine
/// state, several worker counts, mixed valid/budgeted/invalid requests,
/// cold and cache-warm.
#[test]
fn execute_batch_is_bit_identical_to_execute_query() {
    let dims = 3;
    let mut rng = Rng::seed_from_u64(0xba7c4);
    // Anti-correlated competitors: a large skyline, so the batch
    // pipeline's dominator memo and hoisted sorts actually engage.
    let competitors = generate(
        800,
        &SyntheticConfig::unit(dims, Distribution::AntiCorrelated, 11),
    );

    let mut reqs: Vec<QueryRequest> = (0..96).map(|_| random_request(&mut rng, dims)).collect();
    // Sprinkle invalid requests: each must fail in its own slot without
    // poisoning the rest of the batch.
    reqs[17].products[0].push(0.5); // wrong dimensionality
    reqs[53].k = 0;

    // The per-request expectation, computed on a pristine engine.
    let oracle_engine = Engine::with_competitors(competitors.clone(), EngineConfig::default());
    let expected: Vec<Result<QueryResponse, String>> = reqs
        .iter()
        .map(|r| execute_query(&oracle_engine, r).map_err(|e| e.to_string()))
        .collect();

    for threads in [1usize, 2, 5] {
        // Fresh engine per worker count so each run starts from the same
        // cold cache; a second pass then re-runs over the warm cache.
        let engine = Engine::with_competitors(competitors.clone(), EngineConfig::default());
        for pass in ["cold", "warm"] {
            for (chunk_idx, chunk) in reqs.chunks(13).enumerate() {
                let got = execute_batch(&engine, chunk, threads);
                assert_eq!(got.len(), chunk.len());
                for (i, result) in got.iter().enumerate() {
                    let slot = chunk_idx * 13 + i;
                    let what = format!("threads={threads} {pass} slot={slot}");
                    match (&expected[slot], result) {
                        (Ok(want), Ok(have)) => assert_responses_bit_identical(want, have, &what),
                        (Err(_), Err(_)) => {}
                        (want, have) => panic!("{what}: expected {want:?}, got {have:?}"),
                    }
                }
            }
        }
        assert!(
            engine.metrics().get(Counter::CacheHit) > 0,
            "warm pass never hit the cache"
        );
    }
}

/// The live set at one epoch, in insertion order — which is the order
/// the engine's store keeps (compaction preserves it; see
/// cache_property.rs), so the oracle's id-sorted skyline filters
/// identically to the engine's.
type LiveSet = Vec<Vec<f64>>;

/// Per-epoch oracle context: the cold-rebuilt store and its id-sorted
/// skyline, shared by every product verified at that epoch.
struct OracleCtx {
    store: PointStore,
    skyline: Vec<PointId>,
}

impl OracleCtx {
    fn new(live: &LiveSet, dims: usize) -> Self {
        let store = PointStore::from_rows(dims, live.iter().cloned());
        let all: Vec<PointId> = store.ids().collect();
        let mut skyline = skyline_sfs(&store, &all);
        skyline.sort_unstable();
        Self { store, skyline }
    }

    /// Cold recompute of one response's results, replicating the
    /// server's merge: per-product Algorithm 1 over the evaluated
    /// prefix, then the (cost, index) top-k.
    fn results(&self, req: &QueryRequest, evaluated: usize) -> Vec<(usize, f64, Vec<f64>)> {
        let cost_fn = req.cost.cost_fn(self.store.dims());
        let mut answers: Vec<(usize, f64, Vec<f64>)> = req.products[..evaluated]
            .iter()
            .enumerate()
            .map(|(index, t)| {
                let dominators =
                    dominators_from_skyline(&self.store, &self.skyline, t, &mut NullRecorder);
                let (cost, upgraded) = upgrade_single(
                    &self.store,
                    &dominators,
                    t,
                    &cost_fn,
                    &UpgradeConfig::default(),
                );
                (index, cost, upgraded)
            })
            .collect();
        answers.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        answers.truncate(req.k);
        answers
    }
}

/// Anchor 2: the 10k-op interleaving. One mutator publishes epochs and
/// journals each epoch's live set; three pipelined clients push queries
/// through a batching [`ServeHandle`] — some under product budgets,
/// some with already-expired or microsecond deadlines that cut inside a
/// batch. Post-hoc, every response must match the cold oracle at its
/// epoch over its evaluated prefix, bit for bit.
#[test]
fn interleaved_batched_serving_matches_cold_oracle() {
    const MUTATIONS: usize = 600;
    const CLIENTS: usize = 3;
    const QUERIES_PER_CLIENT: usize = 3200;
    const PIPELINE: usize = 8;
    let dims = 3;
    let mut rng = Rng::seed_from_u64(0x10a0b5);

    let initial: Vec<Vec<f64>> = (0..120)
        .map(|_| random_point(&mut rng, dims, 0.0, 1.0))
        .collect();
    let store = PointStore::from_rows(dims, initial.iter().cloned());
    let engine = Arc::new(Engine::with_competitors(store, EngineConfig::default()));
    let handle = ServeHandle::start(
        Arc::clone(&engine),
        ServeConfig {
            threads: 2,
            queue_cap: 64,
            batch_window_us: 50,
            max_batch: 16,
            ..ServeConfig::default()
        },
    );

    // Epoch journal. The mutator is the only writer of engine state, so
    // its local mirror after the i-th mutation IS the live set at the
    // epoch that mutation published; verification reads the journal only
    // after every thread has joined.
    let journal: Arc<Mutex<HashMap<u64, LiveSet>>> = Arc::new(Mutex::new(HashMap::new()));
    journal
        .lock()
        .unwrap()
        .insert(engine.snapshot().epoch(), initial.clone());

    let mutator = {
        let handle = handle.clone();
        let journal = Arc::clone(&journal);
        let mut rng = Rng::seed_from_u64(0x3a70);
        // `with_competitors` assigns cids by row index, like the engine.
        let mut live: Vec<(CompetitorId, Vec<f64>)> = initial
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, c)| (i as CompetitorId, c))
            .collect();
        std::thread::spawn(move || {
            for op in 0..MUTATIONS {
                let epoch = if live.len() < 60 || rng.range_usize(3) != 0 {
                    let coords = random_point(&mut rng, dims, 0.0, 1.2);
                    let out = handle
                        .add_competitor(coords.clone())
                        .expect("add is always valid");
                    live.push((out.cid.expect("add assigns a cid"), coords));
                    out.epoch
                } else {
                    let pick = rng.range_usize(live.len());
                    // Ordinary remove, not swap_remove: the mirror must
                    // keep insertion order.
                    let (cid, _) = live.remove(pick);
                    let out = handle.remove_competitor(cid).expect("cid was live");
                    assert!(out.removed, "removing a live cid must succeed");
                    out.epoch
                };
                let set: LiveSet = live.iter().map(|(_, c)| c.clone()).collect();
                journal.lock().unwrap().insert(epoch, set);
                if op % 3 == 0 {
                    // Stretch the mutation stream across the query burst
                    // so epochs actually swap under in-flight batches.
                    std::thread::yield_now();
                }
            }
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let handle = handle.clone();
            let mut rng = Rng::seed_from_u64(0xc11e47 + c as u64);
            // A recurring product pool per client so repeat queries can
            // hit the cache across epochs.
            let pool: Vec<Vec<f64>> = (0..16)
                .map(|_| random_point(&mut rng, dims, 0.2, 1.1))
                .collect();
            std::thread::spawn(move || {
                let mut done: Vec<(QueryRequest, QueryResponse)> =
                    Vec::with_capacity(QUERIES_PER_CLIENT);
                let mut inflight: std::collections::VecDeque<(
                    QueryRequest,
                    skyup_serve::QueryTicket,
                )> = std::collections::VecDeque::new();
                for q in 0..QUERIES_PER_CLIENT {
                    if inflight.len() >= PIPELINE {
                        let (req, ticket) = inflight.pop_front().expect("non-empty");
                        done.push((req, ticket.wait().expect("valid query")));
                    }
                    let mut req = random_request(&mut rng, dims);
                    if rng.range_usize(2) == 0 {
                        req.products = (0..req.products.len())
                            .map(|_| pool[rng.range_usize(pool.len())].clone())
                            .collect();
                    }
                    match q % 16 {
                        // Already expired on arrival: must come back
                        // Partial and empty, never wedge a batch.
                        3 => req.deadline = Some(Duration::ZERO),
                        // Tight enough to sometimes fire mid-batch,
                        // loose enough to sometimes finish.
                        9 => req.deadline = Some(Duration::from_micros(20)),
                        // Guaranteed budget cut inside the batch.
                        13 => {
                            req.products = (0..3)
                                .map(|_| random_point(&mut rng, dims, 0.2, 1.2))
                                .collect();
                            req.max_products = Some(1);
                        }
                        _ => {}
                    }
                    let ticket = handle.query_async(req.clone()).expect("valid query");
                    inflight.push_back((req, ticket));
                }
                while let Some((req, ticket)) = inflight.pop_front() {
                    done.push((req, ticket.wait().expect("valid query")));
                }
                done
            })
        })
        .collect();

    mutator.join().expect("mutator thread");
    let responses: Vec<(QueryRequest, QueryResponse)> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("client thread"))
        .collect();
    let journal = Arc::try_unwrap(journal)
        .expect("all threads joined")
        .into_inner()
        .unwrap();

    // Post-hoc verification: every response against the cold oracle at
    // its own epoch.
    let mut contexts: HashMap<u64, OracleCtx> = HashMap::new();
    let mut deadline_cuts = 0usize;
    let mut budget_cuts = 0usize;
    let mut shed = 0usize;
    for (i, (req, resp)) in responses.iter().enumerate() {
        match resp.completion {
            Completion::Exact => assert_eq!(resp.evaluated, req.products.len(), "response {i}"),
            Completion::Partial(Interrupt::DeadlineExceeded) => {
                assert!(resp.evaluated < req.products.len(), "response {i}");
                deadline_cuts += 1;
            }
            Completion::Partial(Interrupt::NodeVisitBudget) => {
                let budget = req.max_products.expect("budget cut needs a budget") as usize;
                assert_eq!(
                    resp.evaluated,
                    budget.min(req.products.len()),
                    "response {i}"
                );
                budget_cuts += 1;
            }
            Completion::Partial(Interrupt::Overloaded) => {
                assert_eq!(resp.evaluated, 0, "shed response {i} must be empty");
                shed += 1;
            }
            other => panic!("response {i}: unexpected completion {other:?}"),
        }
        let live = journal
            .get(&resp.epoch)
            .unwrap_or_else(|| panic!("response {i}: unjournaled epoch {}", resp.epoch));
        let ctx = contexts
            .entry(resp.epoch)
            .or_insert_with(|| OracleCtx::new(live, dims));
        let expected = ctx.results(req, resp.evaluated);
        assert_eq!(resp.results.len(), expected.len(), "response {i}");
        for (got, (index, cost, upgraded)) in resp.results.iter().zip(&expected) {
            assert_eq!(got.index, *index, "response {i}");
            assert_eq!(
                got.cost.to_bits(),
                cost.to_bits(),
                "response {i}: cost drifted from the cold oracle"
            );
            assert_eq!(got.upgraded.len(), upgraded.len(), "response {i}");
            for (a, b) in got.upgraded.iter().zip(upgraded) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "response {i}: upgrade coords drifted"
                );
            }
        }
    }
    handle.shutdown();

    // The interleaving must have exercised what it claims to: batches
    // actually formed, epochs swapped under them, limits cut mid-batch,
    // and the cache both hit and missed across epochs.
    assert_eq!(responses.len(), CLIENTS * QUERIES_PER_CLIENT);
    assert!(
        responses.len() + MUTATIONS > 10_000,
        "interleaving shrank below the 10k-op bar"
    );
    let metrics = engine.metrics();
    assert!(
        metrics.get(Counter::BatchesExecuted) > 0,
        "no batch ever formed"
    );
    assert!(
        metrics.get(Counter::BatchedRequests) > 0,
        "no request ever rode a batch"
    );
    assert!(metrics.get(Counter::EpochSwaps) >= MUTATIONS as u64);
    assert!(metrics.get(Counter::CacheHit) > 0, "cache never hit");
    assert!(metrics.get(Counter::CacheMiss) > 0, "cache never missed");
    assert!(deadline_cuts > 0, "no deadline ever cut a batched request");
    assert!(budget_cuts > 0, "no budget ever cut a batched request");
    // Shedding is allowed (deadline already passed on arrival) but the
    // pipeline is sized to keep it rare; all kinds were verified above.
    let _ = shed;
}
