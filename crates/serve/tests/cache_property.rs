//! Property suite for the epoch engine and the dominance-aware cache.
//!
//! The anchor test drives a long random interleaving of mutations and
//! queries through [`execute_query`] — the exact code path the worker
//! pool runs — and checks every response bit-for-bit against a
//! cacheless cold-recompute oracle over a mirrored live set, including
//! budgeted queries that complete partially. Bit-identity across cache
//! hits, selective evictions, epoch swaps, and STR rebuilds is the
//! whole correctness claim of the cache; the targeted tests below pin
//! down that the invalidation really is selective (exact eviction
//! counts, survivors still hit) rather than a disguised flush.

use skyup_core::cost::CostFunction;
use skyup_core::{dominators_from_skyline, upgrade_single, UpgradeConfig};
use skyup_data::rng::Rng;
use skyup_geom::{PointId, PointStore};
use skyup_obs::{Completion, Counter, NullRecorder};
use skyup_serve::{
    execute_query, CompetitorId, CostSpec, Engine, EngineConfig, Mutation, QueryRequest,
};
use skyup_skyline::skyline_sfs;

/// Cold-recompute oracle: rebuild the live set from scratch and answer
/// one product with no cache, no tree, no epochs.
fn oracle_answer(
    live: &[(CompetitorId, Vec<f64>)],
    dims: usize,
    t: &[f64],
    cost_fn: &dyn CostFunction,
) -> (f64, Vec<f64>) {
    let store = PointStore::from_rows(dims, live.iter().map(|(_, c)| c.clone()));
    let all: Vec<PointId> = store.ids().collect();
    let mut skyline = skyline_sfs(&store, &all);
    skyline.sort_unstable();
    let dominators = dominators_from_skyline(&store, &skyline, t, &mut NullRecorder);
    upgrade_single(&store, &dominators, t, cost_fn, &UpgradeConfig::default())
}

fn random_point(rng: &mut Rng, dims: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..dims).map(|_| rng.range_f64(lo, hi)).collect()
}

#[test]
fn interleaved_mutations_match_cold_oracle() {
    const OPS: usize = 10_000;
    let dims = 3;
    let mut rng = Rng::seed_from_u64(0x5eed_cafe);

    // Seed set: the mirror records (cid, coords) in insertion order,
    // which compaction preserves — so the oracle store and the engine
    // store list live points in the same relative order and the
    // id-sorted skylines filter identically.
    let initial: Vec<Vec<f64>> = (0..80)
        .map(|_| random_point(&mut rng, dims, 0.0, 1.0))
        .collect();
    let store = PointStore::from_rows(dims, initial.iter().cloned());
    let engine = Engine::with_competitors(store, EngineConfig::default());
    let mut live: Vec<(CompetitorId, Vec<f64>)> = initial
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as CompetitorId, c))
        .collect();

    // A pool of recurring products so repeated queries can hit the
    // cache across epochs.
    let mut pool: Vec<Vec<f64>> = (0..24)
        .map(|_| random_point(&mut rng, dims, 0.2, 1.1))
        .collect();

    let cost = CostSpec::Reciprocal(1e-3);
    let cost_fn = cost.cost_fn(dims);
    let mut queries = 0usize;
    let mut partials = 0usize;
    for _ in 0..OPS {
        match rng.range_usize(10) {
            // 40%: query a batch, sometimes under a product budget.
            0..=3 => {
                let batch = 1 + rng.range_usize(4);
                let products: Vec<Vec<f64>> = (0..batch)
                    .map(|_| {
                        if rng.range_usize(10) < 7 {
                            pool[rng.range_usize(pool.len())].clone()
                        } else {
                            let fresh = random_point(&mut rng, dims, 0.2, 1.1);
                            let slot = rng.range_usize(pool.len());
                            pool[slot] = fresh.clone();
                            fresh
                        }
                    })
                    .collect();
                let k = 1 + rng.range_usize(4);
                let max_products = if rng.range_usize(5) == 0 {
                    Some(rng.range_usize(batch) as u64)
                } else {
                    None
                };
                let req = QueryRequest {
                    products: products.clone(),
                    k,
                    cost,
                    max_products,
                    deadline: None,
                };
                let resp = execute_query(&engine, &req).expect("valid query");
                queries += 1;

                // The budget is cache-independent: exactly
                // min(batch, budget) products are processed.
                let expect_evaluated = max_products
                    .map(|b| (b as usize).min(batch))
                    .unwrap_or(batch);
                assert_eq!(resp.evaluated, expect_evaluated);
                match resp.completion {
                    Completion::Exact => assert_eq!(expect_evaluated, batch),
                    Completion::Partial(_) => {
                        partials += 1;
                        assert!(expect_evaluated < batch);
                    }
                }
                assert_eq!(resp.epoch, engine.snapshot().epoch());

                // Oracle over the processed prefix, ranked the same way.
                let mut expected: Vec<(usize, f64, Vec<f64>)> = products[..expect_evaluated]
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let (c, up) = oracle_answer(&live, dims, t, &cost_fn);
                        (i, c, up)
                    })
                    .collect();
                expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                expected.truncate(k);
                assert_eq!(resp.results.len(), expected.len());
                for (got, (index, cost, upgraded)) in resp.results.iter().zip(&expected) {
                    assert_eq!(got.index, *index);
                    assert_eq!(
                        got.cost.to_bits(),
                        cost.to_bits(),
                        "cost drifted from oracle"
                    );
                    assert_eq!(got.upgraded.len(), upgraded.len());
                    for (a, b) in got.upgraded.iter().zip(upgraded) {
                        assert_eq!(a.to_bits(), b.to_bits(), "upgrade coords drifted");
                    }
                }
            }
            // 30%: add a competitor.
            4..=6 => {
                let coords = random_point(&mut rng, dims, 0.0, 1.0);
                let out = engine
                    .apply(Mutation::AddCompetitor(coords.clone()))
                    .expect("valid add");
                live.push((out.cid.expect("add assigns a cid"), coords));
                assert_eq!(out.epoch, engine.snapshot().epoch());
            }
            // 30%: remove a live competitor (sometimes a stale cid).
            _ => {
                if live.is_empty() {
                    continue;
                }
                let (cid, known) = if rng.range_usize(20) == 0 {
                    (u64::MAX - rng.range_usize(100) as u64, false)
                } else {
                    (live[rng.range_usize(live.len())].0, true)
                };
                let out = engine
                    .apply(Mutation::RemoveCompetitor(cid))
                    .expect("remove never errors");
                assert_eq!(out.removed, known);
                if known {
                    live.retain(|(c, _)| *c != cid);
                }
            }
        }
    }

    // The interleaving must actually have exercised the machinery it
    // claims to verify.
    let metrics = engine.metrics();
    let stats = engine.stats();
    assert!(
        queries > 1_000,
        "interleaving degenerated: {queries} queries"
    );
    assert!(partials > 10, "budgeted partial completions never fired");
    assert!(metrics.get(Counter::CacheHit) > 0, "cache never hit");
    assert!(metrics.get(Counter::CacheMiss) > 0, "cache never missed");
    assert!(
        metrics.get(Counter::CacheEvictions) > 0,
        "mutations never evicted a cached answer"
    );
    assert!(
        metrics.get(Counter::EpochSwaps) > 0,
        "no epoch ever swapped"
    );
    assert!(stats.rebuilds > 0, "degradation heuristic never rebuilt");
    assert_eq!(stats.live, live.len());
}

/// Exact eviction counts: an insert evicts precisely the entries whose
/// product lies in the new point's ADR, a delete precisely the entries
/// whose dominator skyline used the removed competitor. Survivors keep
/// hitting.
#[test]
fn invalidation_is_selective_not_a_flush() {
    let rows: Vec<Vec<f64>> = vec![
        vec![0.2, 0.8], // cid 0
        vec![0.8, 0.2], // cid 1
        vec![0.5, 0.5], // cid 2
    ];
    let store = PointStore::from_rows(2, rows);
    let engine = Engine::with_competitors(store, EngineConfig::default());
    let cost = CostSpec::Reciprocal(1e-3);
    let query = |t: &[f64]| {
        execute_query(
            &engine,
            &QueryRequest {
                products: vec![t.to_vec()],
                k: 1,
                cost,
                max_products: None,
                deadline: None,
            },
        )
        .expect("valid query")
    };
    let hits = || engine.metrics().get(Counter::CacheHit);

    // Cache four products with distinct dominator sets.
    let a = [0.9, 0.9]; // dominated by cids {0, 1, 2}
    let b = [0.6, 0.9]; // dominated by cids {0, 2}
    let c = [0.9, 0.6]; // dominated by cids {1, 2}
    let d = [0.25, 0.85]; // dominated by cid {0}
    for t in [&a, &b, &c, &d] {
        query(t.as_slice());
    }
    assert_eq!(engine.stats().cached, 4);
    assert_eq!(hits(), 0);

    // (0.7, 0.7) ADR-dominates only product a — and is itself dominated
    // by (0.5, 0.5), so no cached answer actually changes.
    let out = engine
        .apply(Mutation::AddCompetitor(vec![0.7, 0.7]))
        .unwrap();
    assert_eq!(out.evicted, 1, "insert must evict exactly the ADR hits");
    assert_eq!(engine.stats().cached, 3);
    let before = hits();
    for t in [&b, &c, &d] {
        query(t.as_slice());
    }
    assert_eq!(hits(), before + 3, "survivors must still hit after insert");
    query(&a); // re-cache a (miss)
    assert_eq!(engine.stats().cached, 4);

    // Removing (0.5, 0.5) = cid 2 invalidates a, b, c (their dominator
    // skylines used it) but not d.
    let out = engine.apply(Mutation::RemoveCompetitor(2)).unwrap();
    assert!(out.removed);
    assert_eq!(
        out.evicted, 3,
        "delete must evict exactly the users of the cid"
    );
    assert_eq!(engine.stats().cached, 1);
    let before = hits();
    query(&d);
    assert_eq!(hits(), before + 1, "the non-user must survive the delete");
}

/// An STR rebuild compacts the store and renumbers points, but stable
/// competitor ids keep cached answers valid — the cache survives the
/// rebuild and the renumbered engine still answers bit-identically.
#[test]
fn rebuild_preserves_cache_and_cids() {
    let mut rng = Rng::seed_from_u64(7);
    let dims = 2;
    // Base points live in [0.1, 1]^2; the appended corner point is the
    // unique possible dominator of anything with x < 0.1.
    let mut rows: Vec<Vec<f64>> = (0..40)
        .map(|_| random_point(&mut rng, dims, 0.1, 1.0))
        .collect();
    let corner_cid: CompetitorId = rows.len() as CompetitorId;
    rows.push(vec![0.0, 0.9]);
    let store = PointStore::from_rows(2, rows.iter().cloned());
    let cfg = EngineConfig {
        rebuild_min_dead: 2,
        ..EngineConfig::default()
    };
    let engine = Engine::with_competitors(store, cfg);
    let mut live: Vec<(CompetitorId, Vec<f64>)> = rows
        .into_iter()
        .enumerate()
        .map(|(i, c)| (i as CompetitorId, c))
        .collect();

    let cost = CostSpec::Reciprocal(1e-3);
    let cost_fn = cost.cost_fn(dims);
    let t = vec![1.5, 1.5]; // dominated by everything: uses the full skyline
    let req = QueryRequest {
        products: vec![t.clone()],
        k: 1,
        cost,
        max_products: None,
        deadline: None,
    };
    let first = execute_query(&engine, &req).unwrap();

    // This entry's dominator skyline is exactly {corner}: no removal
    // below touches it, so it must ride through the rebuild.
    let t2 = vec![0.05, 0.95];
    let req2 = QueryRequest {
        products: vec![t2],
        k: 1,
        cost,
        max_products: None,
        deadline: None,
    };
    execute_query(&engine, &req2).unwrap();
    let hits_before = engine.metrics().get(Counter::CacheHit);

    // Remove non-corner points until a rebuild fires; track it through
    // the outcomes.
    let mut rebuilt = false;
    while !rebuilt {
        let cid = live[rng.range_usize(live.len())].0;
        if cid == corner_cid {
            continue;
        }
        let out = engine.apply(Mutation::RemoveCompetitor(cid)).unwrap();
        assert!(out.removed);
        live.retain(|(c, _)| *c != cid);
        rebuilt = out.rebuilt;
    }
    assert!(engine.stats().rebuilds > 0);
    assert_eq!(engine.stats().dead, 0, "rebuild must compact tombstones");

    // The rebuild renumbered every point but did not flush the cache:
    // the corner-only entry is still present and still hits.
    assert!(engine.stats().cached >= 1, "rebuild flushed the cache");
    execute_query(&engine, &req2).unwrap();
    assert_eq!(
        engine.metrics().get(Counter::CacheHit),
        hits_before + 1,
        "the untouched entry must hit across a rebuild"
    );

    // Removing by stable cid still works after renumbering.
    let cid = live[0].0;
    assert!(
        engine
            .apply(Mutation::RemoveCompetitor(cid))
            .unwrap()
            .removed
    );
    live.retain(|(c, _)| *c != cid);

    // Post-rebuild answers are bit-identical to the cold oracle.
    let resp = execute_query(&engine, &req).unwrap();
    let (oracle_cost, oracle_up) = oracle_answer(&live, dims, &t, &cost_fn);
    assert_eq!(resp.results[0].cost.to_bits(), oracle_cost.to_bits());
    for (a, b) in resp.results[0].upgraded.iter().zip(&oracle_up) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_ne!(first.epoch, resp.epoch, "mutations must bump the epoch");
}

/// Regression: with strict dominance, two competitors at identical
/// coordinates both sit on the skyline. Removing one returns the twin
/// from the boundary-inclusive exposure query; it must not be appended
/// a second time, or its pid lingers in every later snapshot after the
/// twin itself is removed.
#[test]
fn removing_a_duplicate_coordinate_twin_keeps_the_skyline_exact() {
    let engine = Engine::new(2, EngineConfig::default());
    let add = |coords: Vec<f64>| {
        engine
            .apply(Mutation::AddCompetitor(coords))
            .unwrap()
            .cid
            .unwrap()
    };
    let a = add(vec![0.5, 0.5]);
    let b = add(vec![0.5, 0.5]);
    // Strictly dominated by the twins; exposed only once both are gone.
    let c = add(vec![0.6, 0.6]);
    assert_eq!(engine.snapshot().skyline().len(), 2);

    engine.apply(Mutation::RemoveCompetitor(a)).unwrap();
    let snap = engine.snapshot();
    let sky: Vec<CompetitorId> = snap.skyline().iter().map(|&p| snap.cid(p)).collect();
    assert_eq!(sky, vec![b], "surviving twin must appear exactly once");

    engine.apply(Mutation::RemoveCompetitor(b)).unwrap();
    let snap = engine.snapshot();
    let sky: Vec<CompetitorId> = snap.skyline().iter().map(|&p| snap.cid(p)).collect();
    assert_eq!(sky, vec![c], "no tombstoned pid may linger on the skyline");
}
