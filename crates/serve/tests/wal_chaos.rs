//! Injected durability faults: a disk-full write or a failed fsync must
//! degrade the engine to read-only — the failing mutation and every
//! later one rejected with [`SkyupError::ReadOnly`], the in-memory
//! state untouched, queries still served from the published snapshot —
//! and must never panic.

use skyup_core::SkyupError;
use skyup_geom::PointStore;
use skyup_obs::{Counter, IoFaultPlan};
use skyup_serve::{
    CostSpec, Engine, EngineConfig, FsyncPolicy, Mutation, QueryRequest, ServeConfig, ServeHandle,
    WalConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skyup-wal-chaos-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_store() -> PointStore {
    PointStore::from_rows(2, vec![[0.2, 0.8], [0.5, 0.5], [0.8, 0.2]])
}

fn wal_cfg(dir: &Path, faults: IoFaultPlan) -> WalConfig {
    WalConfig {
        fsync: FsyncPolicy::Always,
        faults,
        ..WalConfig::new(dir)
    }
}

fn assert_read_only(err: &SkyupError, expect: &str) {
    match err {
        SkyupError::ReadOnly { reason } => {
            assert!(
                reason.contains(expect),
                "reason {reason:?} lacks {expect:?}"
            )
        }
        other => panic!("expected ReadOnly, got {other:?}"),
    }
}

#[test]
fn disk_full_write_degrades_to_read_only_and_queries_survive() {
    let dir = temp_dir("disk-full");
    let engine = Engine::with_durability(
        base_store(),
        EngineConfig::default(),
        wal_cfg(&dir, IoFaultPlan::new().fail_write_at(3)),
    )
    .expect("fresh durable engine");

    let a = engine
        .apply(Mutation::AddCompetitor(vec![0.3, 0.3]))
        .unwrap();
    let b = engine
        .apply(Mutation::AddCompetitor(vec![0.6, 0.1]))
        .unwrap();
    assert_eq!((a.epoch, b.epoch), (1, 2));

    // The third append hits the injected disk-full failure: the
    // mutation is rejected, the epoch does not move.
    let err = engine
        .apply(Mutation::AddCompetitor(vec![0.4, 0.4]))
        .expect_err("third append must fail");
    assert_read_only(&err, "disk full");
    assert_eq!(engine.stats().epoch, 2, "failed mutation must not publish");
    assert_eq!(engine.snapshot().live_count(), 5);

    // Every later mutation is rejected the same way — including a
    // removal of a live competitor, which would otherwise be valid.
    let err = engine
        .apply(Mutation::RemoveCompetitor(0))
        .expect_err("read-only engine must reject removals");
    assert_read_only(&err, "disk full");
    assert_eq!(engine.stats().epoch, 2);

    // The durable prefix is exactly the acked mutations.
    let status = engine.durability().unwrap();
    assert_eq!(status.last_seq, 2);
    assert!(status.read_only.is_some());
    let m = engine.metrics();
    assert_eq!(m.get(Counter::WalAppends), 2);

    // Queries keep serving the published snapshot through the full
    // front-end path.
    let handle = ServeHandle::start(Arc::new(engine), ServeConfig::default());
    let resp = handle
        .query(QueryRequest {
            products: vec![vec![0.9, 0.9]],
            k: 1,
            cost: CostSpec::default(),
            max_products: None,
            deadline: None,
        })
        .expect("reads must survive read-only degradation");
    assert_eq!(resp.epoch, 2);
    assert_eq!(resp.results.len(), 1);
    let err = handle
        .add_competitor(vec![0.1, 0.1])
        .expect_err("front-end mutations rejected too");
    assert_read_only(&err, "disk full");
    handle.shutdown();
}

#[test]
fn fsync_failure_degrades_to_read_only_without_losing_acked_state() {
    let dir = temp_dir("fsync-fail");
    let engine = Engine::with_durability(
        base_store(),
        EngineConfig::default(),
        wal_cfg(&dir, IoFaultPlan::new().fail_sync_at(2)),
    )
    .expect("fresh durable engine");

    engine
        .apply(Mutation::AddCompetitor(vec![0.3, 0.3]))
        .unwrap();
    let err = engine
        .apply(Mutation::AddCompetitor(vec![0.6, 0.1]))
        .expect_err("second fsync must fail");
    assert_read_only(&err, "fsync failure");
    assert_eq!(engine.stats().epoch, 1);

    // flush_wal reports the standing degradation instead of resetting it.
    let err = engine.flush_wal().expect_err("flush on a read-only engine");
    assert_read_only(&err, "fsync failure");

    // The acked prefix is intact on disk: a fresh engine recovers it.
    drop(engine);
    let recovered = Engine::recover(EngineConfig::default(), wal_cfg(&dir, IoFaultPlan::new()))
        .expect("recovery after a sync failure");
    assert!(recovered.stats().epoch >= 1, "acked mutation must survive");
    assert!(recovered.durability().unwrap().read_only.is_none());
}
