//! The torn-tail property: for **every** byte-length truncation of the
//! WAL — every point a crash could have cut the file — recovery must
//! succeed, replay exactly the complete-record prefix, and reproduce
//! the oracle engine built by applying that same mutation prefix
//! in-memory. Mid-log corruption (valid data after the bad bytes) must
//! instead abort recovery with an error, never a panic and never a
//! silent drop of acknowledged history.

use skyup_data::Rng;
use skyup_geom::PointStore;
use skyup_serve::{Engine, EngineConfig, FsyncPolicy, Mutation, WalConfig};
use std::path::{Path, PathBuf};

const MUTATIONS: usize = 40;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skyup-wal-prop-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_store() -> PointStore {
    let mut rows = Vec::new();
    for i in 0..8 {
        let v = 0.1 + 0.1 * i as f64;
        rows.push([v, 0.9 - 0.08 * i as f64]);
    }
    PointStore::from_rows(2, rows)
}

fn wal_cfg(dir: &Path) -> WalConfig {
    WalConfig {
        fsync: FsyncPolicy::Always,
        // No periodic checkpoints: the whole mutation history stays in
        // the log, so every truncation offset is reachable.
        checkpoint_every: 0,
        ..WalConfig::new(dir)
    }
}

/// A deterministic mixed workload. Removals target cids known live at
/// that point of the prefix, so every logged record replays as the same
/// non-no-op it was acknowledged as.
fn workload() -> Vec<Mutation> {
    let mut rng = Rng::seed_from_u64(0xD00D_F00D);
    let mut live: Vec<u64> = (0..8).collect();
    let mut next_cid = 8u64;
    let mut muts = Vec::with_capacity(MUTATIONS);
    for i in 0..MUTATIONS {
        if i % 5 == 4 && live.len() > 2 {
            let cid = live.remove(rng.range_usize(live.len()));
            muts.push(Mutation::RemoveCompetitor(cid));
        } else {
            let coords = vec![rng.range_f64(0.05, 0.95), rng.range_f64(0.05, 0.95)];
            muts.push(Mutation::AddCompetitor(coords));
            live.push(next_cid);
            next_cid += 1;
        }
    }
    muts
}

/// Fingerprint of an engine's durable-relevant state: the published
/// epoch plus the compacted snapshot image (store rows and tree).
fn fingerprint(engine: &Engine) -> (u64, Vec<u8>) {
    (engine.stats().epoch, engine.save_snapshot_bytes())
}

#[test]
fn recovery_from_every_truncation_offset_matches_the_prefix_oracle() {
    // Grow the durable log once, recording the file length after each
    // acked mutation: those lengths are the exact record boundaries.
    let grow = temp_dir("grow");
    let engine = Engine::with_durability(base_store(), EngineConfig::default(), wal_cfg(&grow))
        .expect("fresh durable engine");
    let wal_file = grow.join("wal.log");
    let muts = workload();
    let mut boundaries = vec![0u64];
    for m in &muts {
        engine.apply(m.clone()).expect("acked mutation");
        boundaries.push(std::fs::metadata(&wal_file).unwrap().len());
    }
    engine.flush_wal().unwrap();
    let full_log = std::fs::read(&wal_file).unwrap();
    let checkpoint = std::fs::read(grow.join("checkpoint.snap")).unwrap();
    assert_eq!(*boundaries.last().unwrap(), full_log.len() as u64);

    // Oracle fingerprints for every prefix length, from plain in-memory
    // engines that never saw a WAL.
    let oracles: Vec<(u64, Vec<u8>)> = (0..=muts.len())
        .map(|k| {
            let oracle = Engine::with_competitors(base_store(), EngineConfig::default());
            for m in &muts[..k] {
                oracle.apply(m.clone()).expect("oracle mutation");
            }
            fingerprint(&oracle)
        })
        .collect();

    let crash = temp_dir("crash");
    for cut in 0..=full_log.len() {
        std::fs::write(crash.join("checkpoint.snap"), &checkpoint).unwrap();
        std::fs::write(crash.join("wal.log"), &full_log[..cut]).unwrap();
        let recovered = Engine::recover(EngineConfig::default(), wal_cfg(&crash))
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));

        // The complete-record prefix is the last boundary at or below
        // the cut; a cut strictly between boundaries is a torn tail.
        let replayed = boundaries.iter().rposition(|&b| b <= cut as u64).unwrap();
        let torn = u64::from(boundaries[replayed] < cut as u64);
        let status = recovered.durability().expect("durable engine");
        assert_eq!(
            (status.recovery.replayed, status.recovery.torn_truncated),
            (replayed as u64, torn),
            "cut {cut}"
        );
        assert_eq!(status.last_seq, replayed as u64, "cut {cut}");
        assert_eq!(
            fingerprint(&recovered),
            oracles[replayed],
            "recovered state diverges from the {replayed}-mutation oracle at cut {cut}"
        );

        // The recovered engine stays writable: the torn tail is gone
        // from disk, so the next append extends a clean log.
        let out = recovered
            .apply(Mutation::AddCompetitor(vec![0.5, 0.5]))
            .expect("post-recovery mutation");
        assert_eq!(out.epoch, oracles[replayed].0 + 1, "cut {cut}");
    }
}

#[test]
fn mid_log_corruption_aborts_recovery_with_an_error() {
    let grow = temp_dir("corrupt-grow");
    let engine = Engine::with_durability(base_store(), EngineConfig::default(), wal_cfg(&grow))
        .expect("fresh durable engine");
    for m in workload() {
        engine.apply(m).expect("acked mutation");
    }
    engine.flush_wal().unwrap();
    let mut log = std::fs::read(grow.join("wal.log")).unwrap();
    let checkpoint = std::fs::read(grow.join("checkpoint.snap")).unwrap();

    // Flip a payload byte of an early record: valid records follow it,
    // so this is corruption, not a crash artifact.
    log[10] ^= 0x20;
    let dir = temp_dir("corrupt");
    std::fs::write(dir.join("checkpoint.snap"), &checkpoint).unwrap();
    std::fs::write(dir.join("wal.log"), &log).unwrap();
    let err = Engine::recover(EngineConfig::default(), wal_cfg(&dir))
        .err()
        .expect("mid-log corruption must abort recovery");
    let msg = err.to_string();
    assert!(msg.contains("corruption"), "{msg}");

    // A corrupted checkpoint is likewise an error, not a panic.
    let mut bad_ckpt = checkpoint.clone();
    bad_ckpt[16] ^= 0xFF;
    std::fs::write(dir.join("checkpoint.snap"), &bad_ckpt).unwrap();
    std::fs::write(dir.join("wal.log"), b"").unwrap();
    assert!(Engine::recover(EngineConfig::default(), wal_cfg(&dir)).is_err());
}
