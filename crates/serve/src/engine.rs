//! The epoch-based engine: one writer, many readers, no torn state.
//!
//! All mutable state lives behind two locks with a strict order
//! (`writer` before `shared`, never the reverse):
//!
//! * `writer` — the working copy of the competitor set: the append-only
//!   point store (tombstoned rows included), the R-tree and id-sorted
//!   skyline over the live rows, and the stable competitor-id maps.
//!   Mutations are applied here one at a time.
//! * `shared` — what queries see: the current [`Snapshot`] (an `Arc`
//!   cloned per request) plus the [`ResultCache`]. The writer publishes
//!   a new epoch by swapping the snapshot and running the selective
//!   cache invalidation for the mutation *under the same lock*, so a
//!   reader can never pair a new snapshot with not-yet-invalidated
//!   cache entries or vice versa.
//!
//! Competitor ids are stable `u64`s decoupled from [`PointId`]s: an
//! index rebuild compacts the store and renumbers points, but cached
//! answers and client handles speak cids, so nothing they hold goes
//! stale — which is why a rebuild publishes a new epoch without
//! flushing the cache.

use crate::cache::{CacheKey, CostTag, ResultCache};
use crate::snapshot::{Answer, Snapshot};
use crate::wal::{self, RecoveryReport, Wal, WalConfig};
use crate::CompetitorId;
use skyup_core::cost::CostFunction;
use skyup_core::upgrade::dominated_by_any;
use skyup_core::{SkyupError, UpgradeConfig};
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore, Rect};
use skyup_obs::{Counter, QueryMetrics, Recorder};
use skyup_rtree::persist::{snapshot_from_bytes, snapshot_to_bytes};
use skyup_rtree::{RTree, RTreeParams};
use skyup_skyline::skyline_sfs;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A competitor-set mutation, the unit of the writer's log.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Add a competitor at these coordinates.
    AddCompetitor(Vec<f64>),
    /// Add a competitor under a pre-assigned id. Used by shards, where
    /// the coordinator owns the global id sequence: each shard only
    /// sees the adds it owns, so its local `next_cid` lags the global
    /// counter and ids arrive with gaps. The id must not be behind the
    /// engine's own counter (ids stay strictly increasing in row
    /// order — the invariant the scatter/gather merge relies on).
    AddCompetitorWithCid(CompetitorId, Vec<f64>),
    /// Remove the competitor with this id.
    RemoveCompetitor(CompetitorId),
}

/// What a mutation did, as observed at its publication epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The epoch the mutation was published at (unchanged when the
    /// mutation was a no-op, e.g. removing an unknown cid).
    pub epoch: u64,
    /// The id assigned to an added competitor.
    pub cid: Option<CompetitorId>,
    /// Whether a removal actually removed a live competitor.
    pub removed: bool,
    /// Whether the degradation heuristic triggered an STR rebuild.
    pub rebuilt: bool,
    /// Cache entries evicted by selective invalidation.
    pub evicted: u64,
}

/// Tuning knobs for the engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Rebuild when at least this many tombstones have accumulated and
    /// they outnumber half the live set.
    pub rebuild_min_dead: usize,
    /// Rebuild when the tree's average leaf fill drops below this
    /// fraction (insertion splits degrade the STR packing over time).
    pub min_leaf_fill: f64,
    /// Maximum cached answers.
    pub cache_capacity: usize,
    /// R-tree fanout used for builds and rebuilds.
    pub tree_params: RTreeParams,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            rebuild_min_dead: 32,
            min_leaf_fill: 0.35,
            cache_capacity: 1 << 16,
            tree_params: RTreeParams::default(),
        }
    }
}

struct Writer {
    store: PointStore,
    tree: RTree,
    skyline: Vec<PointId>,
    live: Vec<bool>,
    cid_of: Vec<CompetitorId>,
    pid_of: HashMap<CompetitorId, PointId>,
    next_cid: CompetitorId,
    epoch: u64,
    live_count: usize,
    dead: usize,
    rebuilds: u64,
}

struct Shared {
    snapshot: Arc<Snapshot>,
    cache: ResultCache,
}

enum Evict {
    Inserted(Vec<f64>),
    Removed(CompetitorId),
}

/// A point-in-time view of the engine for `stats` requests.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Current published epoch.
    pub epoch: u64,
    /// Live competitors.
    pub live: usize,
    /// Size of the live-set skyline.
    pub skyline_len: usize,
    /// Tombstoned store rows awaiting compaction.
    pub dead: usize,
    /// STR rebuilds performed so far.
    pub rebuilds: u64,
    /// Answers currently cached.
    pub cached: usize,
}

/// Durability state as seen by the `health` verb and the chaos tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Sequence number of the last record appended (or replayed).
    pub last_seq: u64,
    /// The failure that degraded the engine to read-only, if any.
    pub read_only: Option<String>,
    /// What recovery did when this engine started.
    pub recovery: RecoveryReport,
}

/// The epoch-based serving engine. Shared across worker threads via
/// `Arc`; see the module docs for the locking protocol.
pub struct Engine {
    writer: Mutex<Writer>,
    shared: Mutex<Shared>,
    metrics: Mutex<QueryMetrics>,
    cfg: EngineConfig,
    /// The write-ahead log, when durability is on. Locked strictly
    /// after `writer` (appends happen inside `apply`'s critical
    /// section) and never together with `shared`.
    wal: Option<Mutex<Wal>>,
    /// What recovery did when this engine was constructed.
    recovery: RecoveryReport,
}

impl Engine {
    /// An engine over an empty `dims`-dimensional competitor set.
    pub fn new(dims: usize, cfg: EngineConfig) -> Engine {
        Self::from_parts(PointStore::new(dims), None, cfg)
    }

    /// An engine seeded with an initial competitor set. Competitor ids
    /// `0..n` are assigned in store order.
    pub fn with_competitors(store: PointStore, cfg: EngineConfig) -> Engine {
        Self::from_parts(store, None, cfg)
    }

    /// An engine seeded with competitors that already carry ids —
    /// a shard holding its slice of a globally partitioned set, where
    /// `cid_of[i]` is store row `i`'s global id. Ids must be strictly
    /// increasing in row order (the merge path depends on it) and
    /// `next_cid` must clear the highest one.
    pub fn with_identified_competitors(
        store: PointStore,
        cid_of: Vec<CompetitorId>,
        next_cid: CompetitorId,
        cfg: EngineConfig,
    ) -> Result<Engine, SkyupError> {
        if cid_of.len() != store.len() {
            return Err(SkyupError::InvalidInput(format!(
                "cid_of has {} entries for {} store rows",
                cid_of.len(),
                store.len()
            )));
        }
        if cid_of.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SkyupError::InvalidInput(
                "competitor ids must be strictly increasing in row order".into(),
            ));
        }
        if let Some(&last) = cid_of.last() {
            if next_cid <= last {
                return Err(SkyupError::InvalidInput(format!(
                    "next_cid {next_cid} does not clear the highest seeded id {last}"
                )));
            }
        }
        Ok(Self::from_id_parts(store, None, cid_of, next_cid, 0, cfg))
    }

    /// Warm start: restores the competitor set from a combined snapshot
    /// file written by [`Engine::save_snapshot_bytes`]. Corruption is
    /// reported as [`SkyupError::InvalidInput`], never a panic.
    pub fn from_snapshot_bytes(buf: &[u8], cfg: EngineConfig) -> Result<Engine, SkyupError> {
        let (store, tree) = snapshot_from_bytes(buf)
            .map_err(|e| SkyupError::InvalidInput(format!("snapshot file rejected: {e}")))?;
        Ok(Self::from_parts(store, Some(tree), cfg))
    }

    fn from_parts(store: PointStore, tree: Option<RTree>, cfg: EngineConfig) -> Engine {
        let n = store.len();
        let cid_of: Vec<CompetitorId> = (0..n as u64).collect();
        Self::from_id_parts(store, tree, cid_of, n as u64, 0, cfg)
    }

    /// The general constructor: explicit competitor-id state and epoch,
    /// as needed when rebuilding a writer from a durable checkpoint.
    /// `cid_of[i]` is the id of store row `i`; all rows are live.
    fn from_id_parts(
        store: PointStore,
        tree: Option<RTree>,
        cid_of: Vec<CompetitorId>,
        next_cid: CompetitorId,
        epoch: u64,
        cfg: EngineConfig,
    ) -> Engine {
        let n = store.len();
        debug_assert_eq!(cid_of.len(), n);
        let tree = tree.unwrap_or_else(|| RTree::bulk_load(&store, cfg.tree_params));
        let all: Vec<PointId> = store.ids().collect();
        let mut skyline = skyline_sfs(&store, &all);
        skyline.sort_unstable();
        let pid_of = store
            .ids()
            .map(|pid| (cid_of[pid.index()], pid))
            .collect::<HashMap<_, _>>();
        let writer = Writer {
            tree,
            skyline,
            live: vec![true; n],
            cid_of,
            pid_of,
            next_cid,
            epoch,
            live_count: n,
            dead: 0,
            rebuilds: 0,
            store,
        };
        let snapshot = Arc::new(Self::snapshot_of(&writer));
        Engine {
            writer: Mutex::new(writer),
            shared: Mutex::new(Shared {
                snapshot,
                cache: ResultCache::new(cfg.cache_capacity),
            }),
            metrics: Mutex::new(QueryMetrics::new()),
            cfg,
            wal: None,
            recovery: RecoveryReport::default(),
        }
    }

    /// An engine seeded with `store` whose mutations are made durable
    /// under `wal.dir` before they are acknowledged. Writes the initial
    /// checkpoint so the directory is recoverable from the first
    /// moment. Fails if the directory already holds durable state —
    /// use [`Engine::recover`] for that.
    pub fn with_durability(
        store: PointStore,
        cfg: EngineConfig,
        wal_cfg: WalConfig,
    ) -> Result<Engine, SkyupError> {
        Self::with_competitors(store, cfg).into_durable(wal_cfg)
    }

    /// Attaches durability to a freshly seeded engine (any of the
    /// seeding constructors; the engine must not have served mutations
    /// yet): writes the initial checkpoint under `wal.dir` so the
    /// directory is recoverable from the first moment. Fails if the
    /// directory already holds durable state — use [`Engine::recover`]
    /// for that.
    pub fn into_durable(self, wal_cfg: WalConfig) -> Result<Engine, SkyupError> {
        if wal::has_state(&wal_cfg.dir) {
            return Err(SkyupError::InvalidConfig(format!(
                "wal directory {} already holds durable state; recover from it \
                 or point --wal at an empty directory",
                wal_cfg.dir.display()
            )));
        }
        let mut engine = self;
        let mut w = Wal::open(wal_cfg, 1, 0, 0).map_err(|e| e.into_skyup("wal open failed"))?;
        let bytes = {
            let writer = engine.writer.lock().unwrap();
            Self::checkpoint_bytes(&writer, 0, engine.cfg.tree_params)
        };
        w.write_checkpoint(&bytes)
            .map_err(|reason| SkyupError::ReadOnly { reason })?;
        engine.bump(Counter::CheckpointsWritten);
        engine.wal = Some(Mutex::new(w));
        Ok(engine)
    }

    /// Rebuilds an engine from the durable state under `wal.dir`:
    /// checkpoint first, then every log record with a newer sequence
    /// number, truncating a torn tail left by a crash mid-append.
    /// Corruption anywhere *before* the tail aborts with an error —
    /// silently dropping acknowledged history would be worse.
    pub fn recover(cfg: EngineConfig, wal_cfg: WalConfig) -> Result<Engine, SkyupError> {
        let ckpt_bytes = std::fs::read(wal::checkpoint_path(&wal_cfg.dir)).map_err(|e| {
            SkyupError::InvalidInput(format!(
                "cannot read checkpoint in {}: {e}",
                wal_cfg.dir.display()
            ))
        })?;
        let ckpt =
            wal::decode_checkpoint(&ckpt_bytes).map_err(|e| e.into_skyup("checkpoint rejected"))?;

        let log_bytes = match std::fs::read(wal::wal_path(&wal_cfg.dir)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => {
                return Err(SkyupError::InvalidInput(format!(
                    "cannot read wal in {}: {e}",
                    wal_cfg.dir.display()
                )))
            }
        };
        let (records, valid_len) =
            wal::decode_log(&log_bytes).map_err(|e| e.into_skyup("wal rejected"))?;
        let torn = u64::from(valid_len < log_bytes.len());

        let mut engine = Self::from_id_parts(
            ckpt.store,
            Some(ckpt.tree),
            ckpt.cid_of,
            ckpt.next_cid,
            ckpt.epoch,
            cfg,
        );
        let mut last_seq = ckpt.seq;
        let mut replayed = 0u64;
        let mut all_covered = true;
        for rec in records {
            if rec.seq <= ckpt.seq {
                // The checkpoint already covers this record: a crash
                // landed between the checkpoint rename and the log
                // truncation.
                continue;
            }
            all_covered = false;
            if rec.seq != last_seq + 1 {
                return Err(SkyupError::InvalidInput(format!(
                    "wal rejected: record seq {} does not continue checkpoint seq {}",
                    rec.seq, last_seq
                )));
            }
            let outcome = engine.apply(rec.mutation)?;
            if outcome.epoch != rec.epoch || (outcome.cid.is_none() && !outcome.removed) {
                return Err(SkyupError::InvalidInput(format!(
                    "wal rejected: record seq {} diverges from engine state \
                     (logged epoch {}, replayed epoch {})",
                    rec.seq, rec.epoch, outcome.epoch
                )));
            }
            last_seq = rec.seq;
            replayed += 1;
        }
        // Finish an interrupted post-checkpoint truncation: when every
        // surviving record is covered by the checkpoint, the log can
        // restart empty.
        let keep_len = if all_covered { 0 } else { valid_len as u64 };
        let since_checkpoint = replayed;
        let w = Wal::open(wal_cfg, last_seq + 1, since_checkpoint, keep_len)
            .map_err(|e| e.into_skyup("wal open failed"))?;
        engine.recovery = RecoveryReport {
            checkpoint_seq: ckpt.seq,
            replayed,
            torn_truncated: torn,
        };
        {
            let mut m = engine.metrics.lock().unwrap();
            m.incr(Counter::RecoveryReplayedRecords, replayed);
            m.incr(Counter::TornTailTruncated, torn);
        }
        engine.wal = Some(Mutex::new(w));
        Ok(engine)
    }

    /// Builds the checkpoint image for the writer's current state: the
    /// compacted live set plus the id state a plain snapshot cannot
    /// carry, stamped with the WAL sequence number it covers.
    fn checkpoint_bytes(w: &Writer, seq: u64, params: RTreeParams) -> Vec<u8> {
        let (store, cid_of, _) = Self::compact(w);
        let tree = RTree::bulk_load(&store, params);
        wal::encode_checkpoint(seq, w.epoch, w.next_cid, &cid_of, &store, &tree)
    }

    /// Durability state for the `health` verb; `None` without `--wal`.
    pub fn durability(&self) -> Option<DurabilityStatus> {
        let wal = self.wal.as_ref()?;
        let w = wal.lock().unwrap();
        Some(DurabilityStatus {
            last_seq: w.last_seq(),
            read_only: w.read_only.clone(),
            recovery: self.recovery,
        })
    }

    /// Forces buffered WAL records to stable storage (clean-shutdown
    /// path, so `--fsync interval`/`never` lose nothing when the
    /// process exits on purpose). A failure degrades to read-only like
    /// any other durability failure.
    pub fn flush_wal(&self) -> Result<(), SkyupError> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let mut w = wal.lock().unwrap();
        if let Some(reason) = &w.read_only {
            return Err(SkyupError::ReadOnly {
                reason: reason.clone(),
            });
        }
        if let Err(reason) = w.sync() {
            let reason = format!("wal fsync failed: {reason}");
            w.read_only = Some(reason.clone());
            return Err(SkyupError::ReadOnly { reason });
        }
        self.bump(Counter::WalFsyncs);
        Ok(())
    }

    /// Serializes the *live* competitor set (compacted: tombstones
    /// dropped, tree rebuilt) into the combined snapshot format.
    pub fn save_snapshot_bytes(&self) -> Vec<u8> {
        let w = self.writer.lock().unwrap();
        let (store, _, _) = Self::compact(&w);
        let tree = RTree::bulk_load(&store, self.cfg.tree_params);
        snapshot_to_bytes(&store, &tree)
    }

    /// Dimensionality of the competitor space.
    pub fn dims(&self) -> usize {
        self.shared.lock().unwrap().snapshot.dims()
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.shared.lock().unwrap().snapshot)
    }

    /// Engine-wide serving counters accumulated so far.
    pub fn metrics(&self) -> QueryMetrics {
        self.metrics.lock().unwrap().clone()
    }

    /// Folds a per-request metrics object into the engine-wide tally.
    pub fn absorb_metrics(&self, m: &QueryMetrics) {
        self.metrics.lock().unwrap().absorb(m);
    }

    /// Bumps one engine-wide counter (front-end shed accounting).
    pub fn bump(&self, c: Counter) {
        self.metrics.lock().unwrap().bump(c);
    }

    /// Current stats for the `stats` request.
    pub fn stats(&self) -> EngineStats {
        let w = self.writer.lock().unwrap();
        let sh = self.shared.lock().unwrap();
        EngineStats {
            epoch: w.epoch,
            live: w.live_count,
            skyline_len: w.skyline.len(),
            dead: w.dead,
            rebuilds: w.rebuilds,
            cached: sh.cache.len(),
        }
    }

    /// Answers one product against the pinned snapshot `snap`, going
    /// through the result cache when the published epoch still matches.
    /// Cache hits and misses are recorded on `rec`.
    pub fn answer_product<C: CostFunction + ?Sized>(
        &self,
        snap: &Snapshot,
        t: &[f64],
        cost_fn: &C,
        tag: CostTag,
        cfg: &UpgradeConfig,
        rec: &mut QueryMetrics,
    ) -> Answer {
        let key = CacheKey::new(t, tag);
        {
            let sh = self.shared.lock().unwrap();
            if sh.snapshot.epoch == snap.epoch {
                if let Some(a) = sh.cache.get(&key) {
                    rec.bump(Counter::CacheHit);
                    return a.clone();
                }
            }
        }
        rec.bump(Counter::CacheMiss);
        let answer = snap.answer(t, cost_fn, cfg, rec);
        let mut sh = self.shared.lock().unwrap();
        let current = sh.snapshot.epoch;
        sh.cache
            .insert_if_current(key, t, answer.clone(), snap.epoch, current);
        answer
    }

    /// Runs `f` with the result cache and the currently published epoch
    /// under one shared-lock acquisition. The batch pipeline assembles a
    /// whole admission window's cache lookups in a single critical
    /// section, so every lookup sees the same epoch.
    pub(crate) fn with_cache<T>(&self, f: impl FnOnce(&ResultCache, u64) -> T) -> T {
        let sh = self.shared.lock().unwrap();
        let epoch = sh.snapshot.epoch;
        f(&sh.cache, epoch)
    }

    /// Inserts a batch of computed answers under one shared-lock
    /// acquisition. Each entry is epoch-gated exactly like
    /// [`Engine::answer_product`]'s fill: it only lands while
    /// `computed_at` is still the published epoch.
    pub(crate) fn fill_cache<'a, I>(&self, entries: I, computed_at: u64)
    where
        I: IntoIterator<Item = (CacheKey, &'a [f64], Answer)>,
    {
        let mut sh = self.shared.lock().unwrap();
        let current = sh.snapshot.epoch;
        for (key, t, answer) in entries {
            sh.cache
                .insert_if_current(key, t, answer, computed_at, current);
        }
    }

    /// Applies one mutation and publishes the resulting epoch. Removing
    /// an unknown or already-removed cid is a no-op: no epoch is
    /// published, `removed` is `false`, and nothing reaches the WAL.
    ///
    /// With durability on, the record is appended (and synced, per
    /// policy) *before* any in-memory state changes — a crash after the
    /// ack can always be replayed, and a crash before the append never
    /// shows the mutation. A WAL failure flips the engine read-only and
    /// surfaces [`SkyupError::ReadOnly`]; the in-memory state is
    /// untouched, so queries keep serving the published snapshot.
    pub fn apply(&self, m: Mutation) -> Result<MutationOutcome, SkyupError> {
        let mut guard = self.writer.lock().unwrap();
        let w = &mut *guard;
        // Validate (and detect no-ops) before the mutation is logged or
        // applied anywhere.
        match &m {
            Mutation::AddCompetitor(coords) => {
                Self::validate_coords(coords, w.store.dims())?;
            }
            Mutation::AddCompetitorWithCid(cid, coords) => {
                Self::validate_coords(coords, w.store.dims())?;
                if *cid < w.next_cid {
                    return Err(SkyupError::InvalidInput(format!(
                        "assigned competitor id {cid} is already spent (next unassigned id \
                         is {})",
                        w.next_cid
                    )));
                }
            }
            Mutation::RemoveCompetitor(cid) => {
                if !w.pid_of.contains_key(cid) {
                    return Ok(MutationOutcome {
                        epoch: w.epoch,
                        cid: None,
                        removed: false,
                        rebuilt: false,
                        evicted: 0,
                    });
                }
            }
        }
        self.log_mutation(w.epoch + 1, &m)?;
        let (evict, cid, removed) = match m {
            Mutation::AddCompetitor(coords) => {
                let cid = w.next_cid;
                let evict = Self::insert_competitor(w, cid, coords);
                (evict, Some(cid), false)
            }
            Mutation::AddCompetitorWithCid(cid, coords) => {
                let evict = Self::insert_competitor(w, cid, coords);
                (evict, Some(cid), false)
            }
            Mutation::RemoveCompetitor(cid) => {
                let pid = w.pid_of.remove(&cid).expect("validated live cid");
                w.tree.remove(&w.store, pid);
                w.live[pid.index()] = false;
                w.live_count -= 1;
                w.dead += 1;
                Self::skyline_remove(w, pid);
                (Evict::Removed(cid), None, true)
            }
        };
        let rebuilt = self.maybe_rebuild(w);
        w.epoch += 1;
        let evicted = self.publish(w, evict);
        self.maybe_checkpoint(w);
        Ok(MutationOutcome {
            epoch: w.epoch,
            cid,
            removed,
            rebuilt,
            evicted,
        })
    }

    fn validate_coords(coords: &[f64], dims: usize) -> Result<(), SkyupError> {
        if coords.len() != dims {
            return Err(SkyupError::InvalidInput(format!(
                "competitor has {} coordinates, expected {dims}",
                coords.len()
            )));
        }
        if coords.iter().any(|v| !v.is_finite()) {
            return Err(SkyupError::InvalidInput(
                "competitor coordinates must be finite".into(),
            ));
        }
        Ok(())
    }

    /// Inserts a validated competitor under `cid` (>= `next_cid`) and
    /// advances the id counter past it, preserving the strictly
    /// increasing cid-per-row order.
    fn insert_competitor(w: &mut Writer, cid: CompetitorId, coords: Vec<f64>) -> Evict {
        w.next_cid = cid + 1;
        let pid = w.store.push(&coords);
        w.tree.insert(&w.store, pid);
        w.live.push(true);
        w.cid_of.push(cid);
        w.pid_of.insert(cid, pid);
        w.live_count += 1;
        Self::skyline_insert(w, pid, &coords);
        Evict::Inserted(coords)
    }

    /// Appends the record for a validated, non-no-op mutation; a no-op
    /// without durability configured. Any I/O failure (including an
    /// injected one) degrades the engine to read-only.
    fn log_mutation(&self, epoch: u64, m: &Mutation) -> Result<(), SkyupError> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let mut wal = wal.lock().unwrap();
        if let Some(reason) = &wal.read_only {
            return Err(SkyupError::ReadOnly {
                reason: reason.clone(),
            });
        }
        match wal.append(epoch, m) {
            Ok((bytes, synced)) => {
                let mut metrics = self.metrics.lock().unwrap();
                metrics.bump(Counter::WalAppends);
                metrics.incr(Counter::WalBytes, bytes);
                if synced {
                    metrics.bump(Counter::WalFsyncs);
                }
                Ok(())
            }
            Err(reason) => {
                wal.read_only = Some(reason.clone());
                Err(SkyupError::ReadOnly { reason })
            }
        }
    }

    /// Writes a periodic checkpoint when one is due. Runs after the
    /// epoch is published: the triggering mutation is already durable
    /// in the log, so a checkpoint failure costs no acknowledged data —
    /// it only degrades the engine to read-only for *future* mutations.
    fn maybe_checkpoint(&self, w: &Writer) {
        let Some(wal) = &self.wal else { return };
        let mut wal = wal.lock().unwrap();
        if wal.read_only.is_some() || !wal.checkpoint_due() {
            return;
        }
        let bytes = Self::checkpoint_bytes(w, wal.last_seq(), self.cfg.tree_params);
        match wal.write_checkpoint(&bytes) {
            Ok(()) => self.bump(Counter::CheckpointsWritten),
            Err(reason) => wal.read_only = Some(reason),
        }
    }

    /// Incremental skyline maintenance for an insert. The new point
    /// joins iff no skyline point dominates it (checking the skyline
    /// suffices: any dominator of `coords` is itself on the skyline or
    /// dominated by a skyline point, which then dominates `coords` by
    /// transitivity); joining, it evicts the members it dominates.
    fn skyline_insert(w: &mut Writer, pid: PointId, coords: &[f64]) {
        if dominated_by_any(&w.store, &w.skyline, coords) {
            return;
        }
        let store = &w.store;
        w.skyline.retain(|&s| !dominates(coords, store.point(s)));
        let pos = w.skyline.binary_search(&pid).unwrap_err();
        w.skyline.insert(pos, pid);
    }

    /// Incremental skyline maintenance for a delete. Removing a
    /// non-skyline point changes nothing (whatever dominated it still
    /// does). Removing a skyline point exposes exactly the live points
    /// inside its dominance region that no surviving skyline point
    /// dominates; their own skyline is merged in.
    fn skyline_remove(w: &mut Writer, pid: PointId) {
        let Ok(pos) = w.skyline.binary_search(&pid) else {
            return;
        };
        w.skyline.remove(pos);
        let lo = w.store.point(pid).to_vec();
        let hi = vec![f64::MAX; w.store.dims()];
        let region = Rect::new(&lo, &hi);
        // `pid` is already out of the tree, so the query returns only
        // other live points.
        let candidates = w.tree.range_query(&w.store, &region);
        let store = &w.store;
        let skyline = &w.skyline;
        // The boundary-inclusive range query can return surviving
        // skyline members (e.g. a duplicate-coordinate twin of `pid`,
        // which nothing strictly dominates); they are already present,
        // so only points off the skyline are candidates for exposure.
        let exposed: Vec<PointId> = candidates
            .into_iter()
            .filter(|&q| skyline.binary_search(&q).is_err())
            .filter(|&q| !dominated_by_any(store, skyline, store.point(q)))
            .collect();
        let mut sub = skyline_sfs(store, &exposed);
        w.skyline.append(&mut sub);
        w.skyline.sort_unstable();
        debug_assert!(
            w.skyline.windows(2).all(|p| p[0] != p[1]),
            "skyline must stay duplicate-free"
        );
    }

    /// The degradation heuristic: compact when tombstones pile up or
    /// the tree's leaf packing has decayed well below STR quality.
    fn maybe_rebuild(&self, w: &mut Writer) -> bool {
        let tombstones_heavy = w.dead >= self.cfg.rebuild_min_dead && w.dead * 2 > w.live_count;
        let packing_decayed =
            w.live_count > 256 && w.tree.stats().avg_leaf_fill < self.cfg.min_leaf_fill;
        if !(tombstones_heavy || packing_decayed) {
            return false;
        }
        let (store, cid_of, pid_of) = Self::compact(w);
        let all: Vec<PointId> = store.ids().collect();
        let mut skyline = skyline_sfs(&store, &all);
        skyline.sort_unstable();
        w.tree = RTree::bulk_load(&store, self.cfg.tree_params);
        w.live = vec![true; store.len()];
        w.live_count = store.len();
        w.dead = 0;
        w.rebuilds += 1;
        w.skyline = skyline;
        w.cid_of = cid_of;
        w.pid_of = pid_of;
        w.store = store;
        true
    }

    /// Copies the live rows into a fresh store, preserving relative
    /// order; competitor ids follow their rows, so nothing a client or
    /// cache entry holds is invalidated.
    fn compact(
        w: &Writer,
    ) -> (
        PointStore,
        Vec<CompetitorId>,
        HashMap<CompetitorId, PointId>,
    ) {
        let mut store = PointStore::with_capacity(w.store.dims(), w.live_count);
        let mut cid_of = Vec::with_capacity(w.live_count);
        let mut pid_of = HashMap::with_capacity(w.live_count);
        for (pid, coords) in w.store.iter() {
            if w.live[pid.index()] {
                let cid = w.cid_of[pid.index()];
                let new_pid = store.push(coords);
                cid_of.push(cid);
                pid_of.insert(cid, new_pid);
            }
        }
        (store, cid_of, pid_of)
    }

    fn snapshot_of(w: &Writer) -> Snapshot {
        Snapshot {
            epoch: w.epoch,
            store: w.store.clone(),
            tree: w.tree.clone(),
            skyline: w.skyline.clone(),
            cid_of: w.cid_of.clone(),
            live_count: w.live_count,
        }
    }

    /// Publishes the writer's state as a new epoch: build the snapshot,
    /// then — under the shared lock — run the mutation's selective
    /// invalidation and swap the snapshot in one indivisible step.
    fn publish(&self, w: &Writer, evict: Evict) -> u64 {
        let snapshot = Arc::new(Self::snapshot_of(w));
        let evicted = {
            let mut sh = self.shared.lock().unwrap();
            let evicted = match evict {
                Evict::Inserted(coords) => sh.cache.evict_dominated_by(&coords),
                Evict::Removed(cid) => sh.cache.evict_using(cid),
            };
            sh.snapshot = snapshot;
            evicted
        };
        let mut m = self.metrics.lock().unwrap();
        m.bump(Counter::EpochSwaps);
        m.incr(Counter::CacheEvictions, evicted);
        evicted
    }
}
