//! The TCP front door: newline-delimited JSON over
//! [`std::net::TcpListener`].
//!
//! The accept loop hands each connection to a short-lived reader thread
//! that parses request lines and dispatches them through the
//! [`ServeHandle`] — so the heavy lifting still funnels through the
//! bounded queue and worker pool, and connection threads only do I/O.
//! A `shutdown` request acknowledges, stops the accept loop (waking it
//! with a loopback connection), and drains the worker pool before
//! [`serve`] returns.

use crate::proto::{
    parse_request, render_error, render_mutation_outcome, render_query_response,
    render_shutdown_ack, render_skyup_error, render_stats, Request,
};
use crate::server::ServeHandle;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn handle_connection(stream: TcpStream, handle: &ServeHandle, stop: &AtomicBool) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(msg) => render_error(&msg),
            Ok(Request::Query(req)) => match handle.query(req) {
                Ok(resp) => render_query_response(&resp),
                Err(err) => render_skyup_error(&err),
            },
            Ok(Request::Add(point)) => match handle.add_competitor(point) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Ok(Request::Remove(cid)) => match handle.remove_competitor(cid) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Ok(Request::Stats) => {
                let (stats, metrics) = handle.stats();
                render_stats(&stats, &metrics)
            }
            Ok(Request::Shutdown) => {
                writer.write_all(render_shutdown_ack().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Runs the accept loop until a client sends `{"op":"shutdown"}`, then
/// drains the worker pool and returns. Blocks the calling thread.
pub fn serve(handle: ServeHandle, listener: TcpListener) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let handle = handle.clone();
        let stop_flag = Arc::clone(&stop);
        // Detached on purpose: a connection thread blocked reading from
        // an idle client must not be able to wedge shutdown.
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &handle, &stop_flag);
            if stop_flag.load(Ordering::SeqCst) {
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(addr);
            }
        });
    }
    handle.shutdown();
    Ok(())
}

/// Binds `127.0.0.1:<port>` (0 picks an ephemeral port) and returns the
/// listener plus the resolved address.
pub fn bind_local(port: u16) -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}
