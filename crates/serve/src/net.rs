//! The TCP front door: newline-delimited JSON over
//! [`std::net::TcpListener`].
//!
//! The accept loop hands each connection to a short-lived reader thread
//! that parses request lines and dispatches them through the
//! [`ServeHandle`] — so the heavy lifting still funnels through the
//! bounded queue and worker pool, and connection threads only do I/O.
//! A `shutdown` request acknowledges, stops the accept loop (waking it
//! with a loopback connection), and drains the worker pool before
//! [`serve`] returns.
//!
//! # Robustness contract
//!
//! The line loop ([`handle_lines`]) is generic over any
//! `BufRead`/`Write` pair so the protocol edge cases are unit-testable
//! without sockets. Its guarantees:
//!
//! * A malformed or non-UTF-8 line gets a per-line `ok:false` error
//!   response; the connection stays up and later lines are served.
//! * A line longer than [`MAX_LINE_BYTES`] is rejected with an error
//!   response and skipped to its terminating newline — the buffer never
//!   grows past the cap, so a hostile client cannot balloon memory.
//! * A disconnect mid-stream (EOF without a newline, or between
//!   requests of a batch) ends the loop cleanly; whatever full lines
//!   arrived were answered.
//! * No input byte sequence panics the connection thread.

use crate::proto::{
    parse_request, render_error, render_health, render_mutation_outcome, render_query_response,
    render_shutdown_ack, render_skyup_error, render_stats, Request, Topology,
};
use crate::server::ServeHandle;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hard cap on one NDJSON request line. A legitimate query of a few
/// thousand products fits comfortably; anything bigger is rejected
/// without buffering it.
pub const MAX_LINE_BYTES: usize = 1 << 20;

fn write_line<W: Write>(writer: &mut W, response: &str) -> io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one line of at most [`MAX_LINE_BYTES`] bytes (newline
/// included). Returns `Ok(None)` on clean EOF; `buf` holds the line
/// otherwise, and `Ok(Some(true))` flags a line that hit the cap
/// without reaching its newline.
fn read_capped_line<R: BufRead>(reader: R, buf: &mut Vec<u8>) -> io::Result<Option<bool>> {
    buf.clear();
    let n = reader.take(MAX_LINE_BYTES as u64).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(!buf.ends_with(b"\n") && n == MAX_LINE_BYTES))
}

/// One server role behind the NDJSON line loop: a single engine
/// ([`ServeHandle`]), a shard, or a coordinator. The loop owns framing
/// (line caps, UTF-8, parse errors) and the `shutdown` verb; everything
/// else is one response line per parsed request from the role.
pub trait Dispatch {
    /// Answers one parsed request with one response line. `Shutdown`
    /// never reaches this — the line loop acks and stops itself.
    fn dispatch(&self, req: Request) -> String;

    /// Runs after the accept loop stops (drain worker pools, close
    /// downstream links).
    fn on_stop(&self);
}

impl Dispatch for ServeHandle {
    fn dispatch(&self, req: Request) -> String {
        match req {
            Request::Query(req) => match self.query(req) {
                Ok(resp) => render_query_response(&resp),
                Err(err) => render_skyup_error(&err),
            },
            Request::Add(point) => match self.add_competitor(point) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Request::Remove(cid) => match self.remove_competitor(cid) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Request::Stats => {
                let (stats, metrics) = self.stats();
                render_stats(&stats, &metrics, self.queue_depth())
            }
            // The observability verbs are reads of the telemetry store,
            // not requests: they bypass the queue and are not traced
            // themselves, so polling metrics never perturbs the
            // latencies it reports. Health rides the same untraced
            // path — a liveness probe must answer even when the queue
            // is saturated or the engine has gone read-only.
            Request::Health => {
                let durability = self.durability();
                render_health(
                    self.epoch(),
                    self.queue_depth(),
                    durability.as_ref(),
                    &Topology::Single,
                )
            }
            Request::Metrics => self.telemetry().metrics_json(self.queue_depth()).render(),
            Request::Trace(n) => self.telemetry().traces_json(n).render(),
            Request::Stage { .. } | Request::Flip { .. } | Request::LocalProbe(_) => {
                render_error("this server is not a shard (start it with --shard-id/--shards)")
            }
            Request::Shutdown => unreachable!("the line loop handles shutdown"),
        }
    }

    fn on_stop(&self) {
        self.shutdown();
    }
}

/// The NDJSON request loop over any reader/writer pair: one request per
/// line, one response line per request. See the module docs for the
/// robustness contract. Returns when the reader reaches EOF or after a
/// `shutdown` request (which also sets `stop`).
pub fn handle_lines<R: BufRead, W: Write, D: Dispatch + ?Sized>(
    mut reader: R,
    writer: &mut W,
    handle: &D,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let truncated = match read_capped_line(&mut reader, &mut buf)? {
            None => return Ok(()),
            Some(t) => t,
        };
        if truncated {
            write_line(
                writer,
                &render_error(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
            )?;
            // Drop the rest of the oversized line, cap-sized chunk at a
            // time, then resume at the next line.
            loop {
                match read_capped_line(&mut reader, &mut buf)? {
                    None => return Ok(()),
                    Some(true) => continue,
                    Some(false) => break,
                }
            }
            continue;
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(s) => s,
            Err(_) => {
                write_line(writer, &render_error("request line is not valid UTF-8"))?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(line) {
            Err(msg) => render_error(&msg),
            Ok(Request::Shutdown) => {
                write_line(writer, &render_shutdown_ack())?;
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(req) => handle.dispatch(req),
        };
        write_line(writer, &response)?;
    }
}

fn handle_connection<D: Dispatch>(
    stream: TcpStream,
    handle: &D,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    handle_lines(BufReader::new(stream), &mut writer, handle, stop)
}

/// Runs the accept loop until a client sends `{"op":"shutdown"}`, then
/// stops the role ([`Dispatch::on_stop`]) and returns. Blocks the
/// calling thread.
pub fn serve<D: Dispatch + Clone + Send + 'static>(
    handle: D,
    listener: TcpListener,
) -> io::Result<()> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let handle = handle.clone();
        let stop_flag = Arc::clone(&stop);
        // Detached on purpose: a connection thread blocked reading from
        // an idle client must not be able to wedge shutdown.
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &handle, &stop_flag);
            if stop_flag.load(Ordering::SeqCst) {
                // Wake the accept loop so it observes the stop flag.
                let _ = TcpStream::connect(addr);
            }
        });
    }
    handle.on_stop();
    Ok(())
}

/// Binds `127.0.0.1:<port>` (0 picks an ephemeral port) and returns the
/// listener plus the resolved address.
pub fn bind_local(port: u16) -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

/// Splitmix64 for backoff jitter — the serve crate is std-only and the
/// data crate's PRNG is a dev-dependency, so the client carries its own
/// (jitter needs no statistical quality, only de-synchronized retries).
fn jitter_seed() -> u64 {
    let nanos = std::time::UNIX_EPOCH
        .elapsed()
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    nanos ^ (std::process::id() as u64) << 32
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A blocking NDJSON client: one request line out, one response line
/// back, over a kept-alive [`TcpStream`].
///
/// [`Client::connect`] retries connection-refused — the window while a
/// crashed or restarting server is not yet listening — up to 3 attempts
/// with jittered exponential backoff; anything else (bad address,
/// unreachable host) fails fast. Used by `skyup query --connect` and by
/// the coordinator's shard links.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` with the bounded retry policy above.
    pub fn connect(addr: &str) -> Result<Client, String> {
        const ATTEMPTS: u32 = 3;
        let mut rng = jitter_seed();
        for attempt in 1..=ATTEMPTS {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let writer = stream
                        .try_clone()
                        .map_err(|e| format!("{addr}: clone stream: {e}"))?;
                    return Ok(Client {
                        addr: addr.to_string(),
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                    if attempt == ATTEMPTS {
                        break;
                    }
                    let base = 50u64 << (attempt - 1);
                    let backoff = base + (splitmix64(&mut rng) % (base / 2 + 1));
                    eprintln!(
                        "{addr}: connection refused (attempt {attempt}/{ATTEMPTS}); \
                         retrying in {backoff}ms"
                    );
                    std::thread::sleep(Duration::from_millis(backoff));
                }
                Err(e) => return Err(format!("{addr}: {e}")),
            }
        }
        Err(format!(
            "{addr}: connection refused after {ATTEMPTS} attempts"
        ))
    }

    /// The address this client connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request line and reads the one response line. A closed
    /// or broken connection is an error — the caller decides whether to
    /// reconnect (a dropped [`Client`] must not be reused: the response
    /// stream may hold a half-read line).
    pub fn request(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("{}: send request: {e}", self.addr))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("{}: read response: {e}", self.addr))?;
        if n == 0 {
            return Err(format!(
                "{}: connection closed before a response",
                self.addr
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Applies a per-request read deadline (`None` restores blocking
    /// reads). Lets a coordinator bound how long a gather waits on a
    /// wedged shard.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| format!("{}: set read timeout: {e}", self.addr))
    }
}

/// A small keep-alive pool of [`Client`]s for one address, so
/// concurrent scatter threads and sequential requests reuse warm
/// connections instead of paying a handshake per probe. Connections
/// that erred are dropped, not returned.
pub struct ClientPool {
    addr: String,
    idle: Mutex<Vec<Client>>,
}

impl ClientPool {
    /// An empty pool for `addr`; connections are opened on demand.
    pub fn new(addr: &str) -> ClientPool {
        ClientPool {
            addr: addr.to_string(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The address this pool serves.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Runs `f` with a pooled (or freshly connected) client. The client
    /// returns to the pool only when `f` succeeds; on error its
    /// connection is discarded, because a failed exchange may leave
    /// unread bytes on the stream.
    pub fn with<T>(&self, f: impl FnOnce(&mut Client) -> Result<T, String>) -> Result<T, String> {
        let mut client = match self.idle.lock().unwrap().pop() {
            Some(c) => c,
            None => Client::connect(&self.addr)?,
        };
        match f(&mut client) {
            Ok(v) => {
                self.idle.lock().unwrap().push(client);
                Ok(v)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::server::{ServeConfig, ServeHandle};
    use skyup_geom::PointStore;
    use std::io::Cursor;

    fn test_handle() -> ServeHandle {
        let mut store = PointStore::new(2);
        store.push(&[0.2, 0.4]);
        store.push(&[0.5, 0.1]);
        let engine = Arc::new(Engine::with_competitors(store, EngineConfig::default()));
        ServeHandle::start(engine, ServeConfig::default())
    }

    /// Runs `input` through the line loop; returns the response lines
    /// and whether the stop flag ended up set.
    fn drive(handle: &ServeHandle, input: &[u8]) -> (Vec<String>, bool) {
        let stop = AtomicBool::new(false);
        let mut out: Vec<u8> = Vec::new();
        handle_lines(Cursor::new(input.to_vec()), &mut out, handle, &stop)
            .expect("in-memory I/O cannot fail");
        let lines = String::from_utf8(out)
            .expect("responses are UTF-8")
            .lines()
            .map(str::to_owned)
            .collect();
        (lines, stop.load(Ordering::SeqCst))
    }

    fn is_error(line: &str) -> bool {
        line.contains("\"ok\": false") || line.contains("\"ok\":false")
    }

    #[test]
    fn malformed_lines_get_per_line_errors_and_the_connection_survives() {
        let handle = test_handle();
        let input = b"{not json\n\
            {\"op\":\"nope\"}\n\
            {\"op\":\"query\",\"products\":[[0.9,0.9]],\"k\":1}\n";
        let (lines, stopped) = drive(&handle, input);
        assert_eq!(lines.len(), 3, "one response per line: {lines:?}");
        assert!(is_error(&lines[0]), "bad JSON rejected: {}", lines[0]);
        assert!(is_error(&lines[1]), "unknown op rejected: {}", lines[1]);
        assert!(
            !is_error(&lines[2]),
            "valid query after garbage still served: {}",
            lines[2]
        );
        assert!(!stopped);
        handle.shutdown();
    }

    #[test]
    fn non_utf8_line_is_rejected_not_fatal() {
        let handle = test_handle();
        let mut input = vec![0xff, 0xfe, 0x80];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let (lines, _) = drive(&handle, &input);
        assert_eq!(lines.len(), 2);
        assert!(is_error(&lines[0]) && lines[0].contains("UTF-8"));
        assert!(!is_error(&lines[1]));
        handle.shutdown();
    }

    #[test]
    fn oversized_line_is_rejected_without_buffering_it() {
        let handle = test_handle();
        // 2.5 caps worth of garbage on one line, then a valid request.
        let mut input = vec![b'a'; MAX_LINE_BYTES * 5 / 2];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"stats\"}\n");
        let (lines, _) = drive(&handle, &input);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            is_error(&lines[0]) && lines[0].contains("exceeds"),
            "{}",
            lines[0]
        );
        assert!(!is_error(&lines[1]), "next line served: {}", lines[1]);
        handle.shutdown();
    }

    #[test]
    fn truncated_final_line_errors_and_ends_cleanly() {
        let handle = test_handle();
        // A disconnect mid-request: valid prefix, no newline, EOF.
        let (lines, stopped) = drive(&handle, b"{\"op\":\"query\",\"products\":[[0.9,");
        assert_eq!(lines.len(), 1);
        assert!(is_error(&lines[0]));
        assert!(!stopped);
        handle.shutdown();
    }

    #[test]
    fn mid_batch_disconnect_answers_what_arrived() {
        let handle = test_handle();
        // Three requests of a five-request batch arrive before the
        // client vanishes (EOF right after the third newline).
        let input = b"{\"op\":\"query\",\"products\":[[0.9,0.9]],\"k\":1}\n\
            {\"op\":\"stats\"}\n\
            {\"op\":\"query\",\"products\":[[0.8,0.8]],\"k\":1}\n";
        let (lines, stopped) = drive(&handle, input);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| !is_error(l)), "{lines:?}");
        assert!(!stopped);
        handle.shutdown();
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let handle = test_handle();
        let (lines, _) = drive(&handle, b"\n   \n\t\n{\"op\":\"stats\"}\n");
        assert_eq!(lines.len(), 1);
        assert!(!is_error(&lines[0]));
        handle.shutdown();
    }

    #[test]
    fn shutdown_acks_sets_stop_and_ignores_later_lines() {
        let handle = test_handle();
        let (lines, stopped) = drive(&handle, b"{\"op\":\"shutdown\"}\n{\"op\":\"stats\"}\n");
        assert_eq!(lines.len(), 1, "nothing after the ack: {lines:?}");
        assert!(stopped);
        handle.shutdown();
    }
}
