//! One shard of a partitioned competitor set.
//!
//! A shard is a full epoch engine (cache, WAL, telemetry — everything a
//! single-engine server has) that owns the competitors whose
//! coordinates fall in its [`Partition`] slab, under *global*
//! competitor ids assigned by the coordinator. On top of the engine it
//! keeps one extra piece of state: the **published epoch label** — the
//! global epoch this shard's store is consistent with, advanced by the
//! two-phase `stage`/`flip` protocol:
//!
//! 1. `stage(E, op)` buffers epoch `E` (with the shard's slice of the
//!    mutation: the owning shard gets the op, every other shard gets a
//!    pure epoch bump) without touching the engine.
//! 2. `flip(E)` applies the buffered op to the engine and publishes
//!    label `E`, atomically with respect to probes.
//!
//! Probes pin `(label, snapshot)` under the same lock the flip holds
//! while applying, so a gathered answer can never pair one shard's
//! epoch-`E` points with another's epoch-`E-1` label. Both verbs are
//! idempotent against coordinator retries: re-staging the pending epoch
//! overwrites it, and flipping an already-published epoch is an ack.
//!
//! The label is *coordinator* state: it starts at 0 for a fresh
//! topology and is not persisted in the shard's WAL (recovery restores
//! the competitor set; the coordinator re-drives labels — see DESIGN.md
//! §18 for the restart story).

use crate::engine::{Mutation, MutationOutcome};
use crate::net::Dispatch;
use crate::proto::{
    render_error, render_flip_ack, render_health, render_probe_response, render_skyup_error,
    render_stage_ack, Request, Topology,
};
use crate::server::ServeHandle;
use crate::CompetitorId;
use skyup_core::{dominators_from_skyline, SkyupError};
use skyup_geom::PointStore;
use skyup_obs::{Completion, ExecutionLimits, QueryMetrics};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The stateless partitioning function: `shards` equal-width slabs over
/// dimension 0 of the unit cube (the degenerate first level of an STR
/// tiling — sort on one dimension, cut into equal runs). Any finite
/// coordinate routes somewhere: values outside `[0,1)` clamp to the
/// edge slabs, so the partition is total over everything the engine's
/// input validation admits.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    shards: u32,
}

impl Partition {
    /// A partition over `shards` slabs (at least one).
    pub fn new(shards: u32) -> Result<Partition, SkyupError> {
        if shards == 0 {
            return Err(SkyupError::InvalidConfig(
                "a partition needs at least one shard".into(),
            ));
        }
        Ok(Partition { shards })
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning a point at `coords`.
    pub fn shard_of(&self, coords: &[f64]) -> u32 {
        let first = coords.first().copied().unwrap_or(0.0);
        let slab = (first * self.shards as f64).floor();
        if slab.is_nan() {
            return 0;
        }
        (slab as i64).clamp(0, i64::from(self.shards) - 1) as u32
    }

    /// Splits a seed set into shard `shard_id`'s slice, preserving
    /// global ids: row `i` of the seed carries cid `i`, exactly the ids
    /// [`crate::engine::Engine::with_competitors`] would assign to the
    /// full set. Feed the result to
    /// [`crate::engine::Engine::with_identified_competitors`] with
    /// `next_cid = store.len()` of the *full* seed.
    pub fn shard_seed(&self, seed: &PointStore, shard_id: u32) -> (PointStore, Vec<CompetitorId>) {
        let mut store = PointStore::new(seed.dims());
        let mut cid_of = Vec::new();
        for pid in seed.ids() {
            let coords = seed.point(pid);
            if self.shard_of(coords) == shard_id {
                store.push(coords);
                cid_of.push(pid.index() as CompetitorId);
            }
        }
        (store, cid_of)
    }
}

/// The owning shard's slice of a staged mutation. Non-owners stage
/// `None`: a pure epoch bump.
#[derive(Clone, Debug, PartialEq)]
pub enum StagedOp {
    /// Add a competitor under its coordinator-assigned global id.
    Add {
        /// The global competitor id.
        cid: CompetitorId,
        /// Its coordinates.
        point: Vec<f64>,
    },
    /// Remove the competitor with this global id.
    Remove {
        /// The global competitor id.
        cid: CompetitorId,
    },
}

/// A scatter probe: the admitted prefix of a query's products, plus the
/// client deadline so a shard sheds work the gather could never use.
#[derive(Clone, Debug)]
pub struct ProbeRequest {
    /// Product coordinates to probe, in request order.
    pub products: Vec<Vec<f64>>,
    /// The query deadline, forwarded from the coordinator.
    pub deadline: Option<Duration>,
}

/// A shard's answer to a probe: its local dominator skyline restricted
/// to ADR(t) for each evaluated product, under the published label.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeResponse {
    /// The shard's published epoch label the dominators are consistent
    /// with.
    pub epoch: u64,
    /// Exact, or partial with the interrupt that cut the prefix.
    pub completion: Completion,
    /// Products evaluated (== `dominators.len()`).
    pub evaluated: usize,
    /// Per evaluated product: `(cid, coords)` of every local skyline
    /// point dominating it, ascending by cid.
    pub dominators: Vec<Vec<(CompetitorId, Vec<f64>)>>,
}

/// A flip acknowledgement: the published label, plus the engine outcome
/// when this shard owned the staged op.
#[derive(Clone, Debug, PartialEq)]
pub struct FlipAck {
    /// The shard's published label after the flip.
    pub epoch: u64,
    /// The owning shard's mutation outcome (`None` for pure bumps and
    /// idempotent re-flips).
    pub outcome: Option<MutationOutcome>,
}

struct ShardEpoch {
    /// The published global epoch label.
    label: u64,
    /// A staged-but-not-flipped epoch and its op slice.
    staged: Option<(u64, Option<StagedOp>)>,
}

/// A shard: an engine's [`ServeHandle`] plus the two-phase epoch state.
pub struct ShardState {
    handle: ServeHandle,
    shard_id: u32,
    shards: u32,
    epoch: Mutex<ShardEpoch>,
}

impl ShardState {
    /// Wraps a seeded engine handle as shard `shard_id` of `shards`.
    /// The label starts at 0 — a fresh topology; the coordinator drives
    /// it forward from there.
    pub fn new(handle: ServeHandle, shard_id: u32, shards: u32) -> ShardState {
        ShardState {
            handle,
            shard_id,
            shards,
            epoch: Mutex::new(ShardEpoch {
                label: 0,
                staged: None,
            }),
        }
    }

    /// The underlying engine handle (local queries, stats, telemetry).
    pub fn handle(&self) -> &ServeHandle {
        &self.handle
    }

    /// This shard's id.
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    /// The topology's shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The published epoch label.
    pub fn label(&self) -> u64 {
        self.epoch.lock().unwrap().label
    }

    /// This shard's health topology fields.
    pub fn topology(&self) -> Topology {
        Topology::Shard {
            shard_id: self.shard_id,
            shards: self.shards,
        }
    }

    /// Phase one: buffers epoch `epoch` with this shard's op slice.
    /// Nothing touches the engine. Idempotent against coordinator
    /// retries: re-staging the pending epoch overwrites its op (the
    /// coordinator is the only writer, and an aborted publish may retry
    /// the same epoch with a different mutation); staging an
    /// already-published epoch is an ack. Staging anything but
    /// `label + 1` is an error — the coordinator serializes publishes,
    /// so a gap means a protocol bug or a stale coordinator.
    pub fn stage(&self, epoch: u64, op: Option<StagedOp>) -> Result<u64, SkyupError> {
        let mut e = self.epoch.lock().unwrap();
        if epoch <= e.label {
            return Ok(e.label);
        }
        if epoch != e.label + 1 {
            return Err(SkyupError::InvalidInput(format!(
                "cannot stage epoch {epoch} over published label {}",
                e.label
            )));
        }
        e.staged = Some((epoch, op));
        Ok(epoch)
    }

    /// Phase two: applies the staged op to the engine and publishes
    /// label `epoch`, atomically with respect to [`ShardState::probe`].
    /// Flipping an already-published epoch is an idempotent ack (the
    /// retry path for a lost flip-ack); flipping an unstaged epoch is
    /// an error. An engine failure (e.g. a read-only WAL) leaves the
    /// epoch staged so a later retry can still complete the publish.
    pub fn flip(&self, epoch: u64) -> Result<FlipAck, SkyupError> {
        let mut e = self.epoch.lock().unwrap();
        if epoch <= e.label {
            return Ok(FlipAck {
                epoch: e.label,
                outcome: None,
            });
        }
        match &e.staged {
            Some((staged, op)) if *staged == epoch => {
                let outcome = match op.clone() {
                    None => None,
                    Some(StagedOp::Add { cid, point }) => Some(
                        self.handle
                            .apply_mutation(Mutation::AddCompetitorWithCid(cid, point))?,
                    ),
                    Some(StagedOp::Remove { cid }) => Some(
                        self.handle
                            .apply_mutation(Mutation::RemoveCompetitor(cid))?,
                    ),
                };
                e.staged = None;
                e.label = epoch;
                Ok(FlipAck { epoch, outcome })
            }
            _ => Err(SkyupError::InvalidInput(format!(
                "epoch {epoch} is not staged on shard {} (label {})",
                self.shard_id, e.label
            ))),
        }
    }

    /// Answers a scatter probe: for each product (within the deadline),
    /// the local dominator skyline restricted to ADR(t) as
    /// `(cid, coords)` pairs, ascending by cid. The label and snapshot
    /// are pinned under the epoch lock, so the answer is consistent
    /// with exactly one published epoch.
    pub fn probe(&self, req: &ProbeRequest) -> ProbeResponse {
        let (label, snap) = {
            let e = self.epoch.lock().unwrap();
            (e.label, self.handle.engine().snapshot())
        };
        let mut limits = ExecutionLimits::default();
        if let Some(d) = req.deadline {
            limits = limits.with_deadline(d);
        }
        let mut guard = limits.start();
        let mut rec = QueryMetrics::new();
        let mut dominators = Vec::with_capacity(req.products.len());
        let mut completion = Completion::Exact;
        for t in &req.products {
            if let Err(i) = guard.visit_node() {
                completion = Completion::Partial(i);
                break;
            }
            let doms = dominators_from_skyline(snap.store(), snap.skyline(), t, &mut rec);
            dominators.push(
                doms.iter()
                    .map(|&pid| (snap.cid(pid), snap.store().point(pid).to_vec()))
                    .collect(),
            );
        }
        self.handle.engine().absorb_metrics(&rec);
        ProbeResponse {
            epoch: label,
            completion,
            evaluated: dominators.len(),
            dominators,
        }
    }
}

/// The shard role behind the NDJSON front door. Shard verbs
/// (`stage`/`flip`/`local_probe`) hit the two-phase state; direct
/// mutations are rejected (they must route through the coordinator, the
/// sole owner of the global id and epoch sequences); queries and the
/// observability verbs serve shard-locally off the underlying engine.
#[derive(Clone)]
pub struct ShardDispatch(pub Arc<ShardState>);

impl Dispatch for ShardDispatch {
    fn dispatch(&self, req: Request) -> String {
        let state = &*self.0;
        match req {
            Request::Stage { epoch, op } => match state.stage(epoch, op) {
                Ok(staged) => render_stage_ack(staged),
                Err(err) => render_skyup_error(&err),
            },
            Request::Flip { epoch } => match state.flip(epoch) {
                Ok(ack) => render_flip_ack(&ack),
                Err(err) => render_skyup_error(&err),
            },
            Request::LocalProbe(probe) => render_probe_response(&state.probe(&probe)),
            Request::Add(_) | Request::Remove(_) => render_error(&format!(
                "shard {} does not accept direct mutations; route them through the coordinator",
                state.shard_id
            )),
            Request::Health => {
                let durability = state.handle.durability();
                render_health(
                    state.label(),
                    state.handle.queue_depth(),
                    durability.as_ref(),
                    &state.topology(),
                )
            }
            // Queries answer shard-locally (this shard's slice only,
            // under its *engine* epoch) — a debugging view, not the
            // merged answer. Stats/metrics/traces read the engine's
            // telemetry exactly like a single server.
            other => state.handle.dispatch(other),
        }
    }

    fn on_stop(&self) {
        self.0.handle.shutdown();
    }
}
