//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line back. Requests carry an
//! `"op"` discriminator:
//!
//! ```text
//! {"op":"query","products":[[0.9,0.9]],"k":1,"cost":"reciprocal:0.001",
//!  "max_products":100,"deadline_ms":50}
//! {"op":"add","point":[0.4,0.5]}
//! {"op":"remove","cid":7}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"trace","n":16}
//! {"op":"shutdown"}
//! ```
//!
//! Shard servers additionally speak the coordinator-facing verbs of the
//! two-phase epoch publish and the scatter/gather query path:
//!
//! ```text
//! {"op":"stage","epoch":9}                               // pure epoch bump
//! {"op":"stage","epoch":9,"add":{"cid":41,"point":[0.4,0.5]}}
//! {"op":"stage","epoch":9,"remove":41}
//! {"op":"flip","epoch":9}
//! {"op":"local_probe","products":[[0.9,0.9]],"deadline_ms":50}
//! ```
//!
//! Responses always carry `"ok"`. Successful queries report the epoch
//! they are consistent with, a completion tag (`"exact"` or
//! `"partial"` plus the interrupt reason), and the top-k results;
//! errors come back as `{"ok":false,"error":"..."}` and never tear down
//! the connection.

use crate::engine::{DurabilityStatus, EngineStats, MutationOutcome};
use crate::server::{CostSpec, ProductAnswer, QueryRequest, QueryResponse};
use crate::shard::{FlipAck, ProbeRequest, ProbeResponse, StagedOp};
use skyup_core::SkyupError;
use skyup_obs::json::{parse, Json};
use skyup_obs::Counter;
use skyup_obs::{Completion, Interrupt, QueryMetrics};
use std::time::Duration;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Top-k upgrade query.
    Query(QueryRequest),
    /// Add a competitor.
    Add(Vec<f64>),
    /// Remove a competitor by id.
    Remove(u64),
    /// Read engine stats and serving counters.
    Stats,
    /// Liveness/durability probe: epoch, WAL sequence number, queue
    /// depth, and recovery/read-only state.
    Health,
    /// Read the per-class latency histograms and recorder totals.
    Metrics,
    /// Dump the last `n` traces from the flight recorder and slow log.
    Trace(usize),
    /// Two-phase publish, phase one: buffer an epoch (with this shard's
    /// op slice) without applying it. Shard servers only.
    Stage {
        /// The global epoch being staged.
        epoch: u64,
        /// The op for the owning shard; `None` is a pure epoch bump.
        op: Option<StagedOp>,
    },
    /// Two-phase publish, phase two: apply the staged epoch and publish
    /// its label. Shard servers only.
    Flip {
        /// The staged epoch to publish.
        epoch: u64,
    },
    /// A coordinator's scatter probe for per-product local dominator
    /// skylines. Shard servers only.
    LocalProbe(ProbeRequest),
    /// Stop the server.
    Shutdown,
}

fn f64_field(v: &Json) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| "expected a number".into())
}

fn point_field(v: &Json) -> Result<Vec<f64>, String> {
    match v {
        Json::Arr(items) => items.iter().map(f64_field).collect(),
        _ => Err("expected an array of numbers".into()),
    }
}

/// Traces returned by `{"op":"trace"}` when no `"n"` is given.
pub const DEFAULT_TRACE_DUMP: u64 = 16;

/// Parses `--cost`-style specs: `reciprocal:<eps>` or `linear:<slope>`.
pub fn parse_cost(spec: &str) -> Result<CostSpec, String> {
    let (kind, value) = spec
        .split_once(':')
        .ok_or_else(|| format!("cost spec `{spec}` is not kind:value"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("cost parameter `{value}` is not a number"))?;
    match kind {
        "reciprocal" => Ok(CostSpec::Reciprocal(value)),
        "linear" => Ok(CostSpec::Linear(value)),
        other => Err(format!("unknown cost kind `{other}`")),
    }
}

/// Parses one request line. Errors are messages for the client, not
/// server faults.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = doc
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or("missing \"op\"")?;
    match op {
        "query" => {
            let products = match doc.get("products") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(point_field)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("query needs \"products\": [[..],..]".into()),
            };
            let k = doc
                .get("k")
                .map(|v| v.as_u64().ok_or("\"k\" must be a positive integer"))
                .transpose()?
                .unwrap_or(1) as usize;
            let cost = doc
                .get("cost")
                .map(|v| {
                    v.as_str()
                        .ok_or_else(|| "\"cost\" must be a string".to_string())
                        .and_then(parse_cost)
                })
                .transpose()?
                .unwrap_or_default();
            let max_products = doc
                .get("max_products")
                .map(|v| v.as_u64().ok_or("\"max_products\" must be an integer"))
                .transpose()?;
            let deadline = doc
                .get("deadline_ms")
                .map(|v| v.as_u64().ok_or("\"deadline_ms\" must be an integer"))
                .transpose()?
                .map(Duration::from_millis);
            Ok(Request::Query(QueryRequest {
                products,
                k,
                cost,
                max_products,
                deadline,
            }))
        }
        "add" => {
            let point = doc.get("point").ok_or("add needs \"point\": [..]")?;
            Ok(Request::Add(point_field(point)?))
        }
        "remove" => {
            let cid = doc
                .get("cid")
                .and_then(|v| v.as_u64())
                .ok_or("remove needs an integer \"cid\"")?;
            Ok(Request::Remove(cid))
        }
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "trace" => {
            let n = doc
                .get("n")
                .map(|v| v.as_u64().ok_or("\"n\" must be a positive integer"))
                .transpose()?
                .unwrap_or(DEFAULT_TRACE_DUMP);
            if n == 0 {
                return Err("\"n\" must be a positive integer".into());
            }
            Ok(Request::Trace(n as usize))
        }
        "stage" => {
            let epoch = doc
                .get("epoch")
                .and_then(|v| v.as_u64())
                .ok_or("stage needs an integer \"epoch\"")?;
            let op = match (doc.get("add"), doc.get("remove")) {
                (Some(_), Some(_)) => {
                    return Err("stage carries \"add\" or \"remove\", not both".into())
                }
                (Some(add), None) => {
                    let cid = add
                        .get("cid")
                        .and_then(|v| v.as_u64())
                        .ok_or("stage add needs an integer \"cid\"")?;
                    let point = add.get("point").ok_or("stage add needs \"point\": [..]")?;
                    Some(StagedOp::Add {
                        cid,
                        point: point_field(point)?,
                    })
                }
                (None, Some(remove)) => {
                    let cid = remove
                        .as_u64()
                        .ok_or("stage needs an integer \"remove\" cid")?;
                    Some(StagedOp::Remove { cid })
                }
                (None, None) => None,
            };
            Ok(Request::Stage { epoch, op })
        }
        "flip" => {
            let epoch = doc
                .get("epoch")
                .and_then(|v| v.as_u64())
                .ok_or("flip needs an integer \"epoch\"")?;
            Ok(Request::Flip { epoch })
        }
        "local_probe" => {
            let products = match doc.get("products") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(point_field)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("local_probe needs \"products\": [[..],..]".into()),
            };
            let deadline = doc
                .get("deadline_ms")
                .map(|v| v.as_u64().ok_or("\"deadline_ms\" must be an integer"))
                .transpose()?
                .map(Duration::from_millis);
            Ok(Request::LocalProbe(ProbeRequest { products, deadline }))
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

fn completion_fields(c: Completion, fields: &mut Vec<(&str, Json)>) {
    match c {
        Completion::Exact => fields.push(("completion", Json::Str("exact".into()))),
        Completion::Partial(i) => {
            fields.push(("completion", Json::Str("partial".into())));
            fields.push(("interrupt", Json::Str(i.reason().into())));
        }
    }
}

/// Renders a successful query response.
pub fn render_query_response(resp: &QueryResponse) -> String {
    let results = resp
        .results
        .iter()
        .map(
            |ProductAnswer {
                 index,
                 cost,
                 upgraded,
             }| {
                Json::obj(vec![
                    ("index", Json::Uint(*index as u64)),
                    ("cost", Json::Num(*cost)),
                    (
                        "upgraded",
                        Json::Arr(upgraded.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                ])
            },
        )
        .collect();
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(resp.epoch))];
    completion_fields(resp.completion, &mut fields);
    fields.push(("evaluated", Json::Uint(resp.evaluated as u64)));
    fields.push(("results", Json::Arr(results)));
    Json::obj(fields).render()
}

/// Renders a mutation acknowledgement.
pub fn render_mutation_outcome(out: &MutationOutcome) -> String {
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(out.epoch))];
    if let Some(cid) = out.cid {
        fields.push(("cid", Json::Uint(cid)));
    } else {
        fields.push(("removed", Json::Bool(out.removed)));
    }
    fields.push(("rebuilt", Json::Bool(out.rebuilt)));
    fields.push(("evicted", Json::Uint(out.evicted)));
    Json::obj(fields).render()
}

/// Renders the stats response: engine shape, current queue depth, and
/// the serving counters.
pub fn render_stats(stats: &EngineStats, metrics: &QueryMetrics, queue_depth: usize) -> String {
    let counters = Json::obj(
        [
            Counter::CacheHit,
            Counter::CacheMiss,
            Counter::CacheEvictions,
            Counter::EpochSwaps,
            Counter::RequestsShed,
            Counter::BatchesExecuted,
            Counter::BatchedRequests,
            Counter::DominatorMemoHits,
            Counter::TracesRecorded,
            Counter::SlowQueries,
            Counter::WalAppends,
            Counter::WalBytes,
            Counter::WalFsyncs,
            Counter::CheckpointsWritten,
            Counter::RecoveryReplayedRecords,
            Counter::TornTailTruncated,
        ]
        .iter()
        .map(|&c| (c.name(), Json::Uint(metrics.get(c))))
        .collect(),
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("epoch", Json::Uint(stats.epoch)),
        ("live", Json::Uint(stats.live as u64)),
        ("skyline", Json::Uint(stats.skyline_len as u64)),
        ("dead", Json::Uint(stats.dead as u64)),
        ("rebuilds", Json::Uint(stats.rebuilds)),
        ("cached", Json::Uint(stats.cached as u64)),
        ("queue_depth", Json::Uint(queue_depth as u64)),
        ("counters", counters),
    ])
    .render()
}

/// A server's role and place in the sharded topology, reported by
/// `{"op":"health"}` so operators (and `query --health`) can tell a
/// single engine, one shard of many, and a coordinator apart.
#[derive(Clone, Debug)]
pub enum Topology {
    /// A standalone single-engine server.
    Single,
    /// One shard of a partitioned set.
    Shard {
        /// This shard's id.
        shard_id: u32,
        /// The topology's shard count.
        shards: u32,
    },
    /// A coordinator fronting `(target, reachable)` shard links, probed
    /// at health time.
    Coordinator {
        /// Per shard: its address (or in-process tag) and whether it
        /// answered a health probe just now.
        shards: Vec<(String, bool)>,
    },
}

impl Topology {
    fn fields(&self, fields: &mut Vec<(&str, Json)>) {
        match self {
            Topology::Single => fields.push(("role", Json::Str("single".into()))),
            Topology::Shard { shard_id, shards } => {
                fields.push(("role", Json::Str("shard".into())));
                fields.push(("shard_id", Json::Uint(u64::from(*shard_id))));
                fields.push(("shards", Json::Uint(u64::from(*shards))));
            }
            Topology::Coordinator { shards } => {
                fields.push(("role", Json::Str("coordinator".into())));
                fields.push(("shards", Json::Uint(shards.len() as u64)));
                fields.push((
                    "shard_status",
                    Json::Arr(
                        shards
                            .iter()
                            .map(|(target, reachable)| {
                                Json::obj(vec![
                                    ("target", Json::Str(target.clone())),
                                    ("reachable", Json::Bool(*reachable)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
    }
}

/// Renders the health response. `durability` is `None` when the server
/// runs without `--wal`; with it, the WAL sequence number, recovery
/// report, and read-only state are included so operators (and the
/// crash harness) can see exactly where the durable log stands. The
/// `topology` adds the role fields — for a shard, `epoch` is its
/// published label, not its engine epoch.
pub fn render_health(
    epoch: u64,
    queue_depth: usize,
    durability: Option<&DurabilityStatus>,
    topology: &Topology,
) -> String {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("epoch", Json::Uint(epoch)),
        ("queue_depth", Json::Uint(queue_depth as u64)),
        ("wal", Json::Bool(durability.is_some())),
    ];
    topology.fields(&mut fields);
    if let Some(d) = durability {
        fields.push(("wal_seq", Json::Uint(d.last_seq)));
        fields.push(("read_only", Json::Bool(d.read_only.is_some())));
        if let Some(reason) = &d.read_only {
            fields.push(("read_only_reason", Json::Str(reason.clone())));
        }
        fields.push((
            "recovery",
            Json::obj(vec![
                ("checkpoint_seq", Json::Uint(d.recovery.checkpoint_seq)),
                ("replayed", Json::Uint(d.recovery.replayed)),
                ("torn_truncated", Json::Uint(d.recovery.torn_truncated)),
            ]),
        ));
    } else {
        fields.push(("read_only", Json::Bool(false)));
    }
    Json::obj(fields).render()
}

/// Renders a client-visible error.
pub fn render_error(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
    .render()
}

/// Renders a [`SkyupError`] as a client-visible error.
pub fn render_skyup_error(err: &SkyupError) -> String {
    render_error(&err.to_string())
}

/// Renders the shutdown acknowledgement.
pub fn render_shutdown_ack() -> String {
    Json::obj(vec![("ok", Json::Bool(true))]).render()
}

/// Renders a stage request line (coordinator → shard).
pub fn render_stage_request(epoch: u64, op: Option<&StagedOp>) -> String {
    let mut fields = vec![
        ("op", Json::Str("stage".into())),
        ("epoch", Json::Uint(epoch)),
    ];
    match op {
        None => {}
        Some(StagedOp::Add { cid, point }) => {
            fields.push((
                "add",
                Json::obj(vec![
                    ("cid", Json::Uint(*cid)),
                    (
                        "point",
                        Json::Arr(point.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                ]),
            ));
        }
        Some(StagedOp::Remove { cid }) => {
            fields.push(("remove", Json::Uint(*cid)));
        }
    }
    Json::obj(fields).render()
}

/// Renders a flip request line (coordinator → shard).
pub fn render_flip_request(epoch: u64) -> String {
    Json::obj(vec![
        ("op", Json::Str("flip".into())),
        ("epoch", Json::Uint(epoch)),
    ])
    .render()
}

/// Renders a probe request line (coordinator → shard).
pub fn render_probe_request(req: &ProbeRequest) -> String {
    let products = req
        .products
        .iter()
        .map(|p| Json::Arr(p.iter().map(|&v| Json::Num(v)).collect()))
        .collect();
    let mut fields = vec![
        ("op", Json::Str("local_probe".into())),
        ("products", Json::Arr(products)),
    ];
    if let Some(d) = req.deadline {
        fields.push(("deadline_ms", Json::Uint(d.as_millis() as u64)));
    }
    Json::obj(fields).render()
}

/// Renders a stage acknowledgement: the epoch now buffered (or already
/// published, for idempotent retries).
pub fn render_stage_ack(epoch: u64) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("staged", Json::Uint(epoch)),
    ])
    .render()
}

/// Renders a flip acknowledgement: the published label, plus the
/// owner's mutation outcome when the flip applied one.
pub fn render_flip_ack(ack: &FlipAck) -> String {
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(ack.epoch))];
    if let Some(out) = &ack.outcome {
        fields.push(("applied", Json::Bool(true)));
        if let Some(cid) = out.cid {
            fields.push(("cid", Json::Uint(cid)));
        } else {
            fields.push(("removed", Json::Bool(out.removed)));
        }
        fields.push(("rebuilt", Json::Bool(out.rebuilt)));
        fields.push(("evicted", Json::Uint(out.evicted)));
    } else {
        fields.push(("applied", Json::Bool(false)));
    }
    Json::obj(fields).render()
}

/// Renders a probe response: the shard's label, the completion of the
/// product prefix it evaluated, and per-product `(cid, coords)`
/// dominator pairs. Coordinates round-trip bit-exactly: `Json::Num`
/// renders the shortest representation that parses back to the same
/// f64, and every stored coordinate is finite.
pub fn render_probe_response(resp: &ProbeResponse) -> String {
    let dominators = resp
        .dominators
        .iter()
        .map(|per_product| {
            Json::Arr(
                per_product
                    .iter()
                    .map(|(cid, coords)| {
                        Json::Arr(vec![
                            Json::Uint(*cid),
                            Json::Arr(coords.iter().map(|&v| Json::Num(v)).collect()),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(resp.epoch))];
    completion_fields(resp.completion, &mut fields);
    fields.push(("evaluated", Json::Uint(resp.evaluated as u64)));
    fields.push(("dominators", Json::Arr(dominators)));
    Json::obj(fields).render()
}

/// Maps a wire interrupt reason back to the [`Interrupt`] it came from
/// (the inverse of [`Interrupt::reason`]).
pub fn interrupt_from_reason(reason: &str) -> Option<Interrupt> {
    [
        Interrupt::DeadlineExceeded,
        Interrupt::NodeVisitBudget,
        Interrupt::HeapBudget,
        Interrupt::Cancelled,
        Interrupt::Overloaded,
    ]
    .into_iter()
    .find(|i| i.reason() == reason)
}

/// Checks `ok` and surfaces `error` on a parsed response line.
fn checked_response(line: &str) -> Result<Json, String> {
    let doc = parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
    match doc.get("ok") {
        Some(Json::Bool(true)) => Ok(doc),
        _ => {
            let msg = doc
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("response is not ok");
            Err(msg.to_string())
        }
    }
}

fn completion_of(doc: &Json) -> Result<Completion, String> {
    match doc.get("completion").and_then(|v| v.as_str()) {
        Some("exact") => Ok(Completion::Exact),
        Some("partial") => {
            let reason = doc
                .get("interrupt")
                .and_then(|v| v.as_str())
                .ok_or("partial completion without an interrupt reason")?;
            let interrupt = interrupt_from_reason(reason)
                .ok_or_else(|| format!("unknown interrupt reason `{reason}`"))?;
            Ok(Completion::Partial(interrupt))
        }
        _ => Err("response carries no completion tag".into()),
    }
}

/// Parses a stage acknowledgement; returns the staged epoch.
pub fn parse_stage_ack(line: &str) -> Result<u64, String> {
    let doc = checked_response(line)?;
    doc.get("staged")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "stage ack carries no \"staged\" epoch".into())
}

/// Parses a flip acknowledgement.
pub fn parse_flip_ack(line: &str) -> Result<FlipAck, String> {
    let doc = checked_response(line)?;
    let epoch = doc
        .get("epoch")
        .and_then(|v| v.as_u64())
        .ok_or("flip ack carries no \"epoch\"")?;
    let applied = matches!(doc.get("applied"), Some(Json::Bool(true)));
    let outcome = if applied {
        let cid = doc.get("cid").and_then(|v| v.as_u64());
        let removed = matches!(doc.get("removed"), Some(Json::Bool(true)));
        let rebuilt = matches!(doc.get("rebuilt"), Some(Json::Bool(true)));
        let evicted = doc.get("evicted").and_then(|v| v.as_u64()).unwrap_or(0);
        Some(MutationOutcome {
            epoch,
            cid,
            removed,
            rebuilt,
            evicted,
        })
    } else {
        None
    };
    Ok(FlipAck { epoch, outcome })
}

/// Parses a probe response back into [`ProbeResponse`].
pub fn parse_probe_response(line: &str) -> Result<ProbeResponse, String> {
    let doc = checked_response(line)?;
    let epoch = doc
        .get("epoch")
        .and_then(|v| v.as_u64())
        .ok_or("probe response carries no \"epoch\"")?;
    let completion = completion_of(&doc)?;
    let evaluated = doc
        .get("evaluated")
        .and_then(|v| v.as_u64())
        .ok_or("probe response carries no \"evaluated\"")? as usize;
    let dominators = match doc.get("dominators") {
        Some(Json::Arr(products)) => products
            .iter()
            .map(|per_product| match per_product {
                Json::Arr(pairs) => pairs
                    .iter()
                    .map(|pair| match pair {
                        Json::Arr(parts) if parts.len() == 2 => {
                            let cid = parts[0].as_u64().ok_or("dominator cid is not an integer")?;
                            let coords = point_field(&parts[1])?;
                            Ok((cid, coords))
                        }
                        _ => Err("dominator entry is not a [cid, coords] pair".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>(),
                _ => Err("per-product dominators is not an array".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("probe response carries no \"dominators\"".into()),
    };
    if dominators.len() != evaluated {
        return Err(format!(
            "probe response evaluated {evaluated} products but carries {} dominator lists",
            dominators.len()
        ));
    }
    Ok(ProbeResponse {
        epoch,
        completion,
        evaluated,
        dominators,
    })
}
