//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line back. Requests carry an
//! `"op"` discriminator:
//!
//! ```text
//! {"op":"query","products":[[0.9,0.9]],"k":1,"cost":"reciprocal:0.001",
//!  "max_products":100,"deadline_ms":50}
//! {"op":"add","point":[0.4,0.5]}
//! {"op":"remove","cid":7}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"trace","n":16}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`. Successful queries report the epoch
//! they are consistent with, a completion tag (`"exact"` or
//! `"partial"` plus the interrupt reason), and the top-k results;
//! errors come back as `{"ok":false,"error":"..."}` and never tear down
//! the connection.

use crate::engine::{DurabilityStatus, EngineStats, MutationOutcome};
use crate::server::{CostSpec, ProductAnswer, QueryRequest, QueryResponse};
use skyup_core::SkyupError;
use skyup_obs::json::{parse, Json};
use skyup_obs::Counter;
use skyup_obs::{Completion, QueryMetrics};
use std::time::Duration;

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Top-k upgrade query.
    Query(QueryRequest),
    /// Add a competitor.
    Add(Vec<f64>),
    /// Remove a competitor by id.
    Remove(u64),
    /// Read engine stats and serving counters.
    Stats,
    /// Liveness/durability probe: epoch, WAL sequence number, queue
    /// depth, and recovery/read-only state.
    Health,
    /// Read the per-class latency histograms and recorder totals.
    Metrics,
    /// Dump the last `n` traces from the flight recorder and slow log.
    Trace(usize),
    /// Stop the server.
    Shutdown,
}

fn f64_field(v: &Json) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| "expected a number".into())
}

fn point_field(v: &Json) -> Result<Vec<f64>, String> {
    match v {
        Json::Arr(items) => items.iter().map(f64_field).collect(),
        _ => Err("expected an array of numbers".into()),
    }
}

/// Traces returned by `{"op":"trace"}` when no `"n"` is given.
pub const DEFAULT_TRACE_DUMP: u64 = 16;

/// Parses `--cost`-style specs: `reciprocal:<eps>` or `linear:<slope>`.
pub fn parse_cost(spec: &str) -> Result<CostSpec, String> {
    let (kind, value) = spec
        .split_once(':')
        .ok_or_else(|| format!("cost spec `{spec}` is not kind:value"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("cost parameter `{value}` is not a number"))?;
    match kind {
        "reciprocal" => Ok(CostSpec::Reciprocal(value)),
        "linear" => Ok(CostSpec::Linear(value)),
        other => Err(format!("unknown cost kind `{other}`")),
    }
}

/// Parses one request line. Errors are messages for the client, not
/// server faults.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = doc
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or("missing \"op\"")?;
    match op {
        "query" => {
            let products = match doc.get("products") {
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(point_field)
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("query needs \"products\": [[..],..]".into()),
            };
            let k = doc
                .get("k")
                .map(|v| v.as_u64().ok_or("\"k\" must be a positive integer"))
                .transpose()?
                .unwrap_or(1) as usize;
            let cost = doc
                .get("cost")
                .map(|v| {
                    v.as_str()
                        .ok_or_else(|| "\"cost\" must be a string".to_string())
                        .and_then(parse_cost)
                })
                .transpose()?
                .unwrap_or_default();
            let max_products = doc
                .get("max_products")
                .map(|v| v.as_u64().ok_or("\"max_products\" must be an integer"))
                .transpose()?;
            let deadline = doc
                .get("deadline_ms")
                .map(|v| v.as_u64().ok_or("\"deadline_ms\" must be an integer"))
                .transpose()?
                .map(Duration::from_millis);
            Ok(Request::Query(QueryRequest {
                products,
                k,
                cost,
                max_products,
                deadline,
            }))
        }
        "add" => {
            let point = doc.get("point").ok_or("add needs \"point\": [..]")?;
            Ok(Request::Add(point_field(point)?))
        }
        "remove" => {
            let cid = doc
                .get("cid")
                .and_then(|v| v.as_u64())
                .ok_or("remove needs an integer \"cid\"")?;
            Ok(Request::Remove(cid))
        }
        "stats" => Ok(Request::Stats),
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "trace" => {
            let n = doc
                .get("n")
                .map(|v| v.as_u64().ok_or("\"n\" must be a positive integer"))
                .transpose()?
                .unwrap_or(DEFAULT_TRACE_DUMP);
            if n == 0 {
                return Err("\"n\" must be a positive integer".into());
            }
            Ok(Request::Trace(n as usize))
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

fn completion_fields(c: Completion, fields: &mut Vec<(&str, Json)>) {
    match c {
        Completion::Exact => fields.push(("completion", Json::Str("exact".into()))),
        Completion::Partial(i) => {
            fields.push(("completion", Json::Str("partial".into())));
            fields.push(("interrupt", Json::Str(i.reason().into())));
        }
    }
}

/// Renders a successful query response.
pub fn render_query_response(resp: &QueryResponse) -> String {
    let results = resp
        .results
        .iter()
        .map(
            |ProductAnswer {
                 index,
                 cost,
                 upgraded,
             }| {
                Json::obj(vec![
                    ("index", Json::Uint(*index as u64)),
                    ("cost", Json::Num(*cost)),
                    (
                        "upgraded",
                        Json::Arr(upgraded.iter().map(|&v| Json::Num(v)).collect()),
                    ),
                ])
            },
        )
        .collect();
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(resp.epoch))];
    completion_fields(resp.completion, &mut fields);
    fields.push(("evaluated", Json::Uint(resp.evaluated as u64)));
    fields.push(("results", Json::Arr(results)));
    Json::obj(fields).render()
}

/// Renders a mutation acknowledgement.
pub fn render_mutation_outcome(out: &MutationOutcome) -> String {
    let mut fields = vec![("ok", Json::Bool(true)), ("epoch", Json::Uint(out.epoch))];
    if let Some(cid) = out.cid {
        fields.push(("cid", Json::Uint(cid)));
    } else {
        fields.push(("removed", Json::Bool(out.removed)));
    }
    fields.push(("rebuilt", Json::Bool(out.rebuilt)));
    fields.push(("evicted", Json::Uint(out.evicted)));
    Json::obj(fields).render()
}

/// Renders the stats response: engine shape, current queue depth, and
/// the serving counters.
pub fn render_stats(stats: &EngineStats, metrics: &QueryMetrics, queue_depth: usize) -> String {
    let counters = Json::obj(
        [
            Counter::CacheHit,
            Counter::CacheMiss,
            Counter::CacheEvictions,
            Counter::EpochSwaps,
            Counter::RequestsShed,
            Counter::BatchesExecuted,
            Counter::BatchedRequests,
            Counter::DominatorMemoHits,
            Counter::TracesRecorded,
            Counter::SlowQueries,
            Counter::WalAppends,
            Counter::WalBytes,
            Counter::WalFsyncs,
            Counter::CheckpointsWritten,
            Counter::RecoveryReplayedRecords,
            Counter::TornTailTruncated,
        ]
        .iter()
        .map(|&c| (c.name(), Json::Uint(metrics.get(c))))
        .collect(),
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("epoch", Json::Uint(stats.epoch)),
        ("live", Json::Uint(stats.live as u64)),
        ("skyline", Json::Uint(stats.skyline_len as u64)),
        ("dead", Json::Uint(stats.dead as u64)),
        ("rebuilds", Json::Uint(stats.rebuilds)),
        ("cached", Json::Uint(stats.cached as u64)),
        ("queue_depth", Json::Uint(queue_depth as u64)),
        ("counters", counters),
    ])
    .render()
}

/// Renders the health response. `durability` is `None` when the server
/// runs without `--wal`; with it, the WAL sequence number, recovery
/// report, and read-only state are included so operators (and the
/// crash harness) can see exactly where the durable log stands.
pub fn render_health(
    epoch: u64,
    queue_depth: usize,
    durability: Option<&DurabilityStatus>,
) -> String {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("epoch", Json::Uint(epoch)),
        ("queue_depth", Json::Uint(queue_depth as u64)),
        ("wal", Json::Bool(durability.is_some())),
    ];
    if let Some(d) = durability {
        fields.push(("wal_seq", Json::Uint(d.last_seq)));
        fields.push(("read_only", Json::Bool(d.read_only.is_some())));
        if let Some(reason) = &d.read_only {
            fields.push(("read_only_reason", Json::Str(reason.clone())));
        }
        fields.push((
            "recovery",
            Json::obj(vec![
                ("checkpoint_seq", Json::Uint(d.recovery.checkpoint_seq)),
                ("replayed", Json::Uint(d.recovery.replayed)),
                ("torn_truncated", Json::Uint(d.recovery.torn_truncated)),
            ]),
        ));
    } else {
        fields.push(("read_only", Json::Bool(false)));
    }
    Json::obj(fields).render()
}

/// Renders a client-visible error.
pub fn render_error(message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
    .render()
}

/// Renders a [`SkyupError`] as a client-visible error.
pub fn render_skyup_error(err: &SkyupError) -> String {
    render_error(&err.to_string())
}

/// Renders the shutdown acknowledgement.
pub fn render_shutdown_ack() -> String {
    Json::obj(vec![("ok", Json::Bool(true))]).render()
}
