//! The batch execution path: one admission window's requests answered
//! together against one pinned snapshot.
//!
//! [`execute_batch`] is the batched counterpart of
//! [`crate::execute_query`] — same validation, same budget accounting,
//! same response shape, bit-identical answers — but the product union of
//! the whole batch is evaluated through
//! [`skyup_core::run_probe_batch`]: one shared skyline view, columnar
//! dominance kernels, work stealing across `threads` workers, and a
//! cross-request dominator memo.
//!
//! # How per-request semantics survive batching
//!
//! * **Assembly** (timed as [`Phase::BatchAssemble`]) walks each
//!   request's products in index order and charges
//!   [`ExecGuard::visit_node`] per product — exactly the sequential
//!   path's cache-independent accounting, so a `max_products` budget
//!   sheds at the same index batched or not. Cache lookups for the whole
//!   window happen under one shared-lock acquisition, so every request
//!   in the batch sees the same published epoch.
//! * **Execution** honors each request's remaining limits through
//!   per-worker guard forks; a deadline or cancellation cuts only the
//!   owning request's items.
//! * **Merge** truncates each request at its first cut index (see
//!   [`BatchOutput::first_cut`]): the reported `evaluated` prefix is
//!   fully computed and each retained answer is bit-identical to what
//!   [`crate::execute_query`] produces for the same `(product, epoch,
//!   cost)` — both paths filter the same id-sorted skyline and run the
//!   same Algorithm 1 — so clients cannot tell *how* their answer was
//!   scheduled, only that it arrived sooner.
//!
//! Every computed answer (even one past a cut, already paid for) is
//! offered to the result cache under the same epoch gate as the
//! sequential path, so a batch warms the cache for its successors.

use crate::cache::CacheKey;
use crate::engine::Engine;
use crate::server::{validate_request, ProductAnswer, QueryRequest, QueryResponse};
use crate::snapshot::Answer;
use skyup_core::{run_probe_batch, BatchItem, SkyupError, UpgradeConfig};
use skyup_obs::{
    clocked, timed, Completion, Counter, ExecutionLimits, Interrupt, Phase, QueryMetrics, Recorder,
};

/// Per-request telemetry attribution from one batch execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchRequestStats {
    /// Products of this request answered from the result cache.
    pub cache_hits: u64,
    /// Products of this request that missed the cache and entered the
    /// shared work list.
    pub cache_misses: u64,
    /// This request's items answered via the cross-request dominator
    /// memo instead of a full skyline scan.
    pub memo_hits: u64,
}

/// Batch-level telemetry from one [`execute_batch_stats`] run.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Attribution per input request, parallel to the request slice
    /// (invalid requests keep zeroed stats).
    pub per_request: Vec<BatchRequestStats>,
    /// Wall-clock spent assembling the batch (budget charges + cache
    /// lookups), shared by every request in the window.
    pub assemble_nanos: u64,
    /// Wall-clock spent in [`run_probe_batch`], shared by every request
    /// in the window.
    pub exec_nanos: u64,
    /// Dominance-kernel blocks actually scanned while executing the
    /// batch (the whole window shares one kernel, so this is batch-wide,
    /// not per request).
    pub kernel_blocks_scanned: u64,
    /// Dominance-kernel blocks the per-block zone maps skipped without
    /// scanning. `kernel_blocks_scanned + kernel_blocks_skipped` equals
    /// the total blocks every full scan covered.
    pub kernel_blocks_skipped: u64,
}

/// Executes a window of queries as one batch against one pinned
/// snapshot, returning one result per request in input order. Public so
/// the bench harness and the property suite can drive the exact code
/// path the dispatcher runs.
///
/// Requests are validated individually: an invalid request gets its own
/// `Err` slot and the rest of the batch still executes.
pub fn execute_batch(
    engine: &Engine,
    reqs: &[QueryRequest],
    threads: usize,
) -> Vec<Result<QueryResponse, SkyupError>> {
    execute_batch_stats(engine, reqs, threads).0
}

/// [`execute_batch`] plus the per-request telemetry attribution the
/// dispatcher turns into traces. The answers are byte-for-byte the
/// same; the stats are derived from accounting the batch already does.
pub fn execute_batch_stats(
    engine: &Engine,
    reqs: &[QueryRequest],
    threads: usize,
) -> (Vec<Result<QueryResponse, SkyupError>>, BatchStats) {
    let dims = engine.dims();
    let mut stats = BatchStats {
        per_request: vec![BatchRequestStats::default(); reqs.len()],
        ..BatchStats::default()
    };
    let mut results: Vec<Option<Result<QueryResponse, SkyupError>>> =
        reqs.iter().map(|_| None).collect();
    // Dense index of the requests that passed validation.
    let mut valid: Vec<usize> = Vec::with_capacity(reqs.len());
    for (slot, req) in reqs.iter().enumerate() {
        match validate_request(req, dims) {
            Ok(()) => valid.push(slot),
            Err(e) => results[slot] = Some(Err(e)),
        }
    }
    if valid.is_empty() {
        return (results.into_iter().map(|r| r.unwrap()).collect(), stats);
    }

    let snap = engine.snapshot();
    let cfg = UpgradeConfig::default();
    let mut rec = QueryMetrics::new();
    rec.bump(Counter::BatchesExecuted);
    rec.incr(Counter::BatchedRequests, valid.len() as u64);

    // Per valid request: its materialized cost function, started guard,
    // assembly outcome, and cache hits.
    let mut cost_fns = Vec::with_capacity(valid.len());
    let mut guards = Vec::with_capacity(valid.len());
    // Products charged (and therefore assembled) before the request's
    // budget fired during assembly, per valid request.
    let mut assembled: Vec<usize> = Vec::with_capacity(valid.len());
    // `(product index, answer)` pairs served from the cache.
    let mut hits: Vec<Vec<(usize, Answer)>> = Vec::with_capacity(valid.len());
    // The flattened misses, request-major and index-ascending — the
    // claim order `run_probe_batch` relies on for prefix-exact cuts.
    let mut items: Vec<BatchItem<'_>> = Vec::new();

    timed(&mut rec, Phase::BatchAssemble, |rec| {
        for &slot in &valid {
            let req = &reqs[slot];
            cost_fns.push(req.cost.cost_fn(dims));
            let mut limits = ExecutionLimits::default();
            if let Some(n) = req.max_products {
                limits = limits.with_max_node_visits(n);
            }
            if let Some(d) = req.deadline {
                limits = limits.with_deadline(d);
            }
            guards.push(limits.start());
        }
        engine.with_cache(|cache, current_epoch| {
            let cache_live = current_epoch == snap.epoch();
            for (dense, &slot) in valid.iter().enumerate() {
                let req = &reqs[slot];
                let tag = req.cost.tag();
                let mut my_hits: Vec<(usize, Answer)> = Vec::new();
                let mut charged = 0usize;
                for (index, t) in req.products.iter().enumerate() {
                    // One unit per product, hit or miss — identical to
                    // the sequential path's accounting.
                    if guards[dense].visit_node().is_err() {
                        break;
                    }
                    charged = index + 1;
                    let cached = cache_live
                        .then(|| cache.get(&CacheKey::new(t, tag)).cloned())
                        .flatten();
                    match cached {
                        Some(a) => {
                            rec.bump(Counter::CacheHit);
                            stats.per_request[slot].cache_hits += 1;
                            my_hits.push((index, a));
                        }
                        None => {
                            rec.bump(Counter::CacheMiss);
                            stats.per_request[slot].cache_misses += 1;
                            items.push(BatchItem {
                                request: dense as u32,
                                index: index as u32,
                                coords: t,
                            });
                        }
                    }
                }
                assembled.push(charged);
                hits.push(my_hits);
            }
        });
    });

    stats.assemble_nanos = rec.phase_nanos(Phase::BatchAssemble);

    let (exec_nanos, ran) = clocked(|| {
        run_probe_batch(
            snap.store(),
            snap.skyline(),
            &items,
            &cost_fns,
            &guards,
            &cfg,
            threads,
            &mut rec,
        )
    });
    stats.exec_nanos = exec_nanos;
    stats.kernel_blocks_scanned = rec.get(Counter::KernelBlockScans);
    stats.kernel_blocks_skipped = rec.get(Counter::KernelBlocksSkipped);
    let out = match ran {
        Ok(out) => out,
        Err(SkyupError::WorkerPanicked { worker, message }) => {
            engine.absorb_metrics(&rec);
            for &slot in &valid {
                results[slot] = Some(Err(SkyupError::WorkerPanicked {
                    worker,
                    message: message.clone(),
                }));
            }
            return (results.into_iter().map(|r| r.unwrap()).collect(), stats);
        }
        Err(e) => {
            engine.absorb_metrics(&rec);
            for &slot in &valid {
                results[slot] = Some(Err(match &e {
                    SkyupError::InvalidInput(m) => SkyupError::InvalidInput(m.clone()),
                    other => SkyupError::InvalidInput(format!("batch execution failed: {other}")),
                }));
            }
            return (results.into_iter().map(|r| r.unwrap()).collect(), stats);
        }
    };

    // Per-request memo attribution, straight off the items each worker
    // answered.
    for (item, outcome) in items.iter().zip(&out.outcomes) {
        if let Some(a) = outcome {
            if a.memo_hit {
                stats.per_request[valid[item.request as usize]].memo_hits += 1;
            }
        }
    }

    // Merge: per request, truncate at the first execution-time cut so
    // the reported prefix is complete, then apply the sequential path's
    // (cost, index) sort and top-k truncation.
    for (dense, &slot) in valid.iter().enumerate() {
        let req = &reqs[slot];
        let first_cut = out.first_cut(&items, dense as u32);
        let evaluated = match first_cut {
            Some(i) => (i as usize).min(assembled[dense]),
            None => assembled[dense],
        };
        let mut answers: Vec<ProductAnswer> = Vec::new();
        for (index, a) in &hits[dense] {
            if *index < evaluated {
                answers.push(ProductAnswer {
                    index: *index,
                    cost: a.cost,
                    upgraded: a.upgraded.clone(),
                });
            }
        }
        for (item, outcome) in items.iter().zip(&out.outcomes) {
            if item.request as usize != dense {
                continue;
            }
            if let Some(a) = outcome {
                if (item.index as usize) < evaluated {
                    answers.push(ProductAnswer {
                        index: item.index as usize,
                        cost: a.cost,
                        upgraded: a.upgraded.clone(),
                    });
                }
            }
        }
        answers.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.index.cmp(&b.index)));
        answers.truncate(req.k);
        rec.incr(Counter::ResultsEmitted, answers.len() as u64);
        let completion = if evaluated == req.products.len() {
            Completion::Exact
        } else {
            rec.bump(Counter::LimitInterrupts);
            // A short prefix implies the guard tripped (assembly charge
            // or execution checkpoint); the sticky reason is the first
            // one that fired.
            Completion::Partial(guards[dense].interrupted().unwrap_or(Interrupt::Overloaded))
        };
        results[slot] = Some(Ok(QueryResponse {
            epoch: snap.epoch(),
            completion,
            evaluated,
            results: answers,
        }));
    }

    // The cache learns every computed answer — including ones past a
    // cut (already paid for, and pure functions of the epoch).
    let fills = items
        .iter()
        .zip(&out.outcomes)
        .filter_map(|(item, outcome)| {
            outcome.as_ref().map(|a| {
                let req = &reqs[valid[item.request as usize]];
                let key = CacheKey::new(item.coords, req.cost.tag());
                let used = a.dominators.iter().map(|&pid| snap.cid(pid)).collect();
                (
                    key,
                    item.coords,
                    Answer {
                        cost: a.cost,
                        upgraded: a.upgraded.clone(),
                        used,
                    },
                )
            })
        });
    engine.fill_cache(fills, snap.epoch());
    engine.absorb_metrics(&rec);
    (results.into_iter().map(|r| r.unwrap()).collect(), stats)
}
