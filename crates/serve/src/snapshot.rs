//! Immutable epoch snapshots: the unit of publication between the
//! single writer and the query workers.
//!
//! A snapshot freezes everything a query needs — the competitor point
//! store, the R-tree over its live points, and the precomputed skyline
//! of the live set — so workers answer requests with zero coordination
//! beyond one `Arc` clone. The store is append-only and may contain
//! tombstoned rows; the tree and the skyline cover live rows only.
//!
//! Per-product answering is tree-free: the skyline of a product's
//! dominators is a linear filter of the live-set skyline
//! ([`skyup_core::dominators_from_skyline`]), which is what makes the
//! precomputed skyline worth carrying in every epoch.

use crate::CompetitorId;
use skyup_core::cost::CostFunction;
use skyup_core::{dominators_from_skyline, upgrade_single, UpgradeConfig};
use skyup_geom::{PointId, PointStore};
use skyup_obs::Recorder;
use skyup_rtree::RTree;

/// One fully evaluated per-product answer, expressed without
/// [`PointId`]s so it stays valid across index rebuilds (which compact
/// the store and renumber points, but never change competitor ids).
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// Minimal upgrade cost (0.0 when already competitive).
    pub cost: f64,
    /// The upgraded coordinates achieving that cost.
    pub upgraded: Vec<f64>,
    /// Competitor ids of the product's dominator skyline — exactly the
    /// points the answer depends on, which is what delete invalidation
    /// keys off.
    pub used: Vec<CompetitorId>,
}

/// An immutable view of the competitor set at one epoch.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub(crate) epoch: u64,
    pub(crate) store: PointStore,
    pub(crate) tree: RTree,
    /// Skyline of the live rows, sorted by [`PointId`] so every code
    /// path that consumes it sees one canonical order.
    pub(crate) skyline: Vec<PointId>,
    pub(crate) cid_of: Vec<CompetitorId>,
    pub(crate) live_count: usize,
}

impl Snapshot {
    /// The epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The competitor store (live and tombstoned rows).
    pub fn store(&self) -> &PointStore {
        &self.store
    }

    /// The R-tree over the live competitors.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The id-sorted skyline of the live competitor set.
    pub fn skyline(&self) -> &[PointId] {
        &self.skyline
    }

    /// Number of live competitors.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Dimensionality of the competitor space.
    pub fn dims(&self) -> usize {
        self.store.dims()
    }

    /// The stable competitor id of a store row.
    pub fn cid(&self, pid: PointId) -> CompetitorId {
        self.cid_of[pid.index()]
    }

    /// Computes product `t`'s answer against this snapshot: filter the
    /// live-set skyline down to `t`'s dominators, run Algorithm 1, and
    /// report the dominator set as competitor ids.
    pub fn answer<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
        &self,
        t: &[f64],
        cost_fn: &C,
        cfg: &UpgradeConfig,
        rec: &mut R,
    ) -> Answer {
        let dominators = dominators_from_skyline(&self.store, &self.skyline, t, rec);
        let (cost, upgraded) = upgrade_single(&self.store, &dominators, t, cost_fn, cfg);
        let used = dominators.iter().map(|&pid| self.cid(pid)).collect();
        Answer {
            cost,
            upgraded,
            used,
        }
    }
}
