//! The request front-end: a fixed worker pool draining a bounded queue,
//! with per-request deadlines and budgets mapped onto
//! [`ExecutionLimits`] and overload shed as a first-class answer.
//!
//! Shedding never blocks and never errors: a request that cannot be
//! queued (queue full) or that arrived already dead (zero deadline)
//! comes back immediately as an empty
//! [`Completion::Partial`]([`Interrupt::Overloaded`]) response, so a
//! client under overload degrades exactly like a client whose budget
//! fired mid-query — one code path for both.
//!
//! Budget accounting is deliberately cache-independent: one node-visit
//! unit is charged per product *processed*, hit or miss, so a budgeted
//! query sheds at the same product index whether the cache is cold or
//! warm. That determinism is what lets the property suite compare
//! partial answers bit-for-bit against a cacheless oracle.

use crate::cache::CostTag;
use crate::engine::{Engine, EngineStats, Mutation, MutationOutcome};
use crate::telemetry::Telemetry;
use crate::CompetitorId;
use skyup_core::cost::{AttributeCost, LinearCost, SumCost};
use skyup_core::{SkyupError, UpgradeConfig};
use skyup_obs::{
    clocked, Completion, Counter, ExecutionLimits, Interrupt, QueryMetrics, Recorder, Trace,
    TraceClass, TraceId,
};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The cost function a request asks for, mirroring the CLI's
/// `--cost reciprocal:<eps> | linear:<slope>` vocabulary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostSpec {
    /// `SumCost::reciprocal(dims, eps)`.
    Reciprocal(f64),
    /// Linear per-attribute cost with this slope.
    Linear(f64),
}

impl Default for CostSpec {
    fn default() -> Self {
        CostSpec::Reciprocal(1e-3)
    }
}

impl CostSpec {
    /// The cache tag identifying this cost function.
    pub fn tag(self) -> CostTag {
        match self {
            CostSpec::Reciprocal(eps) => CostTag::Reciprocal(eps.to_bits()),
            CostSpec::Linear(slope) => CostTag::Linear(slope.to_bits()),
        }
    }

    /// Materializes the cost function for `dims` dimensions, matching
    /// the CLI's construction so served answers and offline runs agree.
    pub fn cost_fn(self, dims: usize) -> SumCost {
        match self {
            CostSpec::Reciprocal(eps) => SumCost::reciprocal(dims, eps),
            CostSpec::Linear(slope) => SumCost::new(
                (0..dims)
                    .map(|_| {
                        Box::new(LinearCost::new(1000.0 * slope, slope)) as Box<dyn AttributeCost>
                    })
                    .collect(),
            ),
        }
    }
}

/// A top-k upgrade query over a batch of products.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The products to evaluate, in request order.
    pub products: Vec<Vec<f64>>,
    /// How many cheapest upgrades to return.
    pub k: usize,
    /// Cost function.
    pub cost: CostSpec,
    /// Budget: at most this many products are processed.
    pub max_products: Option<u64>,
    /// Budget: wall-clock deadline for the evaluation loop.
    pub deadline: Option<Duration>,
}

/// One returned upgrade.
#[derive(Clone, Debug, PartialEq)]
pub struct ProductAnswer {
    /// Index of the product in [`QueryRequest::products`].
    pub index: usize,
    /// Minimal upgrade cost.
    pub cost: f64,
    /// The upgraded coordinates.
    pub upgraded: Vec<f64>,
}

/// The answer to a [`QueryRequest`], consistent with one epoch.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The epoch every result in this response was computed against.
    pub epoch: u64,
    /// Exact, or partial with the interrupt that fired.
    pub completion: Completion,
    /// Products fully processed before any interrupt.
    pub evaluated: usize,
    /// The top-k upgrades over the processed prefix, sorted by
    /// `(cost, index)`.
    pub results: Vec<ProductAnswer>,
}

/// Front-end sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing queries. With batching on, this is the
    /// shard-execution width inside each batch instead of the number of
    /// independent pool workers.
    pub threads: usize,
    /// Bounded queue capacity; a full queue sheds.
    pub queue_cap: usize,
    /// Admission window for the batch dispatcher, in microseconds.
    /// `0` (the default) disables batching entirely: requests run on
    /// the classic per-request worker pool. Non-zero, a single
    /// dispatcher thread waits up to this long after the first queued
    /// request for companions, then executes the window as one batch
    /// ([`crate::execute_batch`]).
    pub batch_window_us: u64,
    /// Most requests admitted into one batch (batching mode only).
    pub max_batch: usize,
    /// Slow-query threshold in milliseconds: completed traces at or
    /// over it enter the slow-query log. `0` disables the latency
    /// threshold (shed and partial traces are always kept).
    pub slow_ms: u64,
    /// Flight-recorder depth: how many completed traces the
    /// `{"op":"trace"}` ring (and the slow log) keeps.
    pub trace_buffer: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 2,
            queue_cap: 64,
            batch_window_us: 0,
            max_batch: 32,
            slow_ms: 100,
            trace_buffer: 256,
        }
    }
}

struct Job {
    req: QueryRequest,
    reply: mpsc::Sender<Result<QueryResponse, SkyupError>>,
    /// Trace id minted at ingress.
    id: TraceId,
    /// Ingress instant: queue wait and total latency are measured from
    /// here.
    ingress: Instant,
}

/// Records a completed trace and bumps the engine-wide trace counters.
/// Telemetry is strictly off the result path: callers invoke this after
/// the reply content is determined (and before sending it, so a client
/// that observes its own response also observes its trace).
fn finish_trace(tel: &Telemetry, engine: &Engine, trace: Trace) {
    let slow = tel.record(trace);
    engine.bump(Counter::TracesRecorded);
    if slow {
        engine.bump(Counter::SlowQueries);
    }
}

/// A trace for an unqueued admin operation (mutation or stats read):
/// no queue wait, the whole latency is execution.
fn admin_trace(id: TraceId, class: TraceClass, epoch: u64, nanos: u64) -> Trace {
    Trace {
        id,
        class,
        epoch,
        completion: Completion::Exact,
        shed: false,
        products: 0,
        evaluated: 0,
        cache_hits: 0,
        cache_misses: 0,
        memo_hits: 0,
        dominance_tests: 0,
        queue_nanos: 0,
        assemble_nanos: 0,
        exec_nanos: nanos,
        total_nanos: nanos,
    }
}

/// Request class of an executed (non-shed) query: everything answered
/// from the cache is `QueryCached`; anything that computed at least one
/// product is `QueryCold` or `QueryBatched` by scheduling path.
fn classify(cache_misses: u64, batched: bool) -> TraceClass {
    match (cache_misses, batched) {
        (0, _) => TraceClass::QueryCached,
        (_, true) => TraceClass::QueryBatched,
        (_, false) => TraceClass::QueryCold,
    }
}

enum TicketState {
    /// Queued; the answer arrives on this channel.
    Pending(mpsc::Receiver<Result<QueryResponse, SkyupError>>),
    /// Shed at submission; the (empty, `Partial(Overloaded)`) response
    /// is already known.
    Resolved(QueryResponse),
}

/// A pending answer from [`ServeHandle::query_async`].
pub struct QueryTicket {
    state: TicketState,
}

impl QueryTicket {
    fn resolved(resp: QueryResponse) -> QueryTicket {
        QueryTicket {
            state: TicketState::Resolved(resp),
        }
    }

    /// Blocks until the answer is available.
    pub fn wait(self) -> Result<QueryResponse, SkyupError> {
        match self.state {
            TicketState::Resolved(resp) => Ok(resp),
            TicketState::Pending(rx) => rx
                .recv()
                .map_err(|_| SkyupError::InvalidInput("worker pool dropped the request".into()))?,
        }
    }
}

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
    cap: usize,
}

/// Handle to a running server: submit queries, apply mutations, read
/// stats, shut down. Cheap to clone; all clones share the engine and
/// the worker pool.
#[derive(Clone)]
pub struct ServeHandle {
    engine: Arc<Engine>,
    queue: Arc<Queue>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    telemetry: Arc<Telemetry>,
}

impl ServeHandle {
    /// Starts the worker pool (or, with `batch_window_us > 0`, the
    /// batch dispatcher) over `engine`.
    pub fn start(engine: Arc<Engine>, cfg: ServeConfig) -> ServeHandle {
        let threads = cfg.threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cfg.queue_cap.max(1),
        });
        let telemetry = Arc::new(Telemetry::new(cfg.slow_ms, cfg.trace_buffer));
        let mut workers = Vec::new();
        if cfg.batch_window_us > 0 {
            // One dispatcher drains admission windows and executes each
            // as a batch with `threads` shard workers.
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let tel = Arc::clone(&telemetry);
            let window = Duration::from_micros(cfg.batch_window_us);
            let max_batch = cfg.max_batch.max(1);
            workers.push(std::thread::spawn(move || loop {
                let mut batch: Vec<Job> = Vec::new();
                {
                    let mut guard = queue.jobs.lock().unwrap();
                    // Wait for the window's first request (drain-then-exit
                    // on shutdown, like the classic pool).
                    loop {
                        if let Some(job) = guard.0.pop_front() {
                            batch.push(job);
                            break;
                        }
                        if guard.1 {
                            return;
                        }
                        guard = queue.ready.wait(guard).unwrap();
                    }
                    // Greedily drain whatever queued while the previous
                    // batch executed — under load, that backlog IS the
                    // batch, with no added latency. The admission window
                    // only delays a *lone* request, giving companions
                    // one chance to arrive before it executes solo.
                    let deadline = std::time::Instant::now() + window;
                    while batch.len() < max_batch {
                        if let Some(job) = guard.0.pop_front() {
                            batch.push(job);
                            continue;
                        }
                        if batch.len() > 1 || guard.1 {
                            break;
                        }
                        let now = std::time::Instant::now();
                        let Some(left) = deadline.checked_duration_since(now) else {
                            break;
                        };
                        if left.is_zero() {
                            break;
                        }
                        let (g, timeout) = queue.ready.wait_timeout(guard, left).unwrap();
                        guard = g;
                        if timeout.timed_out() && guard.0.is_empty() {
                            break;
                        }
                    }
                }
                // Queue wait ends for every member when the dispatcher
                // picks the window up.
                let queue_nanos: Vec<u64> = batch
                    .iter()
                    .map(|j| j.ingress.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                    .collect();
                let (reqs, rest): (Vec<QueryRequest>, Vec<_>) = batch
                    .into_iter()
                    .map(|j| (j.req, (j.reply, j.id, j.ingress)))
                    .unzip();
                let (results, stats) = crate::batch::execute_batch_stats(&engine, &reqs, threads);
                for (i, ((reply, id, ingress), res)) in rest.into_iter().zip(results).enumerate() {
                    if let Ok(resp) = &res {
                        let per = &stats.per_request[i];
                        // Assembly and kernel time are batch-level and
                        // therefore shared across the window's traces;
                        // queue wait and total latency are per-request.
                        finish_trace(
                            &tel,
                            &engine,
                            Trace {
                                id,
                                class: classify(per.cache_misses, true),
                                epoch: resp.epoch,
                                completion: resp.completion,
                                shed: false,
                                products: reqs[i].products.len() as u64,
                                evaluated: resp.evaluated as u64,
                                cache_hits: per.cache_hits,
                                cache_misses: per.cache_misses,
                                memo_hits: per.memo_hits,
                                // The shared columnar kernel does not
                                // attribute dominance tests per request.
                                dominance_tests: 0,
                                queue_nanos: queue_nanos[i],
                                assemble_nanos: stats.assemble_nanos,
                                exec_nanos: stats.exec_nanos,
                                total_nanos: ingress.elapsed().as_nanos().min(u64::MAX as u128)
                                    as u64,
                            },
                        );
                    }
                    // A dropped receiver (client gave up) is not an error.
                    let _ = reply.send(res);
                }
            }));
        } else {
            workers.reserve(threads);
            for _ in 0..threads {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                let tel = Arc::clone(&telemetry);
                workers.push(std::thread::spawn(move || loop {
                    let job = {
                        let mut guard = queue.jobs.lock().unwrap();
                        loop {
                            if let Some(job) = guard.0.pop_front() {
                                break job;
                            }
                            if guard.1 {
                                return;
                            }
                            guard = queue.ready.wait(guard).unwrap();
                        }
                    };
                    let queue_nanos = job.ingress.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    let mut rec = QueryMetrics::new();
                    let (exec_nanos, res) =
                        clocked(|| execute_query_with(&engine, &job.req, &mut rec));
                    if let Ok(resp) = &res {
                        finish_trace(
                            &tel,
                            &engine,
                            Trace {
                                id: job.id,
                                class: classify(rec.get(Counter::CacheMiss), false),
                                epoch: resp.epoch,
                                completion: resp.completion,
                                shed: false,
                                products: job.req.products.len() as u64,
                                evaluated: resp.evaluated as u64,
                                cache_hits: rec.get(Counter::CacheHit),
                                cache_misses: rec.get(Counter::CacheMiss),
                                memo_hits: rec.get(Counter::DominatorMemoHits),
                                dominance_tests: rec.get(Counter::DominanceTests),
                                queue_nanos,
                                assemble_nanos: 0,
                                exec_nanos,
                                total_nanos: job.ingress.elapsed().as_nanos().min(u64::MAX as u128)
                                    as u64,
                            },
                        );
                    }
                    // A dropped receiver (client gave up) is not an error.
                    let _ = job.reply.send(res);
                }));
            }
        }
        ServeHandle {
            engine,
            queue,
            workers: Arc::new(Mutex::new(workers)),
            telemetry,
        }
    }

    /// The engine behind this handle.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Submits a query to the worker pool and waits for its answer.
    /// Overload (full queue, zero deadline on arrival, or a shutdown in
    /// progress) sheds: an empty `Partial(Overloaded)` response.
    pub fn query(&self, req: QueryRequest) -> Result<QueryResponse, SkyupError> {
        self.query_async(req)?.wait()
    }

    /// Submits a query without waiting: the returned [`QueryTicket`]
    /// resolves to the answer later. This is what lets a client keep
    /// many requests in flight — the feed pattern the batch dispatcher's
    /// admission window exists to coalesce. Shed decisions (zero
    /// deadline, full queue, shutdown) are still taken synchronously at
    /// submission.
    pub fn query_async(&self, req: QueryRequest) -> Result<QueryTicket, SkyupError> {
        validate_request(&req, self.engine.dims())?;
        let id = self.telemetry.mint();
        let ingress = Instant::now();
        if req.deadline == Some(Duration::ZERO) {
            return Ok(QueryTicket::resolved(self.shed(&req, id, ingress)));
        }
        let (reply, rx) = mpsc::channel();
        {
            let mut guard = self.queue.jobs.lock().unwrap();
            if guard.1 || guard.0.len() >= self.queue.cap {
                drop(guard);
                return Ok(QueryTicket::resolved(self.shed(&req, id, ingress)));
            }
            guard.0.push_back(Job {
                req,
                reply,
                id,
                ingress,
            });
        }
        self.queue.ready.notify_one();
        Ok(QueryTicket {
            state: TicketState::Pending(rx),
        })
    }

    fn shed(&self, req: &QueryRequest, id: TraceId, ingress: Instant) -> QueryResponse {
        self.engine.bump(Counter::RequestsShed);
        let epoch = self.engine.snapshot().epoch();
        // Shed requests leave timing evidence too: the ingress-to-shed
        // interval is their queue wait (and total latency), so the
        // `requests_shed` counter is attributable trace by trace.
        let waited = ingress.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        finish_trace(
            &self.telemetry,
            &self.engine,
            Trace {
                id,
                class: TraceClass::QueryShed,
                epoch,
                completion: Completion::Partial(Interrupt::Overloaded),
                shed: true,
                products: req.products.len() as u64,
                evaluated: 0,
                cache_hits: 0,
                cache_misses: 0,
                memo_hits: 0,
                dominance_tests: 0,
                queue_nanos: waited,
                assemble_nanos: 0,
                exec_nanos: 0,
                total_nanos: waited,
            },
        );
        QueryResponse {
            epoch,
            completion: Completion::Partial(Interrupt::Overloaded),
            evaluated: 0,
            results: Vec::new(),
        }
    }

    /// Adds a competitor; returns its stable id and the new epoch.
    pub fn add_competitor(&self, coords: Vec<f64>) -> Result<MutationOutcome, SkyupError> {
        self.traced_mutation(Mutation::AddCompetitor(coords))
    }

    /// Removes a competitor by id.
    pub fn remove_competitor(&self, cid: CompetitorId) -> Result<MutationOutcome, SkyupError> {
        self.traced_mutation(Mutation::RemoveCompetitor(cid))
    }

    /// Applies a pre-routed mutation — the shard flip path, where the
    /// coordinator has already assigned the competitor id. Traced like
    /// [`ServeHandle::add_competitor`] / [`ServeHandle::remove_competitor`].
    pub fn apply_mutation(&self, m: Mutation) -> Result<MutationOutcome, SkyupError> {
        self.traced_mutation(m)
    }

    fn traced_mutation(&self, m: Mutation) -> Result<MutationOutcome, SkyupError> {
        let id = self.telemetry.mint();
        let (nanos, out) = clocked(|| self.engine.apply(m));
        if let Ok(o) = &out {
            finish_trace(
                &self.telemetry,
                &self.engine,
                admin_trace(id, TraceClass::Mutation, o.epoch, nanos),
            );
        }
        out
    }

    /// Engine stats plus the serving counters.
    pub fn stats(&self) -> (EngineStats, QueryMetrics) {
        let id = self.telemetry.mint();
        let (nanos, out) = clocked(|| (self.engine.stats(), self.engine.metrics()));
        // Recorded after the metrics snapshot: a stats reply's counters
        // never include the trace of the read that produced them.
        finish_trace(
            &self.telemetry,
            &self.engine,
            admin_trace(id, TraceClass::Stats, out.0.epoch, nanos),
        );
        out
    }

    /// The telemetry store behind this handle (histograms, flight
    /// recorder, slow log).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Requests currently waiting in the bounded queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.jobs.lock().unwrap().0.len()
    }

    /// The currently published epoch (untraced; health verb).
    pub fn epoch(&self) -> u64 {
        self.engine.snapshot().epoch
    }

    /// Durability state for the health verb; `None` without `--wal`.
    pub fn durability(&self) -> Option<crate::engine::DurabilityStatus> {
        self.engine.durability()
    }

    /// Stops the workers after the queue drains and joins them, then
    /// forces buffered WAL records durable so a *clean* shutdown loses
    /// nothing even under `--fsync interval`/`never`.
    /// Idempotent; later queries shed.
    pub fn shutdown(&self) {
        {
            let mut guard = self.queue.jobs.lock().unwrap();
            guard.1 = true;
        }
        self.queue.ready.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        let _ = self.engine.flush_wal();
    }
}

pub(crate) fn validate_request(req: &QueryRequest, dims: usize) -> Result<(), SkyupError> {
    if req.k == 0 {
        return Err(SkyupError::InvalidConfig("k must be at least 1".into()));
    }
    if req.products.is_empty() {
        return Err(SkyupError::InvalidInput("no products to evaluate".into()));
    }
    for (i, t) in req.products.iter().enumerate() {
        if t.len() != dims {
            return Err(SkyupError::InvalidInput(format!(
                "product {i} has {} coordinates, expected {dims}",
                t.len()
            )));
        }
        if t.iter().any(|v| !v.is_finite()) {
            return Err(SkyupError::InvalidInput(format!(
                "product {i} has a non-finite coordinate"
            )));
        }
    }
    match req.cost {
        CostSpec::Reciprocal(eps) if !(eps.is_finite() && eps > 0.0) => Err(
            SkyupError::InvalidConfig("reciprocal cost needs a positive epsilon".into()),
        ),
        CostSpec::Linear(slope) if !(slope.is_finite() && slope > 0.0) => Err(
            SkyupError::InvalidConfig("linear cost needs a positive slope".into()),
        ),
        _ => Ok(()),
    }
}

/// Evaluates a query against one pinned snapshot. Public so the bench
/// harness and the property suite can bypass the pool and drive the
/// exact code path the workers run.
pub fn execute_query(engine: &Engine, req: &QueryRequest) -> Result<QueryResponse, SkyupError> {
    let mut rec = QueryMetrics::new();
    execute_query_with(engine, req, &mut rec)
}

/// [`execute_query`] recording into a caller-owned [`QueryMetrics`], so
/// the worker can read this request's counters (cache hits/misses,
/// dominance tests) for its trace after the answer is determined. The
/// metrics are still absorbed into the engine-wide tally here, exactly
/// as before.
pub(crate) fn execute_query_with(
    engine: &Engine,
    req: &QueryRequest,
    rec: &mut QueryMetrics,
) -> Result<QueryResponse, SkyupError> {
    validate_request(req, engine.dims())?;
    let snap = engine.snapshot();
    let cost_fn = req.cost.cost_fn(snap.dims());
    let tag = req.cost.tag();
    let cfg = UpgradeConfig::default();

    let mut limits = ExecutionLimits::default();
    if let Some(n) = req.max_products {
        limits = limits.with_max_node_visits(n);
    }
    if let Some(d) = req.deadline {
        limits = limits.with_deadline(d);
    }
    let mut guard = limits.start();

    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;
    let mut answers: Vec<ProductAnswer> = Vec::new();
    for (index, t) in req.products.iter().enumerate() {
        // One unit per product, hit or miss — see the module docs.
        if let Err(i) = guard.visit_node() {
            completion = Completion::Partial(i);
            break;
        }
        let answer = engine.answer_product(&snap, t, &cost_fn, tag, &cfg, rec);
        evaluated += 1;
        answers.push(ProductAnswer {
            index,
            cost: answer.cost,
            upgraded: answer.upgraded,
        });
    }
    answers.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.index.cmp(&b.index)));
    answers.truncate(req.k);
    rec.incr(Counter::ResultsEmitted, answers.len() as u64);
    if !completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    engine.absorb_metrics(rec);
    Ok(QueryResponse {
        epoch: snap.epoch(),
        completion,
        evaluated,
        results: answers,
    })
}
