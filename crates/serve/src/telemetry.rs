//! The serve-side telemetry store: per-class latency histograms, the
//! flight recorder, and the slow-query log.
//!
//! Everything here is *off the result path*. The serving code measures
//! with the [`Instant`]s it already takes for scheduling, assembles a
//! [`Trace`] after the reply is determined, and hands it to
//! [`Telemetry::record`] — which touches one histogram mutex, one
//! wait-free ring slot, and (for slow traces) a second ring slot.
//! Nothing on this path can change an answer, and a poisoned or
//! contended telemetry structure can delay a reply by at most the cost
//! of those bounded critical sections.
//!
//! Latencies land in one [`WindowedHistogram`] per [`TraceClass`]
//! (cached / cold / batched / shed queries, mutations, stats reads).
//! The rolling window rotates on a fixed wall-clock cadence
//! ([`WINDOW`]), checked under the histogram lock each record — no
//! timer thread.
//!
//! [`Instant`]: std::time::Instant

use skyup_obs::json::Json;
use skyup_obs::{FlightRecorder, Trace, TraceClass, TraceId, WindowedHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Rolling-window rotation cadence. The rolling percentile view always
/// covers one to two of these intervals.
pub const WINDOW: Duration = Duration::from_secs(10);

struct Hists {
    by_class: [WindowedHistogram; TraceClass::COUNT],
    last_roll: Instant,
}

/// The per-server telemetry store. One per [`crate::ServeHandle`]
/// lifetime, shared by every worker through an `Arc`.
pub struct Telemetry {
    /// Slow-query latency threshold in milliseconds; `0` disables the
    /// threshold (shed and partial traces still enter the slow log).
    slow_ms: u64,
    hists: Mutex<Hists>,
    recorder: FlightRecorder,
    slow: FlightRecorder,
    next_id: AtomicU64,
}

impl Telemetry {
    /// A store with a `trace_buffer`-deep flight recorder (and a slow
    /// log of the same depth).
    pub fn new(slow_ms: u64, trace_buffer: usize) -> Telemetry {
        Telemetry {
            slow_ms,
            hists: Mutex::new(Hists {
                by_class: std::array::from_fn(|_| WindowedHistogram::new()),
                last_roll: Instant::now(),
            }),
            recorder: FlightRecorder::new(trace_buffer),
            slow: FlightRecorder::new(trace_buffer),
            next_id: AtomicU64::new(0),
        }
    }

    /// Mints the next ingress trace id.
    pub fn mint(&self) -> TraceId {
        TraceId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether this trace belongs in the slow-query log: over the
    /// latency threshold, shed, or partial.
    fn is_slow(&self, trace: &Trace) -> bool {
        trace.shed
            || !trace.completion.is_exact()
            || (self.slow_ms > 0 && trace.total_nanos >= self.slow_ms.saturating_mul(1_000_000))
    }

    /// Records a completed trace: latency into its class histogram
    /// (rolling the window on cadence), the trace into the flight
    /// recorder, and — when slow — into the slow log. Returns whether
    /// the trace was slow.
    pub fn record(&self, trace: Trace) -> bool {
        {
            let mut h = self.hists.lock().unwrap();
            if h.last_roll.elapsed() >= WINDOW {
                for w in h.by_class.iter_mut() {
                    w.roll();
                }
                h.last_roll = Instant::now();
            }
            h.by_class[trace.class.index()].record(trace.total_nanos);
        }
        let slow = self.is_slow(&trace);
        if slow {
            self.slow.record(trace.clone());
        }
        self.recorder.record(trace);
        slow
    }

    /// Total traces recorded since start.
    pub fn recorded(&self) -> u64 {
        self.recorder.recorded()
    }

    /// Total traces that entered the slow log since start.
    pub fn slow_recorded(&self) -> u64 {
        self.slow.recorded()
    }

    /// The `{"op":"metrics"}` response body: per-class cumulative and
    /// rolling histograms (exact bucket counts and p50/p95/p99/max),
    /// recorder totals, and the current queue depth.
    pub fn metrics_json(&self, queue_depth: usize) -> Json {
        let h = self.hists.lock().unwrap();
        let classes = Json::Obj(
            TraceClass::ALL
                .iter()
                .map(|&c| (c.name().to_string(), h.by_class[c.index()].to_json()))
                .collect(),
        );
        drop(h);
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("queue_depth", Json::Uint(queue_depth as u64)),
            ("traces_recorded", Json::Uint(self.recorded())),
            ("slow_recorded", Json::Uint(self.slow_recorded())),
            ("slow_ms", Json::Uint(self.slow_ms)),
            ("trace_buffer", Json::Uint(self.recorder.capacity() as u64)),
            ("classes", classes),
        ])
    }

    /// The `{"op":"trace","n":K}` response body: the last `n` traces
    /// (newest first) plus the slow log's last `n`.
    pub fn traces_json(&self, n: usize) -> Json {
        let traces: Vec<Json> = self.recorder.dump(n).iter().map(Trace::to_json).collect();
        let slow: Vec<Json> = self.slow.dump(n).iter().map(Trace::to_json).collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("count", Json::Uint(traces.len() as u64)),
            ("traces", Json::Arr(traces)),
            ("slow", Json::Arr(slow)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_obs::Completion;

    fn trace(tel: &Telemetry, class: TraceClass, total_nanos: u64, shed: bool) -> Trace {
        Trace {
            id: tel.mint(),
            class,
            epoch: 0,
            completion: Completion::Exact,
            shed,
            products: 1,
            evaluated: 1,
            cache_hits: 0,
            cache_misses: 1,
            memo_hits: 0,
            dominance_tests: 0,
            queue_nanos: 0,
            assemble_nanos: 0,
            exec_nanos: total_nanos,
            total_nanos,
        }
    }

    #[test]
    fn slow_log_catches_threshold_shed_and_partial() {
        let tel = Telemetry::new(5, 16); // 5 ms threshold
        assert!(!tel.record(trace(&tel, TraceClass::QueryCold, 1_000_000, false)));
        assert!(tel.record(trace(&tel, TraceClass::QueryCold, 6_000_000, false)));
        assert!(tel.record(trace(&tel, TraceClass::QueryShed, 1_000, true)));
        let mut partial = trace(&tel, TraceClass::QueryCold, 1_000, false);
        partial.completion = Completion::Partial(skyup_obs::Interrupt::DeadlineExceeded);
        assert!(tel.record(partial));
        assert_eq!(tel.recorded(), 4);
        assert_eq!(tel.slow_recorded(), 3);
    }

    #[test]
    fn zero_threshold_disables_latency_slowness() {
        let tel = Telemetry::new(0, 16);
        assert!(!tel.record(trace(&tel, TraceClass::QueryCold, u64::MAX / 2, false)));
        assert!(tel.record(trace(&tel, TraceClass::QueryShed, 1, true)));
    }

    #[test]
    fn metrics_json_buckets_conserve_counts_per_class() {
        let tel = Telemetry::new(100, 16);
        for i in 0..10 {
            tel.record(trace(&tel, TraceClass::QueryCached, 100 + i, false));
        }
        for i in 0..7 {
            tel.record(trace(&tel, TraceClass::QueryBatched, 10_000 + i, false));
        }
        let j = tel.metrics_json(3);
        assert_eq!(j.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("traces_recorded").and_then(Json::as_u64), Some(17));
        let classes = j.get("classes").unwrap();
        for (name, want) in [("query_cached", 10u64), ("query_batched", 7)] {
            let cum = classes.get(name).unwrap().get("cumulative").unwrap();
            assert_eq!(cum.get("count").and_then(Json::as_u64), Some(want));
            let total: u64 = match cum.get("buckets").unwrap() {
                Json::Arr(bs) => bs
                    .iter()
                    .map(|b| b.get("count").and_then(Json::as_u64).unwrap())
                    .sum(),
                _ => panic!("buckets must be an array"),
            };
            assert_eq!(total, want, "{name}: bucket conservation");
        }
    }

    #[test]
    fn trace_dump_is_newest_first_and_parseable() {
        let tel = Telemetry::new(100, 4);
        for i in 0..6 {
            tel.record(trace(&tel, TraceClass::QueryCold, 1000 + i, false));
        }
        let j = tel.traces_json(10);
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(4));
        let parsed = skyup_obs::json::parse(&j.render()).unwrap();
        let Some(Json::Arr(traces)) = parsed.get("traces") else {
            panic!("traces must be an array");
        };
        let ids: Vec<u64> = traces
            .iter()
            .map(|t| t.get("id").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(ids, vec![5, 4, 3, 2]);
    }
}
