//! `skyup-serve`: a long-lived query service over the upgrading
//! algorithms.
//!
//! The paper evaluates one-shot top-k upgrade queries against a static
//! competitor set; this crate is the online counterpart the ROADMAP's
//! production north-star asks for. Three pieces, each its own module:
//!
//! * [`engine`] — the epoch-based engine: a single writer applies
//!   competitor mutations ([`Mutation`]) to a working copy and
//!   atomically publishes immutable [`Snapshot`]s (store + R-tree +
//!   precomputed live-set skyline) that query workers read lock-free
//!   after one `Arc` clone. A degradation heuristic triggers periodic
//!   STR rebuilds with store compaction; stable competitor ids survive
//!   the renumbering.
//! * [`cache`] — the dominance-aware result cache: completed
//!   per-product answers invalidated *selectively* on mutation (ADR
//!   test for inserts, used-dominator test for deletes) instead of
//!   flushed per epoch.
//! * [`server`] / [`net`] / [`proto`] — the front-end: a fixed worker
//!   pool draining a bounded queue, per-request deadlines and budgets
//!   mapped onto [`skyup_obs::ExecutionLimits`], overload shed as
//!   `Completion::Partial(Interrupt::Overloaded)`, exposed in-process
//!   ([`ServeHandle`]) and as newline-delimited JSON over TCP.
//! * [`telemetry`] — request observability, off the result path:
//!   per-request traces ([`skyup_obs::Trace`]) with queue/assembly/
//!   execution phase breakdowns, per-class log-scale latency
//!   histograms, a fixed-size flight recorder of the last N traces,
//!   and an always-kept slow-query log — served by the `metrics` and
//!   `trace` protocol verbs.
//! * [`wal`] — crash-safe durability: an append-only, checksummed
//!   write-ahead log of mutations appended *before* each epoch is
//!   published, periodic atomic checkpoints bounding replay, and
//!   torn-tail-tolerant recovery ([`Engine::recover`]).
//!
//! Everything is std-only, like the rest of the workspace.

pub mod batch;
pub mod cache;
pub mod engine;
pub mod net;
pub mod proto;
pub mod server;
pub mod snapshot;
pub mod telemetry;
pub mod wal;

/// Stable identity of a competitor across its lifetime: assigned at
/// insertion, never reused, and unaffected by index rebuilds (unlike
/// [`skyup_geom::PointId`], which is a store row index and shifts when
/// compaction drops tombstones).
pub type CompetitorId = u64;

pub use batch::{execute_batch, execute_batch_stats, BatchRequestStats, BatchStats};
pub use cache::{CacheKey, CostTag, ResultCache};
pub use engine::{DurabilityStatus, Engine, EngineConfig, EngineStats, Mutation, MutationOutcome};
pub use net::{bind_local, handle_lines, serve, MAX_LINE_BYTES};
pub use server::{
    execute_query, CostSpec, ProductAnswer, QueryRequest, QueryResponse, QueryTicket, ServeConfig,
    ServeHandle,
};
pub use snapshot::{Answer, Snapshot};
pub use telemetry::Telemetry;
pub use wal::{FsyncPolicy, RecoveryReport, WalConfig};
