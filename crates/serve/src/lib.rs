//! `skyup-serve`: a long-lived query service over the upgrading
//! algorithms.
//!
//! The paper evaluates one-shot top-k upgrade queries against a static
//! competitor set; this crate is the online counterpart the ROADMAP's
//! production north-star asks for. Three pieces, each its own module:
//!
//! * [`engine`] — the epoch-based engine: a single writer applies
//!   competitor mutations ([`Mutation`]) to a working copy and
//!   atomically publishes immutable [`Snapshot`]s (store + R-tree +
//!   precomputed live-set skyline) that query workers read lock-free
//!   after one `Arc` clone. A degradation heuristic triggers periodic
//!   STR rebuilds with store compaction; stable competitor ids survive
//!   the renumbering.
//! * [`cache`] — the dominance-aware result cache: completed
//!   per-product answers invalidated *selectively* on mutation (ADR
//!   test for inserts, used-dominator test for deletes) instead of
//!   flushed per epoch.
//! * [`server`] / [`net`] / [`proto`] — the front-end: a fixed worker
//!   pool draining a bounded queue, per-request deadlines and budgets
//!   mapped onto [`skyup_obs::ExecutionLimits`], overload shed as
//!   `Completion::Partial(Interrupt::Overloaded)`, exposed in-process
//!   ([`ServeHandle`]) and as newline-delimited JSON over TCP.
//! * [`telemetry`] — request observability, off the result path:
//!   per-request traces ([`skyup_obs::Trace`]) with queue/assembly/
//!   execution phase breakdowns, per-class log-scale latency
//!   histograms, a fixed-size flight recorder of the last N traces,
//!   and an always-kept slow-query log — served by the `metrics` and
//!   `trace` protocol verbs.
//! * [`wal`] — crash-safe durability: an append-only, checksummed
//!   write-ahead log of mutations appended *before* each epoch is
//!   published, periodic atomic checkpoints bounding replay, and
//!   torn-tail-tolerant recovery ([`Engine::recover`]).
//! * [`shard`] / [`coordinator`] — horizontal scale-out: the
//!   competitor set partitioned across N shard processes (each a full
//!   epoch engine under globally assigned ids), a scatter/gather
//!   coordinator that merges per-shard dominator skylines with a
//!   dominance filter and runs the upgrade join on the merged set, and
//!   a two-phase epoch publish (`stage` on every shard, collect acks,
//!   `flip`) that keeps gathered answers bit-identical to a
//!   single-engine oracle at every epoch.
//!
//! Everything is std-only, like the rest of the workspace.

pub mod batch;
pub mod cache;
pub mod coordinator;
pub mod engine;
pub mod net;
pub mod proto;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod telemetry;
pub mod wal;

/// Stable identity of a competitor across its lifetime: assigned at
/// insertion, never reused, and unaffected by index rebuilds (unlike
/// [`skyup_geom::PointId`], which is a store row index and shifts when
/// compaction drops tombstones).
pub type CompetitorId = u64;

pub use batch::{execute_batch, execute_batch_stats, BatchRequestStats, BatchStats};
pub use cache::{CacheKey, CostTag, ResultCache};
pub use coordinator::{Coordinator, CoordinatorDispatch, LocalLink, ShardLink, TcpLink};
pub use engine::{DurabilityStatus, Engine, EngineConfig, EngineStats, Mutation, MutationOutcome};
pub use net::{bind_local, handle_lines, serve, Client, ClientPool, Dispatch, MAX_LINE_BYTES};
pub use server::{
    execute_query, CostSpec, ProductAnswer, QueryRequest, QueryResponse, QueryTicket, ServeConfig,
    ServeHandle,
};
pub use shard::{
    FlipAck, Partition, ProbeRequest, ProbeResponse, ShardDispatch, ShardState, StagedOp,
};
pub use snapshot::{Answer, Snapshot};
pub use telemetry::Telemetry;
pub use wal::{FsyncPolicy, RecoveryReport, WalConfig};
