//! The dominance-aware result cache.
//!
//! Completed per-product answers are memoized under `(t, cost-fn)` and
//! survive competitor mutations *selectively* instead of being flushed
//! wholesale on every epoch swap:
//!
//! * **Insert of competitor `p`** — a cached answer for product `t`
//!   depends only on the skyline of `t`'s dominators, so it can change
//!   only if `p` dominates `t`, i.e. `p ∈ ADR(t)`. The eviction test is
//!   [`skyup_geom::point_in_adr`]`(p, t)`, which also covers the
//!   boundary case `p == t` — conservative (may evict a still-valid
//!   entry when `p` merely ties `t` on every dimension) but never keeps
//!   a stale one.
//! * **Delete of competitor `c`** — the answer changes only if `c` was
//!   in the entry's dominator skyline, recorded verbatim in
//!   [`Answer::used`]. This test is exact: removing a competitor the
//!   answer never looked at leaves the dominator skyline untouched
//!   (a point dominated by the removed one stays dominated by whichever
//!   skyline member covered it).
//!
//! Keys hash the product's coordinate *bits*, so two requests must
//! agree to the last ulp to share an entry — the right call for a
//! bit-identity serving contract.
//!
//! Epoch discipline: the cache belongs to the engine's shared state and
//! is mutated under the same lock that swaps the snapshot. A worker
//! that computed an answer against epoch `E` may insert it only while
//! the published epoch is still `E` ([`ResultCache::insert_if_current`]);
//! anything later is dropped, because the worker cannot know whether
//! the intervening mutations affected its product.

use crate::snapshot::Answer;
use crate::CompetitorId;
use skyup_geom::point_in_adr;
use std::collections::HashMap;

/// Identifies the cost function a cached answer was computed under.
/// Carries the parameter as raw bits so the key is `Eq + Hash`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostTag {
    /// `SumCost::reciprocal(dims, eps)` with these `eps` bits.
    Reciprocal(u64),
    /// The CLI's linear cost with these slope bits.
    Linear(u64),
}

/// Cache key: the product's exact coordinate bits plus the cost tag.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    t_bits: Vec<u64>,
    cost: CostTag,
}

impl CacheKey {
    /// Builds the key for product coordinates `t` under `cost`.
    pub fn new(t: &[f64], cost: CostTag) -> Self {
        CacheKey {
            t_bits: t.iter().map(|v| v.to_bits()).collect(),
            cost,
        }
    }
}

struct Entry {
    /// The product's coordinates, kept plainly for the ADR test.
    t: Vec<f64>,
    answer: Answer,
}

/// The dominance-aware result cache. Not internally synchronized: the
/// engine guards it with the shared-state lock.
pub struct ResultCache {
    entries: HashMap<CacheKey, Entry>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` answers; once full,
    /// new answers are simply not admitted (mutation evictions free
    /// space over time).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a completed answer.
    pub fn get(&self, key: &CacheKey) -> Option<&Answer> {
        self.entries.get(key).map(|e| &e.answer)
    }

    /// Admits an answer computed against epoch `computed_at`, provided
    /// the published epoch is still `current`. Returns whether the
    /// answer was admitted.
    pub fn insert_if_current(
        &mut self,
        key: CacheKey,
        t: &[f64],
        answer: Answer,
        computed_at: u64,
        current: u64,
    ) -> bool {
        if computed_at != current {
            return false;
        }
        // Overwriting an existing key does not grow the map, so the
        // capacity gate only applies to new keys.
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(
            key,
            Entry {
                t: t.to_vec(),
                answer,
            },
        );
        true
    }

    /// Insert-invalidation: evicts every entry whose product the new
    /// competitor `p` could dominate. Returns the eviction count.
    pub fn evict_dominated_by(&mut self, p: &[f64]) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, e| !point_in_adr(p, &e.t));
        (before - self.entries.len()) as u64
    }

    /// Delete-invalidation: evicts every entry whose dominator skyline
    /// used competitor `cid`. Returns the eviction count.
    pub fn evict_using(&mut self, cid: CompetitorId) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.answer.used.contains(&cid));
        (before - self.entries.len()) as u64
    }

    /// Drops everything (index rebuilds don't need this — compaction
    /// renumbers points, not competitor ids — but warm-start replacement
    /// does).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(used: &[CompetitorId]) -> Answer {
        Answer {
            cost: 1.0,
            upgraded: vec![0.5, 0.5],
            used: used.to_vec(),
        }
    }

    fn put(cache: &mut ResultCache, t: &[f64], used: &[CompetitorId]) {
        let key = CacheKey::new(t, CostTag::Reciprocal(0));
        assert!(cache.insert_if_current(key, t, answer(used), 3, 3));
    }

    #[test]
    fn stale_epoch_insert_dropped() {
        let mut c = ResultCache::new(16);
        let key = CacheKey::new(&[1.0, 1.0], CostTag::Reciprocal(0));
        assert!(!c.insert_if_current(key, &[1.0, 1.0], answer(&[]), 2, 3));
        assert!(c.is_empty());
    }

    #[test]
    fn insert_evicts_only_dominated_products() {
        let mut c = ResultCache::new(16);
        put(&mut c, &[0.9, 0.9], &[1]);
        put(&mut c, &[0.2, 0.9], &[2]);
        put(&mut c, &[0.9, 0.2], &[3]);
        // New competitor dominates only the first product.
        assert_eq!(c.evict_dominated_by(&[0.5, 0.5]), 1);
        assert_eq!(c.len(), 2);
        assert!(c
            .get(&CacheKey::new(&[0.9, 0.9], CostTag::Reciprocal(0)))
            .is_none());
    }

    #[test]
    fn delete_evicts_only_entries_using_the_cid() {
        let mut c = ResultCache::new(16);
        put(&mut c, &[0.9, 0.9], &[1, 2]);
        put(&mut c, &[0.8, 0.8], &[2]);
        put(&mut c, &[0.7, 0.7], &[3]);
        assert_eq!(c.evict_using(2), 2);
        assert_eq!(c.len(), 1);
        assert!(c
            .get(&CacheKey::new(&[0.7, 0.7], CostTag::Reciprocal(0)))
            .is_some());
    }

    #[test]
    fn capacity_caps_admission() {
        let mut c = ResultCache::new(1);
        put(&mut c, &[0.9, 0.9], &[1]);
        let key = CacheKey::new(&[0.8, 0.8], CostTag::Reciprocal(0));
        assert!(!c.insert_if_current(key, &[0.8, 0.8], answer(&[]), 3, 3));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_cache_still_overwrites_existing_key() {
        let mut c = ResultCache::new(1);
        put(&mut c, &[0.9, 0.9], &[1]);
        let key = CacheKey::new(&[0.9, 0.9], CostTag::Reciprocal(0));
        assert!(c.insert_if_current(key.clone(), &[0.9, 0.9], answer(&[2]), 3, 3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key).unwrap().used, vec![2]);
    }
}
