//! Crash-safe durability: the write-ahead log and its checkpoints.
//!
//! With `--wal <dir>` the engine appends every accepted mutation to an
//! append-only binary log *before* the epoch is published or the ack is
//! sent, so a `kill -9` at any point loses nothing that was
//! acknowledged (under `--fsync always`; weaker policies trade the tail
//! for throughput — see DESIGN.md §16). The directory holds two files:
//!
//! * `wal.log` — length-prefixed, CRC-checksummed mutation records with
//!   monotonic sequence numbers and the epoch each record published:
//!
//!   ```text
//!   record: payload_len u32 | crc32(payload) u32 | payload
//!   payload: seq u64 | epoch u64 | kind u8
//!          | kind 0 (add):    count u32 | coord f64 * count
//!          | kind 1 (remove): cid u64
//!   ```
//!
//! * `checkpoint.snap` — an atomic (temp + fsync + rename + dir-fsync)
//!   snapshot of the live competitor set plus the id state the plain
//!   store snapshot cannot carry, written every `--checkpoint-every N`
//!   appends so replay time stays bounded:
//!
//!   ```text
//!   magic "SKUPCKPT" | version u32 | seq u64 | epoch u64
//!   | next_cid u64 | ncids u64 | cid u64 * ncids
//!   | snap_len u64 | snapshot bytes (SKUPSNAP container)
//!   | fnv1a u64 (over everything before it)
//!   ```
//!
//! Recovery loads the checkpoint and replays every record with a newer
//! sequence number. A *torn tail* — an incomplete or checksum-failed
//! record that touches end-of-file, exactly what a crash mid-append
//! leaves — is truncated away, never an error; a checksum failure with
//! valid data after it is mid-log corruption and aborts recovery with a
//! structured error, because silently dropping acknowledged history is
//! worse than refusing to start.

use crate::engine::Mutation;
use crate::CompetitorId;
use skyup_core::SkyupError;
use skyup_geom::persist::Reader;
use skyup_geom::PointStore;
use skyup_obs::IoFaultPlan;
use skyup_rtree::persist::{fnv1a, snapshot_from_bytes, snapshot_to_bytes, write_atomic};
use skyup_rtree::RTree;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Largest accepted record payload. Real records are tiny (a mutation
/// over a handful of f64s); the cap turns a corrupted length field into
/// a detectable decode failure instead of a giant allocation.
const MAX_PAYLOAD: u32 = 1 << 20;
/// Smallest possible payload: seq + epoch + kind.
const MIN_PAYLOAD: u32 = 8 + 8 + 1;
/// Bytes of `payload_len u32 | crc32 u32` before each payload.
const HEADER: usize = 8;

const CKPT_MAGIC: &[u8; 8] = b"SKUPCKPT";
const CKPT_VERSION: u32 = 1;

/// When the engine forces the WAL file to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: an acked mutation survives `kill -9`.
    Always,
    /// Sync every Nth append: a crash can lose up to N-1 acked
    /// mutations, but never reorders or corrupts what survives.
    Interval(u64),
    /// Never sync explicitly: the OS flushes on its own schedule. A
    /// process crash (as opposed to a host crash) still loses nothing,
    /// because the records sit in the page cache.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag: `always`, `never`, or `interval:N`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => {
                let n = s
                    .strip_prefix("interval:")
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("bad fsync policy {s:?} (expected always, never, or interval:N)")
                    })?;
                Ok(FsyncPolicy::Interval(n))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(n) => write!(f, "interval:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Durability configuration carried into the engine.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Directory holding `wal.log` and `checkpoint.snap`.
    pub dir: PathBuf,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint (and truncate the log) every N appends; 0 disables
    /// periodic checkpoints (the initial one is still written).
    pub checkpoint_every: u64,
    /// Injected I/O failures for chaos tests.
    pub faults: IoFaultPlan,
}

impl WalConfig {
    /// Durability under `dir` with the production defaults: fsync on
    /// every append, checkpoint every 1024.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 1024,
            faults: IoFaultPlan::new(),
        }
    }
}

/// What recovery did, surfaced through the `health` verb and asserted
/// by the crash harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number the loaded checkpoint covered.
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Torn tails truncated (0 or 1 per recovery).
    pub torn_truncated: u64,
}

/// One decoded log record.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct WalRecord {
    pub seq: u64,
    pub epoch: u64,
    pub mutation: Mutation,
}

/// Why the log or checkpoint was rejected.
#[derive(Debug)]
pub(crate) enum WalError {
    Io(std::io::Error),
    Corrupt { offset: usize, why: &'static str },
}

impl WalError {
    pub(crate) fn into_skyup(self, what: &str) -> SkyupError {
        match self {
            WalError::Io(e) => SkyupError::InvalidInput(format!("{what}: {e}")),
            WalError::Corrupt { offset, why } => SkyupError::InvalidInput(format!(
                "{what}: mid-log corruption at byte {offset}: {why}"
            )),
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), bitwise — records are a
/// few dozen bytes, so a lookup table would be noise.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one record (header + payload) ready to append.
pub(crate) fn encode_record(seq: u64, epoch: u64, m: &Mutation) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&epoch.to_le_bytes());
    match m {
        Mutation::AddCompetitor(coords) => {
            payload.push(0);
            payload.extend_from_slice(&(coords.len() as u32).to_le_bytes());
            for c in coords {
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
        Mutation::RemoveCompetitor(cid) => {
            payload.push(1);
            payload.extend_from_slice(&cid.to_le_bytes());
        }
        Mutation::AddCompetitorWithCid(cid, coords) => {
            payload.push(2);
            payload.extend_from_slice(&cid.to_le_bytes());
            payload.extend_from_slice(&(coords.len() as u32).to_le_bytes());
            for c in coords {
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(offset: usize, payload: &[u8]) -> Result<WalRecord, WalError> {
    let corrupt = |why| WalError::Corrupt { offset, why };
    let mut r = Reader::new(payload);
    let seq = r.u64().map_err(|_| corrupt("payload too short"))?;
    let epoch = r.u64().map_err(|_| corrupt("payload too short"))?;
    let kind = r.bytes(1).map_err(|_| corrupt("payload too short"))?[0];
    let mutation = match kind {
        0 => {
            let count = r.u32().map_err(|_| corrupt("add record too short"))? as usize;
            let mut coords = Vec::with_capacity(count);
            for _ in 0..count {
                coords.push(r.f64().map_err(|_| corrupt("add record too short"))?);
            }
            Mutation::AddCompetitor(coords)
        }
        1 => {
            let cid = r.u64().map_err(|_| corrupt("remove record too short"))?;
            Mutation::RemoveCompetitor(cid)
        }
        2 => {
            let cid = r.u64().map_err(|_| corrupt("add record too short"))?;
            let count = r.u32().map_err(|_| corrupt("add record too short"))? as usize;
            let mut coords = Vec::with_capacity(count);
            for _ in 0..count {
                coords.push(r.f64().map_err(|_| corrupt("add record too short"))?);
            }
            Mutation::AddCompetitorWithCid(cid, coords)
        }
        _ => return Err(corrupt("unknown record kind")),
    };
    r.finish()
        .map_err(|_| corrupt("trailing bytes in payload"))?;
    Ok(WalRecord {
        seq,
        epoch,
        mutation,
    })
}

/// Decodes a log image into records plus the byte length of the valid
/// prefix. A failure that touches end-of-file is a torn tail: decoding
/// stops there and `valid_len < buf.len()` tells the caller to truncate
/// the file. A failure strictly inside the log is an error.
pub(crate) fn decode_log(buf: &[u8]) -> Result<(Vec<WalRecord>, usize), WalError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut prev_seq: Option<u64> = None;
    while offset < buf.len() {
        let rest = &buf[offset..];
        if rest.len() < HEADER {
            return Ok((records, offset)); // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let end = offset
            .checked_add(HEADER)
            .and_then(|v| v.checked_add(len as usize));
        match end {
            Some(end) if end <= buf.len() => {
                if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
                    return Err(WalError::Corrupt {
                        offset,
                        why: "record length out of range",
                    });
                }
                let payload = &rest[HEADER..HEADER + len as usize];
                if crc32(payload) != crc {
                    if end == buf.len() {
                        return Ok((records, offset)); // torn final record
                    }
                    return Err(WalError::Corrupt {
                        offset,
                        why: "record checksum mismatch",
                    });
                }
                let rec = decode_payload(offset, payload)?;
                if let Some(prev) = prev_seq {
                    if rec.seq != prev + 1 {
                        return Err(WalError::Corrupt {
                            offset,
                            why: "sequence number not contiguous",
                        });
                    }
                }
                prev_seq = Some(rec.seq);
                records.push(rec);
                offset = end;
            }
            // The declared payload extends past end-of-file: a crash
            // mid-append (or a garbage length at the true tail).
            _ => return Ok((records, offset)),
        }
    }
    Ok((records, offset))
}

/// The durable base state recovery starts from.
pub(crate) struct Checkpoint {
    pub seq: u64,
    pub epoch: u64,
    pub next_cid: CompetitorId,
    pub cid_of: Vec<CompetitorId>,
    pub store: PointStore,
    pub tree: RTree,
}

/// Encodes the checkpoint container around an existing snapshot image.
pub(crate) fn encode_checkpoint(
    seq: u64,
    epoch: u64,
    next_cid: CompetitorId,
    cid_of: &[CompetitorId],
    store: &PointStore,
    tree: &RTree,
) -> Vec<u8> {
    let snap = snapshot_to_bytes(store, tree);
    let mut out = Vec::with_capacity(8 + 4 + 8 * 4 + 8 * cid_of.len() + snap.len() + 8);
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&next_cid.to_le_bytes());
    out.extend_from_slice(&(cid_of.len() as u64).to_le_bytes());
    for cid in cid_of {
        out.extend_from_slice(&cid.to_le_bytes());
    }
    out.extend_from_slice(&(snap.len() as u64).to_le_bytes());
    out.extend_from_slice(&snap);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

pub(crate) fn decode_checkpoint(buf: &[u8]) -> Result<Checkpoint, WalError> {
    let corrupt = |why| WalError::Corrupt { offset: 0, why };
    if buf.len() < 8 + 4 + 8 {
        return Err(corrupt("checkpoint truncated"));
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    if &body[..8] != CKPT_MAGIC {
        return Err(corrupt("checkpoint magic mismatch"));
    }
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(corrupt("checkpoint checksum mismatch"));
    }
    let mut r = Reader::new(body);
    r.bytes(8).map_err(|_| corrupt("checkpoint truncated"))?;
    let version = r.u32().map_err(|_| corrupt("checkpoint truncated"))?;
    if version != CKPT_VERSION {
        return Err(corrupt("unsupported checkpoint version"));
    }
    let seq = r.u64().map_err(|_| corrupt("checkpoint truncated"))?;
    let epoch = r.u64().map_err(|_| corrupt("checkpoint truncated"))?;
    let next_cid = r.u64().map_err(|_| corrupt("checkpoint truncated"))?;
    let ncids = r.u64().map_err(|_| corrupt("checkpoint truncated"))? as usize;
    let mut cid_of = Vec::with_capacity(ncids.min(1 << 20));
    for _ in 0..ncids {
        cid_of.push(r.u64().map_err(|_| corrupt("checkpoint truncated"))?);
    }
    let snap_len = r.u64().map_err(|_| corrupt("checkpoint truncated"))? as usize;
    let snap = r
        .bytes(snap_len)
        .map_err(|_| corrupt("checkpoint truncated"))?;
    r.finish()
        .map_err(|_| corrupt("trailing checkpoint bytes"))?;
    let (store, tree) =
        snapshot_from_bytes(snap).map_err(|_| corrupt("checkpoint snapshot rejected"))?;
    if cid_of.len() != store.len() {
        return Err(corrupt("checkpoint cid table does not match store"));
    }
    Ok(Checkpoint {
        seq,
        epoch,
        next_cid,
        cid_of,
        store,
        tree,
    })
}

/// The open log: owned by the engine, locked after the writer lock.
pub(crate) struct Wal {
    file: File,
    cfg: WalConfig,
    /// Sequence number the next append will carry.
    next_seq: u64,
    /// Appends since the last fsync (interval policy bookkeeping).
    unsynced: u64,
    /// Appends since the last checkpoint.
    pub since_checkpoint: u64,
    /// 1-based operation counts consulted against the fault plan.
    writes: u64,
    syncs: u64,
    /// Set once a durability I/O failure has been observed; every later
    /// mutation is rejected with [`SkyupError::ReadOnly`].
    pub read_only: Option<String>,
}

pub(crate) fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

pub(crate) fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.snap")
}

/// Whether `dir` already holds durable state to recover from.
pub fn has_state(dir: &Path) -> bool {
    checkpoint_path(dir).exists()
        || wal_path(dir)
            .metadata()
            .map(|m| m.len() > 0)
            .unwrap_or(false)
}

impl Wal {
    /// Opens the log for appending, truncating `valid_len` (the prefix
    /// `decode_log` accepted) if a torn tail is on disk.
    pub(crate) fn open(
        cfg: WalConfig,
        next_seq: u64,
        since_checkpoint: u64,
        valid_len: u64,
    ) -> Result<Wal, WalError> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = wal_path(&cfg.dir);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() != valid_len {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        Ok(Wal {
            file,
            cfg,
            next_seq,
            unsynced: 0,
            since_checkpoint,
            writes: 0,
            syncs: 0,
            read_only: None,
        })
    }

    /// The sequence number the last appended (or replayed) record
    /// carried; 0 before the first append.
    pub(crate) fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends one record and applies the fsync policy. Returns
    /// `(bytes_written, synced)`; any failure is returned verbatim and
    /// the caller flips the engine read-only.
    pub(crate) fn append(&mut self, epoch: u64, m: &Mutation) -> Result<(u64, bool), String> {
        let rec = encode_record(self.next_seq, epoch, m);
        self.writes += 1;
        self.cfg
            .faults
            .check_write(self.writes)
            .map_err(|e| format!("wal append failed: {e}"))?;
        self.file
            .write_all(&rec)
            .map_err(|e| format!("wal append failed: {e}"))?;
        self.next_seq += 1;
        self.unsynced += 1;
        self.since_checkpoint += 1;
        let must_sync = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if must_sync {
            self.sync().map_err(|e| format!("wal fsync failed: {e}"))?;
        }
        Ok((rec.len() as u64, must_sync))
    }

    /// Forces buffered records to stable storage (policy-independent;
    /// used on clean shutdown and by `Interval`).
    pub(crate) fn sync(&mut self) -> Result<(), String> {
        self.syncs += 1;
        self.cfg
            .faults
            .check_sync(self.syncs)
            .map_err(|e| e.to_string())?;
        self.file.sync_data().map_err(|e| e.to_string())?;
        self.unsynced = 0;
        Ok(())
    }

    /// Whether a periodic checkpoint is due.
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Atomically replaces the checkpoint and truncates the log. A
    /// crash between the two steps is benign: recovery skips records
    /// the checkpoint already covers.
    pub(crate) fn write_checkpoint(&mut self, bytes: &[u8]) -> Result<(), String> {
        write_atomic(&checkpoint_path(&self.cfg.dir), bytes)
            .map_err(|e| format!("checkpoint write failed: {e}"))?;
        self.file
            .set_len(0)
            .and_then(|_| self.file.sync_all())
            .map_err(|e| format!("wal truncation failed: {e}"))?;
        self.unsynced = 0;
        self.since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(u64, u64, Mutation)> {
        vec![
            (1, 1, Mutation::AddCompetitor(vec![0.25, 0.5])),
            (2, 2, Mutation::AddCompetitor(vec![0.75, 0.125])),
            (3, 3, Mutation::RemoveCompetitor(7)),
            (4, 4, Mutation::AddCompetitor(vec![0.1, 0.9])),
            (5, 5, Mutation::AddCompetitorWithCid(12, vec![0.3, 0.6])),
        ]
    }

    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        for (seq, epoch, m) in sample_records() {
            log.extend_from_slice(&encode_record(seq, epoch, &m));
        }
        log
    }

    #[test]
    fn roundtrip_preserves_records() {
        let (records, valid) = decode_log(&sample_log()).unwrap();
        assert_eq!(valid, sample_log().len());
        assert_eq!(records.len(), 5);
        for (rec, (seq, epoch, m)) in records.iter().zip(sample_records()) {
            assert_eq!(rec.seq, seq);
            assert_eq!(rec.epoch, epoch);
            match (&rec.mutation, &m) {
                (Mutation::AddCompetitor(a), Mutation::AddCompetitor(b)) => assert_eq!(a, b),
                (Mutation::RemoveCompetitor(a), Mutation::RemoveCompetitor(b)) => {
                    assert_eq!(a, b)
                }
                (Mutation::AddCompetitorWithCid(ac, a), Mutation::AddCompetitorWithCid(bc, b)) => {
                    assert_eq!(ac, bc);
                    assert_eq!(a, b);
                }
                _ => panic!("mutation kind drifted through the log"),
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let log = sample_log();
        // Chop mid-way through the last record: its start offset is the
        // valid prefix, and exactly 4 records survive.
        let last_start = log.len() - encode_record(5, 5, &sample_records()[4].2).len();
        let torn = &log[..log.len() - 5];
        let (records, valid) = decode_log(torn).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(valid, last_start);
    }

    #[test]
    fn crc_flip_on_final_record_is_a_torn_tail() {
        let mut log = sample_log();
        let n = log.len();
        log[n - 1] ^= 0x40; // last payload byte
        let (records, valid) = decode_log(&log).unwrap();
        assert_eq!(records.len(), 4);
        assert!(valid < n);
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let mut log = sample_log();
        log[HEADER + 2] ^= 0x01; // payload byte of the *first* record
        match decode_log(&log) {
            Err(WalError::Corrupt { offset: 0, why }) => {
                assert!(why.contains("checksum"));
            }
            other => panic!("expected mid-log corruption error, got {other:?}"),
        }
    }

    #[test]
    fn sequence_gap_is_an_error() {
        let mut log = encode_record(1, 1, &Mutation::RemoveCompetitor(1));
        log.extend_from_slice(&encode_record(3, 2, &Mutation::RemoveCompetitor(2)));
        match decode_log(&log) {
            Err(WalError::Corrupt { why, .. }) => assert!(why.contains("contiguous")),
            other => panic!("expected sequence error, got {other:?}"),
        }
    }

    #[test]
    fn fsync_policy_parses_and_rejects() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:64").unwrap(),
            FsyncPolicy::Interval(64)
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Interval(8).to_string(), "interval:8");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_id_state() {
        let store = PointStore::from_rows(2, vec![[0.1, 0.9], [0.9, 0.1]]);
        let tree = RTree::bulk_load(&store, skyup_rtree::RTreeParams::default());
        let bytes = encode_checkpoint(42, 40, 17, &[3, 11], &store, &tree);
        let ck = decode_checkpoint(&bytes).unwrap();
        assert_eq!(ck.seq, 42);
        assert_eq!(ck.epoch, 40);
        assert_eq!(ck.next_cid, 17);
        assert_eq!(ck.cid_of, vec![3, 11]);
        assert_eq!(ck.store.len(), 2);

        let mut bad = bytes.clone();
        bad[20] ^= 0xFF;
        assert!(decode_checkpoint(&bad).is_err());
        assert!(decode_checkpoint(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
