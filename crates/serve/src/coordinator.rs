//! The scatter/gather coordinator over a partitioned competitor set.
//!
//! The coordinator owns the three pieces of global state a sharded
//! topology needs — the epoch counter, the competitor-id sequence, and
//! the cid→shard ownership map — and drives N shards that each hold one
//! [`crate::shard::Partition`] slab of `P` behind a full epoch engine.
//!
//! **Queries** scatter: every shard returns, per product `t`, its local
//! dominator skyline restricted to ADR(t) under its published label.
//! The gather dominance-filters the union of those skylines (via the
//! same columnar-kernel batch path single servers use) and runs the
//! upgrade join on the merged set. This is exact, not approximate: the
//! global dominator skyline `D(t)` is a subset of the union of local
//! skylines (a point dominating `t` that is globally undominated is
//! also locally undominated), so
//! `{s ∈ skyline(∪ₖ localₖ) : s dominates t} = D(t)` — and because
//! global cids are assigned in insertion order and every store
//! preserves relative row order across compaction, sorting the union by
//! cid reproduces the oracle's row order exactly. The answer is
//! bit-identical to a single engine holding all of `P` at the same
//! epoch; the property suite enforces this byte-for-byte on rendered
//! responses.
//!
//! **Mutations** run a two-phase epoch publish: stage epoch `E` on
//! *every* shard (the owner's stage carries the op and the assigned
//! cid; the rest are pure bumps), collect all stage acks — the commit
//! point — then flip. A query cannot interleave (queries take the
//! state read-lock, publishes the write-lock), so no gathered answer
//! ever mixes labels. Failure handling, by phase:
//!
//! * **Stage fails** (shard down, timeout): the publish aborts before
//!   the commit point; nothing flipped, the coordinator's epoch is
//!   unchanged, and the staged epoch left on other shards is
//!   overwritten by the next publish of the same epoch.
//! * **Flip fails / flip-ack lost** (after all stages acked): the
//!   mutation is committed — flips are idempotent and retried here,
//!   and a shard that still missed its flip is repaired on the next
//!   query (the gather sees its stale label and re-issues the flip
//!   before answering).
//! * **Shard unreachable at query time**: the gather degrades to
//!   `Completion::Partial(Interrupt::Overloaded)` with zero evaluated
//!   products — never a wrong exact answer.

use crate::engine::{Mutation, MutationOutcome};
use crate::net::{ClientPool, Dispatch};
use crate::proto::{
    parse_flip_ack, parse_probe_response, parse_stage_ack, render_error, render_flip_request,
    render_health, render_mutation_outcome, render_probe_request, render_query_response,
    render_skyup_error, render_stage_request, Request, Topology,
};
use crate::server::{validate_request, ProductAnswer, QueryRequest, QueryResponse};
use crate::shard::{FlipAck, Partition, ProbeRequest, ProbeResponse, ShardState, StagedOp};
use crate::CompetitorId;
use skyup_core::{run_probe_batch, BatchItem, SkyupError, UpgradeConfig};
use skyup_geom::{PointId, PointStore};
use skyup_obs::json::Json;
use skyup_obs::{
    Completion, Counter, ExecutionLimits, Interrupt, QueryMetrics, Recorder, WindowedHistogram,
};
use skyup_skyline::skyline_sfs;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Flip attempts per shard before a committed publish gives up and
/// leaves the shard to repair-on-read.
const FLIP_ATTEMPTS: u32 = 3;

/// A coordinator's channel to one shard. Implemented over TCP
/// ([`TcpLink`]) for real topologies and in-process ([`LocalLink`]) for
/// the property suite and benches, where determinism and fault
/// injection matter more than sockets.
pub trait ShardLink: Send + Sync {
    /// Stages `epoch` with this shard's op slice; returns the shard's
    /// staged (or already-published) epoch.
    fn stage(&self, epoch: u64, op: Option<&StagedOp>) -> Result<u64, String>;
    /// Flips the staged `epoch`; idempotent on retries.
    fn flip(&self, epoch: u64) -> Result<FlipAck, String>;
    /// Scatter probe.
    fn probe(&self, req: &ProbeRequest) -> Result<ProbeResponse, String>;
    /// Cheap reachability check for the health report.
    fn reachable(&self) -> bool;
    /// Human-readable target (address or in-process tag).
    fn describe(&self) -> String;
}

/// An in-process link to a [`ShardState`] — the deterministic backend
/// for the property suite and the shard-axis bench.
#[derive(Clone)]
pub struct LocalLink(pub Arc<ShardState>);

impl ShardLink for LocalLink {
    fn stage(&self, epoch: u64, op: Option<&StagedOp>) -> Result<u64, String> {
        self.0.stage(epoch, op.cloned()).map_err(|e| e.to_string())
    }

    fn flip(&self, epoch: u64) -> Result<FlipAck, String> {
        self.0.flip(epoch).map_err(|e| e.to_string())
    }

    fn probe(&self, req: &ProbeRequest) -> Result<ProbeResponse, String> {
        Ok(self.0.probe(req))
    }

    fn reachable(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("local:{}", self.0.shard_id())
    }
}

/// A pooled NDJSON-over-TCP link to a shard process, speaking the
/// `stage`/`flip`/`local_probe` protocol verbs.
pub struct TcpLink {
    pool: ClientPool,
}

impl TcpLink {
    /// A link to the shard server at `addr` (connections open lazily).
    pub fn new(addr: &str) -> TcpLink {
        TcpLink {
            pool: ClientPool::new(addr),
        }
    }
}

impl ShardLink for TcpLink {
    fn stage(&self, epoch: u64, op: Option<&StagedOp>) -> Result<u64, String> {
        let line = render_stage_request(epoch, op);
        self.pool.with(|c| {
            let resp = c.request(&line)?;
            parse_stage_ack(&resp)
        })
    }

    fn flip(&self, epoch: u64) -> Result<FlipAck, String> {
        let line = render_flip_request(epoch);
        self.pool.with(|c| {
            let resp = c.request(&line)?;
            parse_flip_ack(&resp)
        })
    }

    fn probe(&self, req: &ProbeRequest) -> Result<ProbeResponse, String> {
        let line = render_probe_request(req);
        self.pool.with(|c| {
            let resp = c.request(&line)?;
            parse_probe_response(&resp)
        })
    }

    fn reachable(&self) -> bool {
        self.pool
            .with(|c| c.request("{\"op\":\"health\"}"))
            .map(|resp| resp.contains("\"ok\": true") || resp.contains("\"ok\":true"))
            .unwrap_or(false)
    }

    fn describe(&self) -> String {
        self.pool.addr().to_string()
    }
}

/// Global topology state, guarded by one RwLock: queries hold it shared
/// (so a publish can never slide between scatter and gather), publishes
/// hold it exclusively.
struct CoordState {
    /// The published global epoch.
    epoch: u64,
    /// The next competitor id to assign.
    next_cid: CompetitorId,
    /// Owning shard of every live competitor.
    owner_of: HashMap<CompetitorId, u32>,
}

/// The scatter/gather front-end over `L`-linked shards.
pub struct Coordinator<L> {
    links: Vec<L>,
    partition: Partition,
    dims: usize,
    threads: usize,
    state: RwLock<CoordState>,
    metrics: Mutex<QueryMetrics>,
    /// Per-shard probe round-trip latency (nanoseconds), for the
    /// latency-attribution view in `metrics`.
    probe_lat: Vec<Mutex<WindowedHistogram>>,
}

impl<L: ShardLink> Coordinator<L> {
    /// A coordinator over `links` (one per partition slab, in shard-id
    /// order) fronting a fresh topology seeded with `seed`: competitor
    /// ids `0..seed.len()` in row order, exactly the ids the shards
    /// were seeded with via [`Partition::shard_seed`], and epoch 0.
    pub fn new(links: Vec<L>, partition: Partition, seed: &PointStore) -> Result<Self, SkyupError> {
        if links.len() != partition.shards() as usize {
            return Err(SkyupError::InvalidConfig(format!(
                "{} shard links for a {}-shard partition",
                links.len(),
                partition.shards()
            )));
        }
        let owner_of = seed
            .ids()
            .map(|pid| {
                (
                    pid.index() as CompetitorId,
                    partition.shard_of(seed.point(pid)),
                )
            })
            .collect();
        let probe_lat = links
            .iter()
            .map(|_| Mutex::new(WindowedHistogram::new()))
            .collect();
        Ok(Coordinator {
            probe_lat,
            links,
            partition,
            dims: seed.dims(),
            threads: 1,
            state: RwLock::new(CoordState {
                epoch: 0,
                next_cid: seed.len() as CompetitorId,
                owner_of,
            }),
            metrics: Mutex::new(QueryMetrics::new()),
        })
    }

    /// Sets the thread count for the gather-side merge kernel (the
    /// merged set is usually small; 1 is the sensible default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The published global epoch.
    pub fn epoch(&self) -> u64 {
        self.state.read().unwrap().epoch
    }

    /// Product dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// The coordinator's counters accumulated so far.
    pub fn metrics(&self) -> QueryMetrics {
        self.metrics.lock().unwrap().clone()
    }

    /// Scatters `req`'s admitted products to every shard, gathers and
    /// merges the local dominator skylines, and answers bit-identically
    /// to a single engine at the same epoch. See the module docs for
    /// the exactness argument and the degradation rules.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryResponse, SkyupError> {
        validate_request(req, self.dims)?;
        let state = self.state.read().unwrap();
        let epoch = state.epoch;
        let mut rec = QueryMetrics::new();

        // Admission replay: the same guard the single-engine path runs,
        // charged one unit per product, so `max_products` budgets admit
        // bit-identical prefixes.
        let mut limits = ExecutionLimits::default();
        if let Some(n) = req.max_products {
            limits = limits.with_max_node_visits(n);
        }
        if let Some(d) = req.deadline {
            limits = limits.with_deadline(d);
        }
        let mut guard = limits.start();
        let mut completion = Completion::Exact;
        let mut admitted = 0usize;
        for _ in 0..req.products.len() {
            if let Err(i) = guard.visit_node() {
                completion = Completion::Partial(i);
                break;
            }
            admitted += 1;
        }

        if admitted == 0 {
            drop(state);
            return self.finish(epoch, completion, 0, Vec::new(), req.k, rec);
        }

        // Scatter.
        let probe_req = ProbeRequest {
            products: req.products[..admitted].to_vec(),
            deadline: req.deadline,
        };
        rec.incr(Counter::ScatterProbes, self.links.len() as u64);
        let mut gathered = self.scatter(&probe_req);

        // Gather-side label check: every shard must answer at the
        // coordinator's epoch. A stale label is a shard that missed its
        // flip (lost flip-ack) — repair it in place and probe again.
        for (k, slot) in gathered.iter_mut().enumerate() {
            let stale = matches!(&slot.1, Ok(resp) if resp.epoch != epoch);
            if stale {
                let (nanos, repaired) = {
                    let start = Instant::now();
                    let r = self.links[k]
                        .flip(epoch)
                        .and_then(|_| self.links[k].probe(&probe_req));
                    (start.elapsed().as_nanos() as u64, r)
                };
                slot.0 += nanos;
                slot.1 = match repaired {
                    Ok(resp) if resp.epoch == epoch => Ok(resp),
                    Ok(resp) => Err(format!(
                        "shard {k} answers at label {} under published epoch {epoch}",
                        resp.epoch
                    )),
                    Err(e) => Err(e),
                };
            }
        }
        for (k, (nanos, _)) in gathered.iter().enumerate() {
            self.probe_lat[k].lock().unwrap().record(*nanos);
        }

        // An unreachable or inconsistent shard degrades the whole
        // answer to an empty exact-prefix partial: we cannot prove any
        // product's dominator set complete without every shard.
        if gathered.iter().any(|(_, r)| r.is_err()) {
            drop(state);
            return self.finish(
                epoch,
                Completion::Partial(Interrupt::Overloaded),
                0,
                Vec::new(),
                req.k,
                rec,
            );
        }
        let responses: Vec<ProbeResponse> = gathered.into_iter().map(|(_, r)| r.unwrap()).collect();

        // A shard that cut its prefix (deadline) caps the evaluated
        // prefix for the merged answer; the first shard interrupt wins
        // the completion tag.
        let mut cut = admitted;
        for resp in &responses {
            if resp.evaluated < cut {
                cut = resp.evaluated;
            }
            if let (Completion::Exact, Completion::Partial(i)) = (completion, resp.completion) {
                completion = Completion::Partial(i);
            }
        }
        if cut < req.products.len() && completion.is_exact() {
            completion = Completion::Partial(Interrupt::DeadlineExceeded);
        }

        // Merge: union the per-shard dominator skylines (dedup by cid,
        // ascending — reproducing the oracle's row order), dominance-
        // filter once for the whole request, and run the upgrade join
        // through the columnar batch kernel.
        let mut union: BTreeMap<CompetitorId, &Vec<f64>> = BTreeMap::new();
        for resp in &responses {
            for per_product in resp.dominators.iter().take(cut) {
                for (cid, coords) in per_product {
                    union.entry(*cid).or_insert(coords);
                }
            }
        }
        rec.incr(Counter::GatherPoints, union.len() as u64);
        let mut store = PointStore::new(self.dims);
        for coords in union.values() {
            store.push(coords);
        }
        let all: Vec<PointId> = store.ids().collect();
        let mut merged = skyline_sfs(&store, &all);
        merged.sort_unstable();
        rec.incr(Counter::MergeDropped, (union.len() - merged.len()) as u64);

        let cost_fn = req.cost.cost_fn(self.dims);
        let items: Vec<BatchItem<'_>> = req.products[..cut]
            .iter()
            .enumerate()
            .map(|(index, t)| BatchItem {
                request: 0,
                index: index as u32,
                coords: t,
            })
            .collect();
        let merge_guard = ExecutionLimits::default().start();
        let out = run_probe_batch(
            &store,
            &merged,
            &items,
            &[cost_fn],
            &[merge_guard],
            &UpgradeConfig::default(),
            self.threads,
            &mut rec,
        )?;
        drop(state);

        let mut answers: Vec<ProductAnswer> = Vec::with_capacity(cut);
        for (item, outcome) in items.iter().zip(&out.outcomes) {
            let a = outcome.as_ref().ok_or_else(|| {
                SkyupError::InvalidInput("unbudgeted merge execution cut a product".into())
            })?;
            answers.push(ProductAnswer {
                index: item.index as usize,
                cost: a.cost,
                upgraded: a.upgraded.clone(),
            });
        }
        self.finish(epoch, completion, cut, answers, req.k, rec)
    }

    /// Probes every shard concurrently; returns per shard the probe
    /// round-trip nanos and its result.
    #[allow(clippy::type_complexity)]
    fn scatter(&self, req: &ProbeRequest) -> Vec<(u64, Result<ProbeResponse, String>)> {
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .links
                .iter()
                .map(|link| {
                    s.spawn(move || {
                        let start = Instant::now();
                        let r = link.probe(req);
                        (start.elapsed().as_nanos() as u64, r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| (0, Err("probe thread panicked".into())))
                })
                .collect()
        })
    }

    /// The shared tail of every query path: sort, truncate to `k`,
    /// account, and absorb the request's counters.
    fn finish(
        &self,
        epoch: u64,
        completion: Completion,
        evaluated: usize,
        mut answers: Vec<ProductAnswer>,
        k: usize,
        mut rec: QueryMetrics,
    ) -> Result<QueryResponse, SkyupError> {
        answers.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.index.cmp(&b.index)));
        answers.truncate(k);
        rec.incr(Counter::ResultsEmitted, answers.len() as u64);
        if !completion.is_exact() {
            rec.bump(Counter::LimitInterrupts);
        }
        self.metrics.lock().unwrap().absorb(&rec);
        Ok(QueryResponse {
            epoch,
            completion,
            evaluated,
            results: answers,
        })
    }

    /// Routes a client mutation through the two-phase publish. Returns
    /// an outcome under the *global* epoch (the per-shard engine
    /// details — rebuilt, evicted — come from the owning shard's flip).
    pub fn mutate(&self, m: Mutation) -> Result<MutationOutcome, SkyupError> {
        let mut state = self.state.write().unwrap();
        match m {
            Mutation::AddCompetitor(point) => {
                if point.len() != self.dims {
                    return Err(SkyupError::InvalidInput(format!(
                        "competitor has {} coordinates, expected {}",
                        point.len(),
                        self.dims
                    )));
                }
                if point.iter().any(|v| !v.is_finite()) {
                    return Err(SkyupError::InvalidInput(
                        "competitor coordinates must be finite".into(),
                    ));
                }
                let owner = self.partition.shard_of(&point);
                let cid = state.next_cid;
                let epoch = state.epoch + 1;
                let owner_ack = self.publish(epoch, owner, StagedOp::Add { cid, point })?;
                state.epoch = epoch;
                state.next_cid = cid + 1;
                state.owner_of.insert(cid, owner);
                Ok(MutationOutcome {
                    epoch,
                    cid: Some(cid),
                    removed: false,
                    rebuilt: owner_ack.as_ref().is_some_and(|o| o.rebuilt),
                    evicted: owner_ack.as_ref().map_or(0, |o| o.evicted),
                })
            }
            Mutation::RemoveCompetitor(cid) => {
                let Some(&owner) = state.owner_of.get(&cid) else {
                    // A no-op remove publishes nothing, exactly like a
                    // single engine: the epoch does not advance.
                    return Ok(MutationOutcome {
                        epoch: state.epoch,
                        cid: None,
                        removed: false,
                        rebuilt: false,
                        evicted: 0,
                    });
                };
                let epoch = state.epoch + 1;
                let owner_ack = self.publish(epoch, owner, StagedOp::Remove { cid })?;
                state.epoch = epoch;
                state.owner_of.remove(&cid);
                Ok(MutationOutcome {
                    epoch,
                    cid: None,
                    removed: true,
                    rebuilt: owner_ack.as_ref().is_some_and(|o| o.rebuilt),
                    evicted: owner_ack.as_ref().map_or(0, |o| o.evicted),
                })
            }
            Mutation::AddCompetitorWithCid(..) => Err(SkyupError::InvalidInput(
                "the coordinator owns the competitor id sequence; use a plain add".into(),
            )),
        }
    }

    /// The two-phase publish of `epoch`, with `op` staged on `owner`
    /// and pure bumps elsewhere. Called under the state write-lock.
    /// A stage failure aborts pre-commit (error, epoch unchanged); once
    /// every stage acked, the publish is committed and flip failures
    /// are left to repair-on-read.
    fn publish(
        &self,
        epoch: u64,
        owner: u32,
        op: StagedOp,
    ) -> Result<Option<MutationOutcome>, SkyupError> {
        for (k, link) in self.links.iter().enumerate() {
            let slice = (k as u32 == owner).then_some(&op);
            link.stage(epoch, slice).map_err(|e| {
                SkyupError::InvalidInput(format!(
                    "stage epoch {epoch} on shard {k} ({}): {e}",
                    link.describe()
                ))
            })?;
        }
        let mut rec = self.metrics.lock().unwrap();
        rec.incr(Counter::StageAcks, self.links.len() as u64);
        rec.bump(Counter::EpochFlips);
        drop(rec);

        let mut owner_ack = None;
        for (k, link) in self.links.iter().enumerate() {
            for attempt in 1..=FLIP_ATTEMPTS {
                match link.flip(epoch) {
                    Ok(ack) => {
                        if k as u32 == owner {
                            owner_ack = ack.outcome;
                        }
                        break;
                    }
                    Err(e) if attempt == FLIP_ATTEMPTS => {
                        // Committed anyway: the next gather that sees
                        // this shard's stale label re-issues the flip.
                        eprintln!(
                            "flip epoch {epoch} on shard {k} ({}) failed after \
                             {FLIP_ATTEMPTS} attempts: {e}; deferring to repair-on-read",
                            link.describe()
                        );
                    }
                    Err(_) => {}
                }
            }
        }
        Ok(owner_ack)
    }

    /// The health line: global epoch plus per-shard reachability.
    pub fn health_json(&self) -> String {
        let epoch = self.state.read().unwrap().epoch;
        let shards = self
            .links
            .iter()
            .map(|l| (l.describe(), l.reachable()))
            .collect();
        render_health(epoch, 0, None, &Topology::Coordinator { shards })
    }

    /// The stats line: topology shape and the scatter/gather counters.
    pub fn stats_json(&self) -> String {
        let (epoch, next_cid, live) = {
            let s = self.state.read().unwrap();
            (s.epoch, s.next_cid, s.owner_of.len() as u64)
        };
        let m = self.metrics();
        let counters = Json::obj(
            [
                Counter::ScatterProbes,
                Counter::GatherPoints,
                Counter::MergeDropped,
                Counter::StageAcks,
                Counter::EpochFlips,
                Counter::ResultsEmitted,
                Counter::LimitInterrupts,
            ]
            .iter()
            .map(|&c| (c.name(), Json::Uint(m.get(c))))
            .collect(),
        );
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("epoch", Json::Uint(epoch)),
            ("shards", Json::Uint(self.links.len() as u64)),
            ("next_cid", Json::Uint(next_cid)),
            ("live", Json::Uint(live)),
            ("counters", counters),
        ])
        .render()
    }

    /// The metrics line: scatter/gather counters plus per-shard probe
    /// latency attribution (cumulative and rolling histograms).
    pub fn metrics_json(&self) -> String {
        let m = self.metrics();
        let counters = Json::obj(
            Counter::ALL
                .iter()
                .filter(|&&c| m.get(c) > 0)
                .map(|&c| (c.name(), Json::Uint(m.get(c))))
                .collect(),
        );
        let shards = self
            .links
            .iter()
            .zip(&self.probe_lat)
            .enumerate()
            .map(|(k, (link, lat))| {
                Json::obj(vec![
                    ("shard", Json::Uint(k as u64)),
                    ("target", Json::Str(link.describe())),
                    ("probe_latency_ns", lat.lock().unwrap().to_json()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("counters", counters),
            ("shards", Json::Arr(shards)),
        ])
        .render()
    }
}

/// The coordinator role behind the NDJSON front door: clients speak the
/// exact same `query`/`add`/`remove`/`stats`/`health`/`metrics` verbs a
/// single server answers, so pointing `skyup query --connect` at a
/// coordinator Just Works.
#[derive(Clone)]
pub struct CoordinatorDispatch(pub Arc<Coordinator<TcpLink>>);

impl Dispatch for CoordinatorDispatch {
    fn dispatch(&self, req: Request) -> String {
        match req {
            Request::Query(q) => match self.0.query(&q) {
                Ok(resp) => render_query_response(&resp),
                Err(err) => render_skyup_error(&err),
            },
            Request::Add(point) => match self.0.mutate(Mutation::AddCompetitor(point)) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Request::Remove(cid) => match self.0.mutate(Mutation::RemoveCompetitor(cid)) {
                Ok(out) => render_mutation_outcome(&out),
                Err(err) => render_skyup_error(&err),
            },
            Request::Stats => self.0.stats_json(),
            Request::Health => self.0.health_json(),
            Request::Metrics => self.0.metrics_json(),
            Request::Trace(_) => render_error("tracing is shard-local; ask a shard directly"),
            Request::Stage { .. } | Request::Flip { .. } | Request::LocalProbe(_) => {
                render_error("the coordinator issues shard verbs; it does not serve them")
            }
            Request::Shutdown => unreachable!("the line loop handles shutdown"),
        }
    }

    fn on_stop(&self) {
        // Shards are separate processes with their own lifecycles; a
        // coordinator shutdown deliberately leaves them serving.
    }
}
