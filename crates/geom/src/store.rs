//! Flat columnar storage for multidimensional points.
//!
//! A [`PointStore`] keeps all coordinates in one contiguous `Vec<f64>`,
//! `dims` values per point. Points are addressed by [`PointId`], a compact
//! `u32` index. This layout avoids one heap allocation per point and keeps
//! scans cache-friendly, which matters at the paper's cardinalities
//! (millions of competitor products).

use std::fmt;

use crate::dominance::{block_masks, scan_geometry, ColScan, DOM_BLOCK};
use crate::error::GeomError;

/// Identifier of a point within one [`PointStore`].
///
/// Ids are dense: the `i`-th pushed point has id `i`. An id is only
/// meaningful together with the store that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A contiguous store of `len` points, each with `dims` finite `f64`
/// coordinates.
///
/// ```
/// use skyup_geom::PointStore;
/// let mut store = PointStore::new(2);
/// let a = store.push(&[1.0, 2.0]);
/// let b = store.push(&[3.0, 0.5]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.point(a), &[1.0, 2.0]);
/// assert_eq!(store.point(b), &[3.0, 0.5]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointStore {
    dims: usize,
    coords: Vec<f64>,
}

impl PointStore {
    /// Creates an empty store for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a product space needs at least one dimension");
        Self {
            dims,
            coords: Vec::new(),
        }
    }

    /// Creates an empty store with room for `capacity` points.
    pub fn with_capacity(dims: usize, capacity: usize) -> Self {
        assert!(dims > 0, "a product space needs at least one dimension");
        Self {
            dims,
            coords: Vec::with_capacity(dims * capacity),
        }
    }

    /// Builds a store from an iterator of coordinate rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dims`, or if any
    /// coordinate is not finite.
    pub fn from_rows<I, R>(dims: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut store = Self::new(dims);
        for row in rows {
            store.push(row.as_ref());
        }
        store
    }

    /// Appends a point and returns its id.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dims()`, if a coordinate is not
    /// finite, or if the store already holds `u32::MAX` points. Boundary
    /// code ingesting untrusted rows should use
    /// [`PointStore::try_push`] instead.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        match self.try_push(coords) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Appends a point, rejecting malformed rows with an error instead
    /// of panicking: wrong dimensionality, non-finite coordinates (NaN
    /// or ±inf), or a store already at `u32::MAX` points.
    pub fn try_push(&mut self, coords: &[f64]) -> Result<PointId, GeomError> {
        if coords.len() != self.dims {
            return Err(GeomError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        if let Some((dim, &value)) = coords.iter().enumerate().find(|(_, c)| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate { dim, value });
        }
        let id = u32::try_from(self.len()).map_err(|_| GeomError::CapacityExceeded)?;
        self.coords.extend_from_slice(coords);
        Ok(PointId(id))
    }

    /// The dimensionality of every point in the store.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of points currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// Whether the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Borrows the coordinates of point `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let start = id.index() * self.dims;
        &self.coords[start..start + self.dims]
    }

    /// Returns the coordinates of point `id`, or `None` if out of bounds.
    pub fn get(&self, id: PointId) -> Option<&[f64]> {
        if id.index() < self.len() {
            Some(self.point(id))
        } else {
            None
        }
    }

    /// Iterates over `(id, coordinates)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.coords
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, c)| (PointId(i as u32), c))
    }

    /// Iterates over all ids in the store.
    pub fn ids(&self) -> impl Iterator<Item = PointId> {
        (0..self.len() as u32).map(PointId)
    }

    /// The raw coordinate buffer (row-major, `dims` values per point).
    pub fn raw(&self) -> &[f64] {
        &self.coords
    }
}

/// A dims-major (columnar) mirror of a small, mutable point set — the
/// memory layout the blockwise dominance kernel
/// ([`crate::dominance::dominated_by_any_cols`]) scans.
///
/// Dimension `d`'s coordinates live contiguously at
/// `buf[d * cap .. d * cap + len]`; growing reallocates and re-lays-out
/// the buffer (amortized, like `Vec`). Skyline windows use this as a
/// reusable scratch: [`ColumnarPoints::clear`] keeps the allocation, so
/// a warm buffer makes repeated window maintenance allocation-free.
///
/// # Zone maps
///
/// Alongside the coordinates, the buffer maintains a *zone map* per
/// [`DOM_BLOCK`]-point block: the componentwise min/max corners of the
/// block's points (its minimum bounding rectangle), updated
/// incrementally on [`push`](Self::push) and
/// [`gather`](Self::gather), widened conservatively on
/// [`swap_remove`](Self::swap_remove), and reset on
/// [`clear`](Self::clear). The dominance scans use the min corner for
/// BBS-style block skipping: a point `s` can dominate `t` only if
/// `s[d] <= t[d]` on every dimension, so a block whose min corner
/// exceeds `t` somewhere — equivalently, whose MBR misses `ADR(t)` —
/// provably holds no dominator and is skipped without touching a
/// single lane ([`ColScan::skipped`](crate::dominance::ColScan) counts
/// these). Skipping never changes a verdict or a dominator list, only
/// how many blocks are scanned to produce them.
#[derive(Clone, Debug)]
pub struct ColumnarPoints {
    dims: usize,
    len: usize,
    cap: usize,
    buf: Vec<f64>,
    /// Per-block componentwise minimum corner, block-major:
    /// `zone_lo[b * dims .. (b + 1) * dims]` bounds block `b` from
    /// below. Conservative after `swap_remove` (never above the true
    /// minimum), exact after pure `push`/`gather` fills.
    zone_lo: Vec<f64>,
    /// Per-block componentwise maximum corner, same layout; kept
    /// symmetric with `zone_lo` so the summaries describe the full MBR
    /// (introspection, tests, future upper-bound pruning).
    zone_hi: Vec<f64>,
}

impl ColumnarPoints {
    /// Creates an empty columnar buffer for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a product space needs at least one dimension");
        Self {
            dims,
            len: 0,
            cap: 0,
            buf: Vec::new(),
            zone_lo: Vec::new(),
            zone_hi: Vec::new(),
        }
    }

    /// Number of points held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dimensionality of every point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Drops all points, keeping the allocation for reuse. The zone
    /// maps are fully reset too: a recycled scratch buffer must never
    /// serve block summaries derived from evicted contents.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.zone_lo.clear();
        self.zone_hi.clear();
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics (in debug builds) if `coords.len() != self.dims()`.
    pub fn push(&mut self, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dims);
        if self.len == self.cap {
            self.grow();
        }
        for (d, &x) in coords.iter().enumerate() {
            self.buf[d * self.cap + self.len] = x;
        }
        self.zone_note(coords);
        self.len += 1;
    }

    /// Folds `coords` into the zone map of the block that will hold the
    /// point at position `self.len` (call before incrementing `len`).
    #[inline]
    fn zone_note(&mut self, coords: &[f64]) {
        if self.len % DOM_BLOCK == 0 {
            // First point of a fresh block: its coordinates are the MBR.
            self.zone_lo.extend_from_slice(coords);
            self.zone_hi.extend_from_slice(coords);
        } else {
            let at = (self.len / DOM_BLOCK) * self.dims;
            for (d, &x) in coords.iter().enumerate() {
                let lo = &mut self.zone_lo[at + d];
                *lo = lo.min(x);
                let hi = &mut self.zone_hi[at + d];
                *hi = hi.max(x);
            }
        }
    }

    /// Removes the point at `i` by swapping the last point into its
    /// slot — mirroring `Vec::swap_remove`, so an id vector maintained
    /// alongside stays aligned when it applies the same operation.
    ///
    /// The destination block's zone map is *widened* with the moved
    /// point (bounds stay conservative, they just stop being tight);
    /// a block emptied by the removal drops its summary entirely.
    pub fn swap_remove(&mut self, i: usize) {
        assert!(i < self.len, "swap_remove index out of bounds");
        let last = self.len - 1;
        let at = (i / DOM_BLOCK) * self.dims;
        for d in 0..self.dims {
            let x = self.buf[d * self.cap + last];
            self.buf[d * self.cap + i] = x;
            let lo = &mut self.zone_lo[at + d];
            *lo = lo.min(x);
            let hi = &mut self.zone_hi[at + d];
            *hi = hi.max(x);
        }
        self.len = last;
        self.zone_lo
            .truncate(self.len.div_ceil(DOM_BLOCK) * self.dims);
        self.zone_hi
            .truncate(self.len.div_ceil(DOM_BLOCK) * self.dims);
    }

    /// Gathers the given points of `store` into this buffer, replacing
    /// its contents (the allocation is reused when large enough). Zone
    /// maps are rebuilt exactly for the gathered set.
    pub fn gather(&mut self, store: &PointStore, ids: &[PointId]) {
        debug_assert_eq!(store.dims(), self.dims);
        self.clear();
        if self.cap < ids.len() {
            self.reserve_exact_cap(ids.len().next_power_of_two().max(64));
        }
        for &id in ids {
            let p = store.point(id);
            for (d, &x) in p.iter().enumerate() {
                self.buf[d * self.cap + self.len] = x;
            }
            self.zone_note(p);
            self.len += 1;
        }
    }

    /// Number of [`DOM_BLOCK`]-point blocks currently summarized.
    #[inline]
    pub fn blocks(&self) -> usize {
        self.len.div_ceil(DOM_BLOCK)
    }

    /// The zone map of block `block`: its conservative `(min, max)`
    /// corners, each a `dims`-length slice, or `None` past the last
    /// block. After pure `push`/`gather` fills the bounds are exact;
    /// `swap_remove` may leave them wider than the surviving points.
    pub fn block_bounds(&self, block: usize) -> Option<(&[f64], &[f64])> {
        if block >= self.blocks() {
            return None;
        }
        let at = block * self.dims;
        Some((
            &self.zone_lo[at..at + self.dims],
            &self.zone_hi[at..at + self.dims],
        ))
    }

    /// Whether block `block`'s MBR intersects `ADR(target)` — i.e. its
    /// min corner is `<=` the target on every dimension. Only such a
    /// block can contain a dominator of `target`; the scans skip every
    /// block where this is false.
    #[inline]
    fn zone_admits(&self, block: usize, target: &[f64]) -> bool {
        let at = block * self.dims;
        self.zone_lo[at..at + self.dims]
            .iter()
            .zip(target)
            .all(|(&l, &y)| l <= y)
    }

    /// Whether any held point dominates `target`, via the blockwise
    /// columnar kernel with zone-map block skipping. Returns the
    /// verdict plus scan-work counts. The verdict is bit-identical to
    /// the raw kernel ([`crate::dominance::dominated_by_any_cols`]) and
    /// to the scalar `any(dominates)` loop: a skipped block provably
    /// contains no dominator.
    pub fn dominated_by_any(&self, target: &[f64]) -> ColScan {
        debug_assert_eq!(target.len(), self.dims);
        let (blocks, tail_mask) = scan_geometry(self.len);
        let mut scan = ColScan::default();
        for b in 0..blocks {
            if !self.zone_admits(b, target) {
                scan.skipped += 1;
                continue;
            }
            let base = b * DOM_BLOCK;
            let (width, lanes) = if b + 1 == blocks {
                (self.len - base, tail_mask)
            } else {
                (DOM_BLOCK, u64::MAX)
            };
            scan.blocks += 1;
            scan.points += width as u64;
            let (le, lt) = block_masks(&self.buf, self.cap, base, width, lanes, target);
            if le & lt != 0 {
                scan.dominated = true;
                return scan;
            }
        }
        scan
    }

    /// Appends the position (0-based stored index) of every held point
    /// that dominates `target` to `out`, in stored order, via the
    /// blockwise columnar kernel with zone-map block skipping. Returns
    /// the scan-work counts. Every block is either scanned or skipped
    /// (`scan.blocks + scan.skipped == self.blocks()`), and the
    /// collected list is identical to the raw kernel's: a skipped block
    /// contributes no positions because it can contain none.
    pub fn collect_dominators(&self, target: &[f64], out: &mut Vec<u32>) -> ColScan {
        debug_assert_eq!(target.len(), self.dims);
        let (blocks, tail_mask) = scan_geometry(self.len);
        let mut scan = ColScan::default();
        for b in 0..blocks {
            if !self.zone_admits(b, target) {
                scan.skipped += 1;
                continue;
            }
            let base = b * DOM_BLOCK;
            let (width, lanes) = if b + 1 == blocks {
                (self.len - base, tail_mask)
            } else {
                (DOM_BLOCK, u64::MAX)
            };
            scan.blocks += 1;
            scan.points += width as u64;
            let (le, lt) = block_masks(&self.buf, self.cap, base, width, lanes, target);
            let mut dom = le & lt;
            if dom != 0 {
                scan.dominated = true;
                while dom != 0 {
                    let j = dom.trailing_zeros();
                    out.push((base + j as usize) as u32);
                    dom &= dom - 1;
                }
            }
        }
        scan
    }

    fn grow(&mut self) {
        let new_cap = (self.cap * 2).max(64);
        self.reserve_exact_cap(new_cap);
    }

    fn reserve_exact_cap(&mut self, new_cap: usize) {
        debug_assert!(new_cap >= self.len);
        let mut new_buf = vec![0.0; self.dims * new_cap];
        for d in 0..self.dims {
            let src = &self.buf[d * self.cap..d * self.cap + self.len];
            new_buf[d * new_cap..d * new_cap + self.len].copy_from_slice(src);
        }
        self.buf = new_buf;
        self.cap = new_cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = PointStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, PointId(0));
        assert_eq!(b, PointId(1));
        assert_eq!(s.point(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.point(b), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let s = PointStore::from_rows(2, &rows);
        assert_eq!(s.len(), 3);
        for (i, (id, coords)) in s.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(coords, rows[i].as_slice());
        }
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let mut s = PointStore::new(2);
        s.push(&[0.0, 0.0]);
        assert!(s.get(PointId(0)).is_some());
        assert!(s.get(PointId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn push_wrong_dims_panics() {
        let mut s = PointStore::new(2);
        s.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_nan_panics() {
        let mut s = PointStore::new(1);
        s.push(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_panics() {
        let _ = PointStore::new(0);
    }

    #[test]
    fn try_push_reports_malformed_rows() {
        let mut s = PointStore::new(2);
        assert_eq!(
            s.try_push(&[1.0]),
            Err(GeomError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            s.try_push(&[1.0, f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { dim: 1, value }) if value.is_nan()
        ));
        assert!(matches!(
            s.try_push(&[f64::NEG_INFINITY, 0.0]),
            Err(GeomError::NonFiniteCoordinate { dim: 0, .. })
        ));
        // Rejected rows leave the store untouched.
        assert!(s.is_empty());
        assert_eq!(s.try_push(&[1.0, 2.0]), Ok(PointId(0)));
        assert_eq!(s.point(PointId(0)), &[1.0, 2.0]);
    }

    #[test]
    fn ids_cover_all_points() {
        let s = PointStore::from_rows(1, vec![[1.0], [2.0], [3.0]]);
        let ids: Vec<_> = s.ids().collect();
        assert_eq!(ids, vec![PointId(0), PointId(1), PointId(2)]);
    }

    #[test]
    fn columnar_push_and_swap_remove_mirror_a_vec() {
        use crate::dominance::dominates;
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64, (i % 5) as f64])
            .collect();
        let mut cols = ColumnarPoints::new(3);
        let mut mirror: Vec<Vec<f64>> = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            cols.push(r);
            mirror.push(r.clone());
            if i % 3 == 2 {
                let victim = i % mirror.len();
                cols.swap_remove(victim);
                mirror.swap_remove(victim);
            }
            assert_eq!(cols.len(), mirror.len());
            let t = [3.0, 5.0, 2.0];
            let scalar = mirror.iter().any(|p| dominates(p, &t));
            assert_eq!(cols.dominated_by_any(&t).dominated, scalar, "step {i}");
        }
    }

    #[test]
    fn columnar_gather_matches_store_points() {
        let s = PointStore::from_rows(2, vec![[0.1, 0.9], [0.3, 0.3], [0.9, 0.1]]);
        let mut cols = ColumnarPoints::new(2);
        cols.gather(&s, &[PointId(0), PointId(2)]);
        assert_eq!(cols.len(), 2);
        // (0.3, 0.3) is dominated by neither gathered point.
        assert!(!cols.dominated_by_any(&[0.3, 0.3]).dominated);
        assert!(cols.dominated_by_any(&[0.2, 0.95]).dominated);
        // Re-gather reuses the buffer and replaces the contents.
        cols.gather(&s, &[PointId(1)]);
        assert_eq!(cols.len(), 1);
        assert!(cols.dominated_by_any(&[0.4, 0.4]).dominated);
        cols.clear();
        assert!(cols.is_empty());
        assert!(!cols.dominated_by_any(&[9.0, 9.0]).dominated);
    }

    #[test]
    fn columnar_clear_resets_zone_maps() {
        use crate::dominance::dominates;
        // Fill with points clustered high (zone mins ~9), spanning two
        // blocks, then clear and refill with low points. Stale zone
        // maps from the first generation would either misalign the
        // per-block summaries (extend-after-clear) or skip blocks that
        // now hold dominators.
        let mut cols = ColumnarPoints::new(2);
        for i in 0..100 {
            cols.push(&[9.0 + (i % 7) as f64 * 0.1, 9.5 - (i % 5) as f64 * 0.1]);
        }
        assert_eq!(cols.blocks(), 2);
        cols.clear();
        assert_eq!(cols.blocks(), 0);
        assert!(cols.block_bounds(0).is_none());

        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64 * 0.1, (i % 4) as f64 * 0.25])
            .collect();
        for r in &rows {
            cols.push(r);
        }
        // Fresh bounds must describe the new generation exactly.
        let (lo, hi) = cols.block_bounds(0).unwrap();
        assert!(lo.iter().all(|&l| l <= 0.9) && hi.iter().all(|&h| h <= 1.0));
        for t in [[0.05, 0.05], [0.5, 0.5], [2.0, 2.0], [9.2, 9.2]] {
            let scalar = rows.iter().any(|p| dominates(p, &t));
            let scan = cols.dominated_by_any(&t);
            assert_eq!(scan.dominated, scalar, "target {t:?} after clear+refill");
            let mut out = Vec::new();
            let collect = cols.collect_dominators(&t, &mut out);
            assert_eq!(
                collect.blocks + collect.skipped,
                cols.blocks() as u64,
                "conservation after reuse"
            );
        }
    }

    #[test]
    fn columnar_growth_preserves_points() {
        // Cross the initial 64-capacity boundary and verify the
        // re-layout kept every point intact.
        let mut cols = ColumnarPoints::new(2);
        for i in 0..200 {
            cols.push(&[i as f64, (200 - i) as f64]);
        }
        assert_eq!(cols.len(), 200);
        // Only (0, 200) fails to be dominated by (0,200)-dominators;
        // probe a target each stored point relates to differently.
        assert!(cols.dominated_by_any(&[5.5, 200.5]).dominated);
        assert!(!cols.dominated_by_any(&[0.0, 0.0]).dominated);
    }
}
