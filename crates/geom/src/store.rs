//! Flat columnar storage for multidimensional points.
//!
//! A [`PointStore`] keeps all coordinates in one contiguous `Vec<f64>`,
//! `dims` values per point. Points are addressed by [`PointId`], a compact
//! `u32` index. This layout avoids one heap allocation per point and keeps
//! scans cache-friendly, which matters at the paper's cardinalities
//! (millions of competitor products).

use std::fmt;

use crate::error::GeomError;

/// Identifier of a point within one [`PointStore`].
///
/// Ids are dense: the `i`-th pushed point has id `i`. An id is only
/// meaningful together with the store that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A contiguous store of `len` points, each with `dims` finite `f64`
/// coordinates.
///
/// ```
/// use skyup_geom::PointStore;
/// let mut store = PointStore::new(2);
/// let a = store.push(&[1.0, 2.0]);
/// let b = store.push(&[3.0, 0.5]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.point(a), &[1.0, 2.0]);
/// assert_eq!(store.point(b), &[3.0, 0.5]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointStore {
    dims: usize,
    coords: Vec<f64>,
}

impl PointStore {
    /// Creates an empty store for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "a product space needs at least one dimension");
        Self {
            dims,
            coords: Vec::new(),
        }
    }

    /// Creates an empty store with room for `capacity` points.
    pub fn with_capacity(dims: usize, capacity: usize) -> Self {
        assert!(dims > 0, "a product space needs at least one dimension");
        Self {
            dims,
            coords: Vec::with_capacity(dims * capacity),
        }
    }

    /// Builds a store from an iterator of coordinate rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dims`, or if any
    /// coordinate is not finite.
    pub fn from_rows<I, R>(dims: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut store = Self::new(dims);
        for row in rows {
            store.push(row.as_ref());
        }
        store
    }

    /// Appends a point and returns its id.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dims()`, if a coordinate is not
    /// finite, or if the store already holds `u32::MAX` points. Boundary
    /// code ingesting untrusted rows should use
    /// [`PointStore::try_push`] instead.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        match self.try_push(coords) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Appends a point, rejecting malformed rows with an error instead
    /// of panicking: wrong dimensionality, non-finite coordinates (NaN
    /// or ±inf), or a store already at `u32::MAX` points.
    pub fn try_push(&mut self, coords: &[f64]) -> Result<PointId, GeomError> {
        if coords.len() != self.dims {
            return Err(GeomError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        if let Some((dim, &value)) = coords.iter().enumerate().find(|(_, c)| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate { dim, value });
        }
        let id = u32::try_from(self.len()).map_err(|_| GeomError::CapacityExceeded)?;
        self.coords.extend_from_slice(coords);
        Ok(PointId(id))
    }

    /// The dimensionality of every point in the store.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of points currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// Whether the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Borrows the coordinates of point `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let start = id.index() * self.dims;
        &self.coords[start..start + self.dims]
    }

    /// Returns the coordinates of point `id`, or `None` if out of bounds.
    pub fn get(&self, id: PointId) -> Option<&[f64]> {
        if id.index() < self.len() {
            Some(self.point(id))
        } else {
            None
        }
    }

    /// Iterates over `(id, coordinates)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.coords
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, c)| (PointId(i as u32), c))
    }

    /// Iterates over all ids in the store.
    pub fn ids(&self) -> impl Iterator<Item = PointId> {
        (0..self.len() as u32).map(PointId)
    }

    /// The raw coordinate buffer (row-major, `dims` values per point).
    pub fn raw(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = PointStore::new(3);
        let a = s.push(&[1.0, 2.0, 3.0]);
        let b = s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a, PointId(0));
        assert_eq!(b, PointId(1));
        assert_eq!(s.point(a), &[1.0, 2.0, 3.0]);
        assert_eq!(s.point(b), &[4.0, 5.0, 6.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let s = PointStore::from_rows(2, &rows);
        assert_eq!(s.len(), 3);
        for (i, (id, coords)) in s.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(coords, rows[i].as_slice());
        }
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let mut s = PointStore::new(2);
        s.push(&[0.0, 0.0]);
        assert!(s.get(PointId(0)).is_some());
        assert!(s.get(PointId(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn push_wrong_dims_panics() {
        let mut s = PointStore::new(2);
        s.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_nan_panics() {
        let mut s = PointStore::new(1);
        s.push(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_panics() {
        let _ = PointStore::new(0);
    }

    #[test]
    fn try_push_reports_malformed_rows() {
        let mut s = PointStore::new(2);
        assert_eq!(
            s.try_push(&[1.0]),
            Err(GeomError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            s.try_push(&[1.0, f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { dim: 1, value }) if value.is_nan()
        ));
        assert!(matches!(
            s.try_push(&[f64::NEG_INFINITY, 0.0]),
            Err(GeomError::NonFiniteCoordinate { dim: 0, .. })
        ));
        // Rejected rows leave the store untouched.
        assert!(s.is_empty());
        assert_eq!(s.try_push(&[1.0, 2.0]), Ok(PointId(0)));
        assert_eq!(s.point(PointId(0)), &[1.0, 2.0]);
    }

    #[test]
    fn ids_cover_all_points() {
        let s = PointStore::from_rows(1, vec![[1.0], [2.0], [3.0]]);
        let ids: Vec<_> = s.ids().collect();
        assert_eq!(ids, vec![PointId(0), PointId(1), PointId(2)]);
    }
}
