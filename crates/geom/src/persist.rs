//! Compact binary serialization for [`PointStore`].
//!
//! Building a million-point R-tree takes seconds; loading one from disk
//! takes milliseconds. The format is little-endian, versioned, and
//! self-describing:
//!
//! ```text
//! magic "SKUPPSTO" | version u32 | dims u64 | len u64 | coords f64*
//! ```

use crate::store::PointStore;
use std::fmt;

const MAGIC: &[u8; 8] = b"SKUPPSTO";
const VERSION: u32 = 1;

/// Errors from [`PointStore::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended prematurely or has trailing garbage.
    Truncated,
    /// A decoded value is invalid (e.g. non-finite coordinate).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a skyup point store (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated or has trailing bytes"),
            DecodeError::Corrupt(what) => write!(f, "corrupt data: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A little-endian cursor over a byte slice, shared with the R-tree
/// crate's persistence code.
#[doc(hidden)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

impl PointStore {
    /// Serializes the store to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + 16 + self.raw().len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dims() as u64).to_le_bytes());
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self.raw() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a store produced by [`PointStore::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<PointStore, DecodeError> {
        let mut r = Reader::new(buf);
        if r.bytes(8)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let dims = r.u64()? as usize;
        if dims == 0 {
            return Err(DecodeError::Corrupt("zero dimensions"));
        }
        let len = r.u64()? as usize;
        let mut store = PointStore::with_capacity(dims, len);
        let mut row = vec![0.0; dims];
        for _ in 0..len {
            for slot in row.iter_mut() {
                let v = r.f64()?;
                if !v.is_finite() {
                    return Err(DecodeError::Corrupt("non-finite coordinate"));
                }
                *slot = v;
            }
            store.push(&row);
        }
        r.finish()?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointStore {
        PointStore::from_rows(
            3,
            vec![
                vec![0.1, -2.5, 3.75],
                vec![1e-9, 1e9, 0.0],
                vec![7.0, 8.0, 9.0],
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = PointStore::from_bytes(&bytes).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_store_roundtrip() {
        let s = PointStore::new(5);
        let back = PointStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back.dims(), 5);
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(PointStore::from_bytes(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 10, 0] {
            let err = PointStore::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(PointStore::from_bytes(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn nan_coordinate_rejected() {
        let mut bytes = sample().to_bytes();
        let coord_start = bytes.len() - 8;
        bytes[coord_start..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            PointStore::from_bytes(&bytes),
            Err(DecodeError::Corrupt("non-finite coordinate"))
        );
    }

    #[test]
    fn version_checked() {
        let mut bytes = sample().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            PointStore::from_bytes(&bytes),
            Err(DecodeError::BadVersion(99))
        );
    }
}
