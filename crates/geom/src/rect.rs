//! Axis-aligned hyperrectangles (minimum bounding rectangles).

use crate::dominance;

/// An axis-aligned hyperrectangle `[lo, hi]`, the MBR type used by the
/// R-tree and the join algorithm.
///
/// `lo` is the *minimum corner* (the paper's `e.min`) and `hi` the
/// *maximum corner* (`e.max`). Because smaller is better on every
/// dimension, `lo` dominates-or-equals every point inside the rectangle
/// and every point inside dominates-or-equals `hi`.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from its minimum and maximum corners.
    ///
    /// # Panics
    /// Panics if the corners have different lengths, are empty, contain
    /// non-finite values, or if `lo[i] > hi[i]` for some `i`.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionalities differ");
        assert!(!lo.is_empty(), "rectangles need at least one dimension");
        for (i, (&l, &h)) in lo.iter().zip(hi).enumerate() {
            assert!(l.is_finite() && h.is_finite(), "corners must be finite");
            assert!(l <= h, "inverted rectangle on dimension {i}: {l} > {h}");
        }
        Self {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// A degenerate rectangle covering exactly one point.
    pub fn point(p: &[f64]) -> Self {
        Self::new(p, p)
    }

    /// An "empty" accumulator rectangle: `lo = +inf`, `hi = -inf` on every
    /// dimension. [`Rect::expand`]ing it with any real rectangle yields
    /// that rectangle. Not a valid query rectangle by itself.
    pub fn empty(dims: usize) -> Self {
        assert!(dims > 0);
        Self {
            lo: vec![f64::INFINITY; dims].into(),
            hi: vec![f64::NEG_INFINITY; dims].into(),
        }
    }

    /// Whether this is the [`Rect::empty`] accumulator (never expanded).
    pub fn is_empty_accumulator(&self) -> bool {
        self.lo[0] > self.hi[0]
    }

    /// Dimensionality of the rectangle.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// The minimum corner (`e.min`).
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// The maximum corner (`e.max`).
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether `p` lies inside the rectangle (borders included).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        p.iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&x, (&l, &h))| l <= x && x <= h)
    }

    /// Whether `other` lies entirely inside `self` (borders included).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo.iter().zip(&other.lo).all(|(&a, &b)| a <= b)
            && self.hi.iter().zip(&other.hi).all(|(&a, &b)| b <= a)
    }

    /// Whether the two rectangles intersect (shared borders count).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(other.dims(), self.dims());
        self.lo.iter().zip(&other.hi).all(|(&l, &h)| l <= h)
            && other.lo.iter().zip(self.hi.iter()).all(|(&l, &h)| l <= h)
    }

    /// Grows `self` to cover `other`.
    pub fn expand(&mut self, other: &Rect) {
        debug_assert_eq!(other.dims(), self.dims());
        for i in 0..self.dims() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Grows `self` to cover point `p`.
    pub fn expand_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dims());
        for (i, &x) in p.iter().enumerate() {
            if x < self.lo[i] {
                self.lo[i] = x;
            }
            if x > self.hi[i] {
                self.hi[i] = x;
            }
        }
    }

    /// The volume (product of side lengths). Zero for degenerate rects.
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .product()
    }

    /// Sum of side lengths (the R*-tree "margin" heuristic input).
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .sum()
    }

    /// Volume of the intersection with `other`, or `0.0` if disjoint.
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let mut area = 1.0;
        for i in 0..self.dims() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo > hi {
                return 0.0;
            }
            area *= hi - lo;
        }
        area
    }

    /// How much the area grows if `self` is expanded to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        let mut merged = self.clone();
        merged.expand(other);
        merged.area() - self.area()
    }

    /// The center of the rectangle.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Whether the maximum corner of `self` dominates the minimum corner
    /// of `other` — in which case *every* point of `self` dominates
    /// *every* point of `other` (the join algorithm's mutual dominance
    /// pruning test).
    pub fn max_dominates_min_of(&self, other: &Rect) -> bool {
        dominance::dominates(&self.hi, &other.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo, hi)
    }

    #[test]
    fn contains_and_intersects() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.contains_point(&[1.0, 1.0]));
        assert!(a.contains_point(&[0.0, 2.0])); // border
        assert!(!a.contains_point(&[2.1, 1.0]));

        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        let c = r(&[2.5, 2.5], &[4.0, 4.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        // Touching borders count as intersecting.
        let d = r(&[2.0, 0.0], &[3.0, 1.0]);
        assert!(a.intersects(&d));
    }

    #[test]
    fn contains_rect() {
        let outer = r(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = r(&[1.0, 1.0], &[9.0, 9.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn expand_covers_both() {
        let mut a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, -1.0], &[3.0, 0.5]);
        a.expand(&b);
        assert_eq!(a.lo(), &[0.0, -1.0]);
        assert_eq!(a.hi(), &[3.0, 1.0]);
        assert!(a.contains_rect(&b));
    }

    #[test]
    fn empty_accumulator_expansion() {
        let mut acc = Rect::empty(2);
        assert!(acc.is_empty_accumulator());
        acc.expand_point(&[1.0, 2.0]);
        assert!(!acc.is_empty_accumulator());
        assert_eq!(acc.lo(), &[1.0, 2.0]);
        assert_eq!(acc.hi(), &[1.0, 2.0]);
        acc.expand_point(&[0.0, 3.0]);
        assert_eq!(acc.lo(), &[0.0, 2.0]);
        assert_eq!(acc.hi(), &[1.0, 3.0]);
    }

    #[test]
    fn area_margin_overlap() {
        let a = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = r(&[1.0, 1.0], &[3.0, 2.0]);
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(b.overlap_area(&a), 1.0);
        let c = r(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let inner = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(a.enlargement(&inner), 0.0);
        let outside = r(&[5.0, 0.0], &[6.0, 4.0]);
        assert!(a.enlargement(&outside) > 0.0);
    }

    #[test]
    fn max_dominates_min() {
        // a entirely "better" than b.
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(a.max_dominates_min_of(&b));
        assert!(!b.max_dominates_min_of(&a));
        // Overlapping: neither fully dominates.
        let c = r(&[0.5, 0.5], &[2.5, 2.5]);
        assert!(!a.max_dominates_min_of(&c));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = Rect::new(&[1.0], &[0.0]);
    }
}
