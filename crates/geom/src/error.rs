//! Structured errors for the fallible geometry constructors.
//!
//! The panicking constructors ([`crate::OrderedF64::new`],
//! [`crate::PointStore::push`]) stay as thin wrappers for internal call
//! sites whose invariants are established upstream; boundary code (data
//! loading, the `try_*` query APIs) goes through `try_new` / `try_push`
//! and propagates these errors with context instead of aborting.

use std::fmt;

/// Why a geometry value was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GeomError {
    /// An [`crate::OrderedF64`] would hold NaN.
    NanValue,
    /// A point coordinate is NaN or infinite.
    NonFiniteCoordinate {
        /// Zero-based dimension of the offending coordinate.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// A row's length differs from the store's dimensionality.
    DimensionMismatch {
        /// The store's dimensionality.
        expected: usize,
        /// The row's length.
        got: usize,
    },
    /// The store already holds `u32::MAX` points.
    CapacityExceeded,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeomError::NanValue => write!(f, "OrderedF64 cannot hold NaN"),
            GeomError::NonFiniteCoordinate { dim, value } => {
                write!(
                    f,
                    "coordinates must be finite, got {value} at dimension {dim}"
                )
            }
            GeomError::DimensionMismatch { expected, got } => write!(
                f,
                "point dimensionality {got} does not match store dimensionality {expected}"
            ),
            GeomError::CapacityExceeded => {
                write!(f, "PointStore supports at most u32::MAX points")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_legacy_phrasing() {
        // The panicking wrappers format these errors, so the messages
        // must keep the substrings older should_panic tests match on.
        assert!(GeomError::NanValue.to_string().contains("NaN"));
        assert!(GeomError::NonFiniteCoordinate {
            dim: 1,
            value: f64::NAN
        }
        .to_string()
        .contains("finite"));
        assert!(GeomError::DimensionMismatch {
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("dimensionality"));
        assert!(GeomError::CapacityExceeded
            .to_string()
            .contains("u32::MAX points"));
    }
}
