//! A totally ordered `f64` wrapper for use as priority-queue keys.

use std::cmp::Ordering;
use std::fmt;

use crate::error::GeomError;

/// An `f64` with the total order of [`f64::total_cmp`], usable as a
/// `BinaryHeap` key. All values produced by the algorithms are finite or
/// `+inf` (the "unknown cost" sentinel); NaN is rejected at construction.
#[derive(Clone, Copy, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a non-NaN `f64`.
    ///
    /// # Panics
    /// Panics on NaN. Boundary code that cannot rule out NaN should use
    /// [`OrderedF64::try_new`] instead.
    #[inline]
    pub fn new(v: f64) -> Self {
        match Self::try_new(v) {
            Ok(x) => x,
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps a non-NaN `f64`, rejecting NaN with an error.
    #[inline]
    pub fn try_new(v: f64) -> Result<Self, GeomError> {
        if v.is_nan() {
            Err(GeomError::NanValue)
        } else {
            Ok(Self(v))
        }
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Positive infinity (the "not yet computed" sentinel cost).
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);

    /// Zero.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrderedF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn ordering_is_total_and_numeric() {
        let a = OrderedF64::new(1.0);
        let b = OrderedF64::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(OrderedF64::ZERO < OrderedF64::INFINITY);
        assert!(OrderedF64::new(-1.0) < OrderedF64::ZERO);
    }

    #[test]
    fn min_heap_via_reverse() {
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0, f64::INFINITY, 0.5] {
            h.push(Reverse(OrderedF64::new(v)));
        }
        let mut out = Vec::new();
        while let Some(Reverse(v)) = h.pop() {
            out.push(v.get());
        }
        assert_eq!(out, vec![0.5, 1.0, 2.0, 3.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    fn try_new_reports_nan_without_panicking() {
        assert_eq!(OrderedF64::try_new(f64::NAN), Err(GeomError::NanValue));
        assert_eq!(OrderedF64::try_new(1.5).map(OrderedF64::get), Ok(1.5));
        assert!(OrderedF64::try_new(f64::INFINITY).is_ok());
    }
}
