//! Owned points and small coordinate helpers.

use std::cmp::Ordering;

/// An owned point: a thin wrapper around `Vec<f64>` used where algorithms
/// materialize *new* coordinates (upgraded products, virtual corners)
/// rather than referencing a [`crate::PointStore`].
#[derive(Clone, Debug, PartialEq)]
pub struct Point(pub Vec<f64>);

impl Point {
    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.0
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Point(v.to_vec())
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

/// Sum of coordinates — the L1 key BBS uses to order its heap (an
/// admissible "mindist to the origin" for smaller-is-better skylines).
#[inline]
pub fn coord_sum(p: &[f64]) -> f64 {
    p.iter().sum()
}

/// Lexicographic comparison of coordinate slices using the total order on
/// `f64`. Used for deterministic sorting and tie-breaking in tests.
pub fn lex_cmp(a: &[f64], b: &[f64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_sum_works() {
        assert_eq!(coord_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(coord_sum(&[]), 0.0);
    }

    #[test]
    fn lex_cmp_orders() {
        assert_eq!(lex_cmp(&[1.0, 2.0], &[1.0, 2.0]), Ordering::Equal);
        assert_eq!(lex_cmp(&[1.0, 1.0], &[1.0, 2.0]), Ordering::Less);
        assert_eq!(lex_cmp(&[2.0, 0.0], &[1.0, 9.0]), Ordering::Greater);
    }

    #[test]
    fn point_conversions() {
        let p: Point = vec![1.0, 2.0].into();
        assert_eq!(p.dims(), 2);
        let q: Point = (&[1.0, 2.0][..]).into();
        assert_eq!(p, q);
        assert_eq!(p.as_ref(), &[1.0, 2.0]);
    }
}
