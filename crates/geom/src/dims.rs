//! Dimension classification for lower-bound upgrading costs.
//!
//! Paper Section III-B3: comparing an `R_T` entry `e_T` (represented by
//! its minimum corner) against an `R_P` entry `e_P` classifies every
//! dimension `D_i` as
//!
//! * **disadvantaged** (`D_D`): `e_P.max.d_i < e_T.min.d_i` — every point
//!   of `e_P` beats every point of `e_T` here;
//! * **incomparable** (`D_I`): `e_P.min.d_i <= e_T.min.d_i <= e_P.max.d_i`;
//! * **advantaged** (`D_A`): `e_T.min.d_i < e_P.min.d_i` — `e_T.min`
//!   beats every point of `e_P` here.
//!
//! The classification is stored as bitmasks so the aggressive lower bound
//! can group join-list entries by identical signatures cheaply.

use crate::rect::Rect;
use std::fmt;

/// A set of dimension indices, stored as a bitmask. Supports product
/// spaces of up to 64 dimensions (the paper evaluates up to 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DimMask(pub u64);

impl DimMask {
    /// The empty set.
    pub const EMPTY: DimMask = DimMask(0);

    /// The full set over `dims` dimensions.
    pub fn all(dims: usize) -> Self {
        assert!(dims <= 64, "DimMask supports at most 64 dimensions");
        if dims == 64 {
            DimMask(u64::MAX)
        } else {
            DimMask((1u64 << dims) - 1)
        }
    }

    /// Inserts dimension `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 |= 1 << i;
    }

    /// Whether dimension `i` is in the set.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        self.0 & (1 << i) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of dimensions in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the dimension indices in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl fmt::Debug for DimMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "D{i}")?;
        }
        write!(f, "}}")
    }
}

/// The result of classifying all dimensions of `e_T.min` against an
/// `e_P` MBR: the paper's `Dims(𝔻, e_T, e_P)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DimClassification {
    /// `D_D` — dimensions where `e_T.min` is strictly worse than all of `e_P`.
    pub disadvantaged: DimMask,
    /// `D_I` — dimensions where `e_T.min` falls within `e_P`'s extent.
    pub incomparable: DimMask,
    /// `D_A` — dimensions where `e_T.min` is strictly better than all of `e_P`.
    pub advantaged: DimMask,
}

impl DimClassification {
    /// The `(D_D, D_I)` pair as a grouping key. Two classifications over
    /// the same space with equal keys have identical `D_A` too (the three
    /// masks partition the dimensions), which is the partitioning
    /// criterion of the aggressive lower bound (Section III-B4).
    pub fn signature(&self) -> (DimMask, DimMask) {
        (self.disadvantaged, self.incomparable)
    }
}

/// Classifies every dimension of `e_t_min` against `e_p` per the rules
/// above. `e_t_min` is the minimum corner of the `R_T` entry.
///
/// # Panics
/// Debug-panics if dimensionalities differ.
pub fn classify_dims(e_t_min: &[f64], e_p: &Rect) -> DimClassification {
    debug_assert_eq!(e_t_min.len(), e_p.dims());
    let mut c = DimClassification {
        disadvantaged: DimMask::EMPTY,
        incomparable: DimMask::EMPTY,
        advantaged: DimMask::EMPTY,
    };
    for (i, &t) in e_t_min.iter().enumerate() {
        if e_p.hi()[i] < t {
            c.disadvantaged.insert(i);
        } else if t < e_p.lo()[i] {
            c.advantaged.insert(i);
        } else {
            c.incomparable.insert(i);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_basics() {
        let mut m = DimMask::EMPTY;
        assert!(m.is_empty());
        m.insert(0);
        m.insert(3);
        assert_eq!(m.len(), 2);
        assert!(m.contains(0));
        assert!(!m.contains(1));
        assert!(m.contains(3));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(DimMask::all(3), DimMask(0b111));
        assert_eq!(DimMask::all(64).len(), 64);
    }

    #[test]
    fn classify_partitions_dimensions() {
        // e_T.min = (5, 5, 5); e_P spans different relations per dim.
        let t = [5.0, 5.0, 5.0];
        let p = Rect::new(&[1.0, 4.0, 6.0], &[2.0, 7.0, 8.0]);
        let c = classify_dims(&t, &p);
        // dim 0: e_P.hi=2 < 5 => disadvantaged
        // dim 1: 4 <= 5 <= 7 => incomparable
        // dim 2: 5 < 6 => advantaged
        assert!(c.disadvantaged.contains(0));
        assert!(c.incomparable.contains(1));
        assert!(c.advantaged.contains(2));
        let union = c.disadvantaged.0 | c.incomparable.0 | c.advantaged.0;
        assert_eq!(union, DimMask::all(3).0);
        assert_eq!(c.disadvantaged.0 & c.incomparable.0, 0);
        assert_eq!(c.disadvantaged.0 & c.advantaged.0, 0);
    }

    #[test]
    fn boundary_values_are_incomparable() {
        let t = [5.0];
        assert!(classify_dims(&t, &Rect::new(&[5.0], &[9.0]))
            .incomparable
            .contains(0));
        assert!(classify_dims(&t, &Rect::new(&[1.0], &[5.0]))
            .incomparable
            .contains(0));
    }

    #[test]
    fn signature_groups_equal_classifications() {
        let t = [5.0, 5.0];
        let p1 = Rect::new(&[0.0, 0.0], &[1.0, 1.0]); // both disadvantaged
        let p2 = Rect::new(&[2.0, 2.0], &[3.0, 3.0]); // both disadvantaged
        let p3 = Rect::new(&[0.0, 4.0], &[1.0, 6.0]); // dim1 incomparable
        assert_eq!(
            classify_dims(&t, &p1).signature(),
            classify_dims(&t, &p2).signature()
        );
        assert_ne!(
            classify_dims(&t, &p1).signature(),
            classify_dims(&t, &p3).signature()
        );
    }
}
