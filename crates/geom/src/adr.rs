//! Anti-dominant region (ADR) tests.
//!
//! The anti-dominant region of a product `t` (paper Section III-A, after
//! Tao et al.'s SUBSKY) is the hyperrectangle with `t` as its maximum
//! corner and the domain origin as its minimum corner: exactly the region
//! where `t`'s dominators can live. We never materialize the region; we
//! expose the predicates the algorithms need, using an unbounded lower
//! corner so that negative coordinates (from negating larger-is-better
//! attributes) work too.

use crate::rect::Rect;

/// Whether `p` lies in `ADR(t)`, i.e. `p[i] <= t[i]` on every dimension.
/// Every dominator of `t` satisfies this; `t` itself does as well.
#[inline]
pub fn point_in_adr(p: &[f64], t: &[f64]) -> bool {
    debug_assert_eq!(p.len(), t.len());
    p.iter().zip(t).all(|(&x, &y)| x <= y)
}

/// Whether `p` lies strictly inside `ADR(t)` (`p[i] < t[i]` everywhere).
#[inline]
pub fn point_strictly_in_adr(p: &[f64], t: &[f64]) -> bool {
    debug_assert_eq!(p.len(), t.len());
    p.iter().zip(t).all(|(&x, &y)| x < y)
}

/// Whether rectangle `rect` overlaps `ADR(t)` — the pruning test of the
/// probing and join algorithms: an R-tree node can contain dominators of
/// `t` only if its minimum corner is `<= t` on every dimension (paper
/// Section III-B2: ignore `e_P` iff `∃ i: e_P.min.d_i > t.d_i`).
#[inline]
pub fn rect_intersects_adr(rect: &Rect, t: &[f64]) -> bool {
    debug_assert_eq!(rect.dims(), t.len());
    rect.lo().iter().zip(t).all(|(&l, &y)| l <= y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::dominates;

    #[test]
    fn dominators_are_in_adr() {
        let t = [2.0, 3.0];
        for p in [[1.0, 2.0], [2.0, 2.9], [0.0, 0.0]] {
            assert!(dominates(&p, &t));
            assert!(point_in_adr(&p, &t));
        }
    }

    #[test]
    fn t_is_in_its_own_adr_but_not_strictly() {
        let t = [2.0, 3.0];
        assert!(point_in_adr(&t, &t));
        assert!(!point_strictly_in_adr(&t, &t));
    }

    #[test]
    fn non_dominators_outside_unless_equal_profile() {
        let t = [2.0, 3.0];
        assert!(!point_in_adr(&[2.5, 1.0], &t));
        assert!(!point_in_adr(&[1.0, 3.5], &t));
    }

    #[test]
    fn rect_overlap_rule() {
        let t = [2.0, 3.0];
        // Node whose min corner is componentwise <= t may hold dominators.
        assert!(rect_intersects_adr(
            &Rect::new(&[0.0, 0.0], &[5.0, 5.0]),
            &t
        ));
        assert!(rect_intersects_adr(
            &Rect::new(&[2.0, 3.0], &[4.0, 4.0]),
            &t
        ));
        // One dimension beyond t => no dominators possible.
        assert!(!rect_intersects_adr(
            &Rect::new(&[2.1, 0.0], &[4.0, 1.0]),
            &t
        ));
        assert!(!rect_intersects_adr(
            &Rect::new(&[0.0, 3.5], &[1.0, 4.0]),
            &t
        ));
    }

    #[test]
    fn negative_coordinates_supported() {
        // Negated larger-is-better attributes produce negative values.
        let t = [-150.0, 180.0];
        assert!(point_in_adr(&[-200.0, 100.0], &t));
        assert!(rect_intersects_adr(
            &Rect::new(&[-300.0, -10.0], &[-100.0, 500.0]),
            &t
        ));
    }
}
