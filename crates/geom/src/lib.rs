//! Geometric substrate for the `skyup` product-upgrading library.
//!
//! This crate provides the low-level building blocks shared by the R-tree,
//! the skyline algorithms, and the upgrading algorithms:
//!
//! * [`PointStore`] — a flat, columnar container for multidimensional
//!   points, addressed by compact [`PointId`]s. Algorithms never copy
//!   points around; they pass ids and borrow coordinate slices.
//! * [`Rect`] — axis-aligned hyperrectangles (R-tree MBRs).
//! * [`dominance`] — the Pareto dominance predicates that underlie
//!   skyline semantics (smaller-is-better on every dimension).
//! * [`adr`] — anti-dominant-region tests used to find the dominators of
//!   a product.
//! * [`dims`] — the disadvantaged / incomparable / advantaged dimension
//!   classification from the paper's Section III-B3, used to derive
//!   lower-bound upgrading costs.
//! * [`OrderedF64`] — a totally ordered `f64` wrapper for priority
//!   queues.
//!
//! Conventions: all dimensions are *smaller-is-better* (the paper's
//! simplifying assumption; larger-is-better attributes are negated by the
//! caller before entering the store), and coordinates are finite `f64`s.

pub mod adr;
pub mod dims;
pub mod dominance;
pub mod error;
pub mod ordered;
pub mod persist;
pub mod point;
pub mod rect;
pub mod store;

pub use adr::{point_in_adr, point_strictly_in_adr, rect_intersects_adr};
pub use dims::{classify_dims, DimClassification, DimMask};
pub use dominance::{
    collect_dominators_cols, compare, dominated_by_any_cols, dominates, dominates_or_equal,
    ColScan, DomRelation, DOM_BLOCK,
};
pub use error::GeomError;
pub use ordered::OrderedF64;
pub use point::{coord_sum, lex_cmp, Point};
pub use rect::Rect;
pub use store::{ColumnarPoints, PointId, PointStore};
