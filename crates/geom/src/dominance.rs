//! Pareto dominance predicates.
//!
//! All dimensions are smaller-is-better: point `a` *dominates* `b`
//! (written `a ≺ b`) when `a` is no larger than `b` on every dimension and
//! strictly smaller on at least one (paper Definition 3).

/// The four possible dominance relationships between two points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DomRelation {
    /// The first point dominates the second (`a ≺ b`).
    Dominates,
    /// The first point is dominated by the second (`b ≺ a`).
    DominatedBy,
    /// The points have identical coordinates.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// Returns `true` when `a ≺ b`: `a[i] <= b[i]` for all `i` and
/// `a[i] < b[i]` for at least one `i`.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths.
///
/// ```
/// use skyup_geom::dominance::dominates;
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal, not dominated
/// assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0])); // incomparable
/// ```
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Returns `true` when `a ≼ b`: `a[i] <= b[i]` for all `i` (dominates or
/// equal). This weak form is what transitivity arguments compose with.
#[inline]
pub fn dominates_or_equal(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

/// Classifies the relationship between `a` and `b` in a single pass.
///
/// ```
/// use skyup_geom::dominance::{compare, DomRelation};
/// assert_eq!(compare(&[1.0], &[2.0]), DomRelation::Dominates);
/// assert_eq!(compare(&[2.0], &[1.0]), DomRelation::DominatedBy);
/// assert_eq!(compare(&[1.0], &[1.0]), DomRelation::Equal);
/// assert_eq!(compare(&[1.0, 3.0], &[2.0, 1.0]), DomRelation::Incomparable);
/// ```
pub fn compare(a: &[f64], b: &[f64]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early-returned above"),
    }
}

/// Number of points per block scanned by the columnar dominance kernel.
/// One `u64` bitmask covers a block, so 64 is the natural width.
pub const DOM_BLOCK: usize = 64;

/// Outcome of a columnar dominance scan: the verdict plus how much work
/// the kernel actually did, so callers can charge the same counters the
/// scalar loop would (`points` → dominance tests, `blocks` → kernel
/// block scans, `skipped` → zone-map block skips).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColScan {
    /// Whether some scanned point dominates the target.
    pub dominated: bool,
    /// Points covered by the scanned blocks (block-granular: the kernel
    /// early-exits between blocks, not within one). Points in skipped
    /// blocks are not covered — no comparison ever touched them.
    pub points: u64,
    /// Blocks scanned (their lanes actually compared).
    pub blocks: u64,
    /// Blocks skipped wholesale because the block's zone map proved it
    /// cannot contain a dominator (always 0 on the raw column kernels,
    /// which carry no zone maps). On a scan that runs to completion —
    /// any [`collect_dominators_cols`]-style enumeration, or a
    /// membership scan that found no dominator — the conservation law
    /// `blocks + skipped == total blocks` holds exactly; a membership
    /// scan that stops at a dominating block accounts only for the
    /// blocks considered up to and including that block.
    pub skipped: u64,
}

/// Evaluates the `le`/`lt` masks of one block in dims-major, branch-free
/// form: for each dimension the whole lane column is compared against
/// the target's coordinate with no branch inside the lane loop (the
/// shape the compiler autovectorizes into packed compares + movemask),
/// and the per-dimension masks are combined afterwards.
///
/// `lanes` is the valid-lane mask (`u64::MAX` for a full block, the
/// precomputed tail mask for the last partial block). Bit `j` of the
/// returned `le` is set when point `base + j` is `<=` the target on
/// every dimension evaluated; bit `j` of `lt` when it is `<` on some
/// evaluated dimension. A block's remaining dimensions are abandoned as
/// soon as `le` empties — an exit at dimension granularity, outside the
/// lane loop, so it costs the vectorizer nothing. `le & lt` is the
/// dominator mask; the comparisons are the exact `f64` comparisons of
/// the scalar [`dominates`] loop, so the verdict is bit-identical
/// (coordinates are finite by the store contract, hence `x <= y` and
/// `!(x > y)` agree).
#[inline]
pub(crate) fn block_masks(
    cols: &[f64],
    stride: usize,
    base: usize,
    width: usize,
    lanes: u64,
    target: &[f64],
) -> (u64, u64) {
    let mut le = lanes;
    let mut lt = 0u64;
    for (d, &y) in target.iter().enumerate() {
        let col = &cols[d * stride + base..d * stride + base + width];
        let mut le_d = 0u64;
        let mut lt_d = 0u64;
        for (j, &x) in col.iter().enumerate() {
            le_d |= u64::from(x <= y) << j;
            lt_d |= u64::from(x < y) << j;
        }
        le &= le_d;
        lt |= lt_d;
        if le == 0 {
            break;
        }
    }
    (le, lt)
}

/// The per-scan block geometry: total block count and the valid-lane
/// mask of the last block, hoisted out of the block loop so the hot
/// path never recomputes the partial-block width test per iteration.
#[inline]
pub(crate) fn scan_geometry(len: usize) -> (usize, u64) {
    let blocks = len.div_ceil(DOM_BLOCK);
    let tail = len % DOM_BLOCK;
    let tail_mask = if tail == 0 {
        u64::MAX
    } else {
        (1u64 << tail) - 1
    };
    (blocks, tail_mask)
}

/// Columnar "is `target` dominated by any stored point" kernel.
///
/// `cols` holds `len` points in dims-major layout: dimension `d`'s
/// coordinates occupy `cols[d * stride .. d * stride + len]` (so
/// `stride >= len`). The scan proceeds in blocks of [`DOM_BLOCK`]
/// points, evaluating each block's `le`/`lt` masks dims-major and
/// branch-free ([`block_masks`]); early exit happens only at block
/// granularity, after the masks are combined — a block containing a
/// dominator (`le & lt != 0`) ends the scan.
///
/// The verdict is bit-identical to the scalar
/// `points.iter().any(|s| dominates(s, target))` loop: both reduce to
/// the same exact `f64` comparisons.
pub fn dominated_by_any_cols(cols: &[f64], stride: usize, len: usize, target: &[f64]) -> ColScan {
    let dims = target.len();
    debug_assert!(stride >= len);
    debug_assert!(cols.len() >= dims * stride);
    let (blocks, tail_mask) = scan_geometry(len);
    let mut scan = ColScan::default();
    for b in 0..blocks {
        let base = b * DOM_BLOCK;
        let (width, lanes) = if b + 1 == blocks {
            (len - base, tail_mask)
        } else {
            (DOM_BLOCK, u64::MAX)
        };
        scan.blocks += 1;
        scan.points += width as u64;
        let (le, lt) = block_masks(cols, stride, base, width, lanes, target);
        if le & lt != 0 {
            scan.dominated = true;
            return scan;
        }
    }
    scan
}

/// Columnar "collect every stored point that dominates `target`"
/// kernel: the enumerating sibling of [`dominated_by_any_cols`].
///
/// Same layout contract (`cols` dims-major with `stride >= len`), same
/// blockwise `le`/`lt` bitmask evaluation — but instead of stopping at
/// the first dominator it appends the *position* (0-based index into
/// the stored order) of every dominator to `out`, in ascending order.
/// Callers that keep an id vector aligned with the columnar buffer can
/// therefore map positions back to ids while preserving the stored
/// order, which is what makes filtered dominator lists order-identical
/// to a scalar `filter(|s| dominates(s, target))` pass.
///
/// Every block is scanned in full (`points == len` on return), because
/// the caller wants the complete set; the per-block early-out when `le`
/// empties still applies.
pub fn collect_dominators_cols(
    cols: &[f64],
    stride: usize,
    len: usize,
    target: &[f64],
    out: &mut Vec<u32>,
) -> ColScan {
    let dims = target.len();
    debug_assert!(stride >= len);
    debug_assert!(cols.len() >= dims * stride);
    let (blocks, tail_mask) = scan_geometry(len);
    let mut scan = ColScan::default();
    for b in 0..blocks {
        let base = b * DOM_BLOCK;
        let (width, lanes) = if b + 1 == blocks {
            (len - base, tail_mask)
        } else {
            (DOM_BLOCK, u64::MAX)
        };
        scan.blocks += 1;
        scan.points += width as u64;
        let (le, lt) = block_masks(cols, stride, base, width, lanes, target);
        let mut dom = le & lt;
        if dom != 0 {
            scan.dominated = true;
            while dom != 0 {
                let j = dom.trailing_zeros();
                out.push((base + j as usize) as u32);
                dom &= dom - 1;
            }
        }
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_irreflexive() {
        let p = [1.0, 2.0, 3.0];
        assert!(!dominates(&p, &p));
        assert!(dominates_or_equal(&p, &p));
    }

    #[test]
    fn dominance_is_asymmetric() {
        let a = [1.0, 2.0];
        let b = [2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn dominance_is_transitive() {
        let a = [1.0, 1.0];
        let b = [1.0, 2.0];
        let c = [2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(dominates(&b, &c));
        assert!(dominates(&a, &c));
    }

    #[test]
    fn compare_matches_predicates() {
        let cases = [
            ([1.0, 1.0], [2.0, 2.0]),
            ([2.0, 2.0], [1.0, 1.0]),
            ([1.0, 2.0], [2.0, 1.0]),
            ([1.5, 1.5], [1.5, 1.5]),
        ];
        for (a, b) in cases {
            let rel = compare(&a, &b);
            assert_eq!(rel == DomRelation::Dominates, dominates(&a, &b));
            assert_eq!(rel == DomRelation::DominatedBy, dominates(&b, &a));
            assert_eq!(
                rel == DomRelation::Equal,
                dominates_or_equal(&a, &b) && dominates_or_equal(&b, &a)
            );
        }
    }

    #[test]
    fn single_dimension() {
        assert!(dominates(&[0.0], &[1.0]));
        assert!(!dominates(&[1.0], &[0.0]));
        assert_eq!(compare(&[0.5], &[0.5]), DomRelation::Equal);
    }

    /// Lays out `points` dims-major with the given stride.
    fn to_cols(points: &[Vec<f64>], dims: usize, stride: usize) -> Vec<f64> {
        let mut cols = vec![0.0; dims * stride];
        for (i, p) in points.iter().enumerate() {
            for (d, &x) in p.iter().enumerate() {
                cols[d * stride + i] = x;
            }
        }
        cols
    }

    #[test]
    fn columnar_kernel_matches_scalar_loop() {
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for dims in 1..=5usize {
            for n in [0usize, 1, 7, 63, 64, 65, 130, 200] {
                // Coarse grid so equal coordinates are common.
                let points: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..dims).map(|_| (next() * 4.0).floor() / 4.0).collect())
                    .collect();
                let stride = n + 3;
                let cols = to_cols(&points, dims, stride);
                for _ in 0..20 {
                    let target: Vec<f64> =
                        (0..dims).map(|_| (next() * 4.0).floor() / 4.0).collect();
                    let scalar = points.iter().any(|p| dominates(p, &target));
                    let scan = dominated_by_any_cols(&cols, stride, n, &target);
                    assert_eq!(scan.dominated, scalar, "dims={dims} n={n} t={target:?}");
                }
            }
        }
    }

    #[test]
    fn collect_kernel_matches_scalar_filter_in_order() {
        let mut state = 0xfeed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for dims in 1..=4usize {
            for n in [0usize, 1, 63, 64, 65, 130] {
                let points: Vec<Vec<f64>> = (0..n)
                    .map(|_| (0..dims).map(|_| (next() * 4.0).floor() / 4.0).collect())
                    .collect();
                let stride = n + 2;
                let cols = to_cols(&points, dims, stride);
                for _ in 0..20 {
                    let target: Vec<f64> =
                        (0..dims).map(|_| (next() * 4.0).floor() / 4.0).collect();
                    let scalar: Vec<u32> = points
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| dominates(p, &target))
                        .map(|(i, _)| i as u32)
                        .collect();
                    let mut got = Vec::new();
                    let scan = collect_dominators_cols(&cols, stride, n, &target, &mut got);
                    assert_eq!(got, scalar, "dims={dims} n={n} t={target:?}");
                    assert_eq!(scan.dominated, !scalar.is_empty());
                    // The collect kernel never early-exits across blocks.
                    assert_eq!(scan.points, n as u64);
                }
            }
        }
    }

    #[test]
    fn columnar_kernel_counts_block_granular_work() {
        // 70 points, none dominating: the full two blocks are scanned.
        let points: Vec<Vec<f64>> = (0..70).map(|i| vec![i as f64, -(i as f64)]).collect();
        let cols = to_cols(&points, 2, 70);
        let scan = dominated_by_any_cols(&cols, 70, 70, &[-1.0, -100.0]);
        assert!(!scan.dominated);
        assert_eq!((scan.points, scan.blocks), (70, 2));
        // A dominator in the first block stops the scan there.
        let scan = dominated_by_any_cols(&cols, 70, 70, &[100.0, 100.0]);
        assert!(scan.dominated);
        assert_eq!((scan.points, scan.blocks), (64, 1));
    }

    #[test]
    fn columnar_kernel_equal_points_do_not_dominate() {
        let points = vec![vec![0.5, 0.5]];
        let cols = to_cols(&points, 2, 1);
        assert!(!dominated_by_any_cols(&cols, 1, 1, &[0.5, 0.5]).dominated);
        assert!(dominated_by_any_cols(&cols, 1, 1, &[0.5, 0.6]).dominated);
    }

    #[test]
    fn paper_table_one_phones() {
        // Table I, negated where larger-is-better (standby, camera) so
        // that smaller is uniformly better.
        let phones = [
            [140.0, -200.0, -2.0], // phone 1
            [180.0, -150.0, -3.0], // phone 2
            [100.0, -160.0, -3.0], // phone 3
            [180.0, -180.0, -3.0], // phone 4
            [120.0, -180.0, -4.0], // phone 5
            [150.0, -150.0, -3.0], // phone 6
        ];
        // Phones 1, 3, 5 are the skyline (not dominated by any other).
        for (i, p) in phones.iter().enumerate() {
            let dominated = phones
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q, p));
            let expect_skyline = matches!(i, 0 | 2 | 4);
            assert_eq!(!dominated, expect_skyline, "phone {}", i + 1);
        }
    }
}
