//! Pareto dominance predicates.
//!
//! All dimensions are smaller-is-better: point `a` *dominates* `b`
//! (written `a ≺ b`) when `a` is no larger than `b` on every dimension and
//! strictly smaller on at least one (paper Definition 3).

/// The four possible dominance relationships between two points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DomRelation {
    /// The first point dominates the second (`a ≺ b`).
    Dominates,
    /// The first point is dominated by the second (`b ≺ a`).
    DominatedBy,
    /// The points have identical coordinates.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// Returns `true` when `a ≺ b`: `a[i] <= b[i]` for all `i` and
/// `a[i] < b[i]` for at least one `i`.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths.
///
/// ```
/// use skyup_geom::dominance::dominates;
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal, not dominated
/// assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0])); // incomparable
/// ```
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Returns `true` when `a ≼ b`: `a[i] <= b[i]` for all `i` (dominates or
/// equal). This weak form is what transitivity arguments compose with.
#[inline]
pub fn dominates_or_equal(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x <= y)
}

/// Classifies the relationship between `a` and `b` in a single pass.
///
/// ```
/// use skyup_geom::dominance::{compare, DomRelation};
/// assert_eq!(compare(&[1.0], &[2.0]), DomRelation::Dominates);
/// assert_eq!(compare(&[2.0], &[1.0]), DomRelation::DominatedBy);
/// assert_eq!(compare(&[1.0], &[1.0]), DomRelation::Equal);
/// assert_eq!(compare(&[1.0, 3.0], &[2.0, 1.0]), DomRelation::Incomparable);
/// ```
pub fn compare(a: &[f64], b: &[f64]) -> DomRelation {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return DomRelation::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => unreachable!("early-returned above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_irreflexive() {
        let p = [1.0, 2.0, 3.0];
        assert!(!dominates(&p, &p));
        assert!(dominates_or_equal(&p, &p));
    }

    #[test]
    fn dominance_is_asymmetric() {
        let a = [1.0, 2.0];
        let b = [2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn dominance_is_transitive() {
        let a = [1.0, 1.0];
        let b = [1.0, 2.0];
        let c = [2.0, 2.0];
        assert!(dominates(&a, &b));
        assert!(dominates(&b, &c));
        assert!(dominates(&a, &c));
    }

    #[test]
    fn compare_matches_predicates() {
        let cases = [
            ([1.0, 1.0], [2.0, 2.0]),
            ([2.0, 2.0], [1.0, 1.0]),
            ([1.0, 2.0], [2.0, 1.0]),
            ([1.5, 1.5], [1.5, 1.5]),
        ];
        for (a, b) in cases {
            let rel = compare(&a, &b);
            assert_eq!(rel == DomRelation::Dominates, dominates(&a, &b));
            assert_eq!(rel == DomRelation::DominatedBy, dominates(&b, &a));
            assert_eq!(
                rel == DomRelation::Equal,
                dominates_or_equal(&a, &b) && dominates_or_equal(&b, &a)
            );
        }
    }

    #[test]
    fn single_dimension() {
        assert!(dominates(&[0.0], &[1.0]));
        assert!(!dominates(&[1.0], &[0.0]));
        assert_eq!(compare(&[0.5], &[0.5]), DomRelation::Equal);
    }

    #[test]
    fn paper_table_one_phones() {
        // Table I, negated where larger-is-better (standby, camera) so
        // that smaller is uniformly better.
        let phones = [
            [140.0, -200.0, -2.0], // phone 1
            [180.0, -150.0, -3.0], // phone 2
            [100.0, -160.0, -3.0], // phone 3
            [180.0, -180.0, -3.0], // phone 4
            [120.0, -180.0, -4.0], // phone 5
            [150.0, -150.0, -3.0], // phone 6
        ];
        // Phones 1, 3, 5 are the skyline (not dominated by any other).
        for (i, p) in phones.iter().enumerate() {
            let dominated = phones
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q, p));
            let expect_skyline = matches!(i, 0 | 2 | 4);
            assert_eq!(!dominated, expect_skyline, "phone {}", i + 1);
        }
    }
}
