//! Exhaustive optimal upgrading — the paper's final research direction.
//!
//! Section VI: "while we prove that Algorithm 1 is correct, further
//! studies of the optimality of the algorithm, in terms of the upgrade
//! cost of the result, are in order." This module provides the exact
//! optimum for *small* dominator skylines so that Algorithm 1's
//! optimality gap can be measured (see the `optimality_gap` test and
//! the ablation bench).
//!
//! # Method
//!
//! Under the no-downgrade policy (`t' ≼ t`, which Algorithm 1's
//! clamping also enforces), an optimal upgrade exists whose coordinate
//! on every dimension `x` lies in the finite candidate grid
//! `{t.d_x} ∪ {s.d_x − ε : s ∈ S, s.d_x − ε < t.d_x}`: any feasible
//! `t'` can be relaxed coordinate-by-coordinate (raising values, which
//! never increases cost under a non-increasing attribute cost) until
//! each coordinate is blocked either at `t`'s own value or just below
//! some skyline point's value. Exhaustively enumerating the grid is
//! `O((|S|+1)^d)` — exponential, strictly a ground-truth oracle.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore};

/// Upper bound on `(|S|+1)^d` grid size before [`optimal_upgrade`]
/// refuses to run (ground-truth oracle, not a production path).
const MAX_GRID: usize = 2_000_000;

/// Computes the exact cheapest upgrade of `t` against `skyline` under
/// the no-downgrade policy. Returns `(cost, upgraded)`.
///
/// # Panics
/// Panics if the candidate grid would exceed an internal size limit;
/// use Algorithm 1 ([`crate::upgrade_single`]) for anything large.
pub fn optimal_upgrade<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> (f64, Vec<f64>) {
    if skyline.is_empty() {
        return (0.0, t.to_vec());
    }
    let dims = t.len();
    // Per-dimension candidate values, deduplicated and sorted.
    let mut grid: Vec<Vec<f64>> = Vec::with_capacity(dims);
    let mut total: usize = 1;
    for (x, &tx) in t.iter().enumerate() {
        let mut vals: Vec<f64> = vec![tx];
        for &s in skyline {
            let v = p_store.point(s)[x] - cfg.epsilon;
            if v < tx {
                vals.push(v);
            }
        }
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        total = total.saturating_mul(vals.len());
        assert!(
            total <= MAX_GRID,
            "candidate grid too large ({total}+); optimal_upgrade is an oracle for small inputs"
        );
        grid.push(vals);
    }

    let base = cost_fn.product_cost(t);
    let mut best_cost = f64::INFINITY;
    let mut best: Vec<f64> = t.to_vec();
    let mut candidate = vec![0.0; dims];
    enumerate(
        p_store,
        skyline,
        cost_fn,
        &grid,
        0,
        &mut candidate,
        base,
        &mut best_cost,
        &mut best,
    );
    debug_assert!(best_cost.is_finite(), "a feasible upgrade always exists");
    (best_cost, best)
}

#[allow(clippy::too_many_arguments)]
fn enumerate<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    cost_fn: &C,
    grid: &[Vec<f64>],
    dim: usize,
    candidate: &mut Vec<f64>,
    base: f64,
    best_cost: &mut f64,
    best: &mut Vec<f64>,
) {
    if dim == grid.len() {
        if skyline
            .iter()
            .any(|&s| dominates(p_store.point(s), candidate))
        {
            return;
        }
        let cost = cost_fn.product_cost(candidate) - base;
        if cost < *best_cost {
            *best_cost = cost;
            best.copy_from_slice(candidate);
        }
        return;
    }
    for &v in &grid[dim] {
        candidate[dim] = v;
        enumerate(
            p_store,
            skyline,
            cost_fn,
            grid,
            dim + 1,
            candidate,
            base,
            best_cost,
            best,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::upgrade::{dominated_by_any, upgrade_single};

    fn cfg() -> UpgradeConfig {
        UpgradeConfig::with_epsilon(1e-4)
    }

    fn pseudo_random(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn optimum_is_feasible_and_never_above_algorithm_one() {
        let mut seed = 0x0def_u64;
        for case in 0..30 {
            let dims = 2 + (case % 2);
            let mut store = PointStore::new(dims);
            let n_sky = 2 + case % 4;
            // Random points, filtered to a mutually incomparable set that
            // all dominate t.
            let t = vec![0.95; dims];
            let mut sky: Vec<PointId> = Vec::new();
            while sky.len() < n_sky {
                let p: Vec<f64> = (0..dims).map(|_| 0.8 * pseudo_random(&mut seed)).collect();
                let id_candidate = p.clone();
                let ok = sky.iter().all(|&s| {
                    use skyup_geom::dominance::{compare, DomRelation};
                    compare(store.point(s), &id_candidate) == DomRelation::Incomparable
                });
                if ok {
                    let id = store.push(&p);
                    sky.push(id);
                }
            }
            let cost_fn = SumCost::reciprocal(dims, 1e-2);
            let (opt, opt_point) = optimal_upgrade(&store, &sky, &t, &cost_fn, &cfg());
            assert!(
                !dominated_by_any(&store, &sky, &opt_point),
                "optimal point infeasible"
            );
            assert!(opt >= 0.0);

            let (alg, _) = upgrade_single(&store, &sky, &t, &cost_fn, &cfg());
            assert!(
                opt <= alg + 1e-9,
                "case {case}: optimum {opt} above Algorithm 1's {alg}"
            );

            let mut ext_cfg = cfg();
            ext_cfg.extended_candidates = true;
            let (ext, _) = upgrade_single(&store, &sky, &t, &cost_fn, &ext_cfg);
            assert!(opt <= ext + 1e-9);
            assert!(ext <= alg + 1e-9);
        }
    }

    #[test]
    fn single_dominator_algorithm_one_is_optimal() {
        // With one dominator the single-dimension escape is optimal, and
        // Algorithm 1 finds it.
        let mut store = PointStore::new(3);
        let s = store.push(&[0.5, 0.2, 0.7]);
        let t = [0.9, 0.8, 0.75];
        let cost_fn = SumCost::reciprocal(3, 1e-2);
        let (opt, _) = optimal_upgrade(&store, &[s], &t, &cost_fn, &cfg());
        let (alg, _) = upgrade_single(&store, &[s], &t, &cost_fn, &cfg());
        assert!((opt - alg).abs() < 1e-9);
    }

    #[test]
    fn empty_skyline_is_free() {
        let store = PointStore::new(2);
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let (c, p) = optimal_upgrade(&store, &[], &[0.4, 0.4], &cost_fn, &cfg());
        assert_eq!(c, 0.0);
        assert_eq!(p, vec![0.4, 0.4]);
    }

    #[test]
    fn known_gap_case() {
        // A staircase where the best answer mixes "beat s1 on x, s3 on y"
        // — a corner Algorithm 1's pair enumeration cannot form, so a
        // strictly positive optimality gap is possible. Verify the oracle
        // finds something at least as good and quantify the gap.
        let mut store = PointStore::new(2);
        let sky = vec![
            store.push(&[0.10, 0.70]),
            store.push(&[0.40, 0.40]),
            store.push(&[0.70, 0.10]),
        ];
        let t = [0.9, 0.9];
        let cost_fn = SumCost::reciprocal(2, 1e-2);
        let (opt, opt_p) = optimal_upgrade(&store, &sky, &t, &cost_fn, &cfg());
        let (alg, alg_p) = upgrade_single(&store, &sky, &t, &cost_fn, &cfg());
        assert!(opt <= alg + 1e-12);
        assert!(!dominated_by_any(&store, &sky, &opt_p));
        assert!(!dominated_by_any(&store, &sky, &alg_p));
    }

    #[test]
    #[should_panic(expected = "candidate grid too large")]
    fn oversized_grid_rejected() {
        let mut store = PointStore::new(6);
        let mut sky = Vec::new();
        let mut seed = 7u64;
        for _ in 0..40 {
            let p: Vec<f64> = (0..6).map(|_| 0.5 * pseudo_random(&mut seed)).collect();
            sky.push(store.push(&p));
        }
        let cost_fn = SumCost::reciprocal(6, 1e-2);
        let t = vec![0.99; 6];
        let _ = optimal_upgrade(&store, &sky, &t, &cost_fn, &cfg());
    }
}
