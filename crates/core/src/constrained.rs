//! Upgrading under engineering constraints (library extension).
//!
//! Real upgrades hit physical and regulatory limits: a phone's weight
//! cannot drop below the battery's, a wine's sulphates cannot go to
//! zero. This module extends Algorithm 1 with **per-dimension floors**:
//! an upgraded value on dimension `x` may not go below `floors[x]`.
//! With floors, some products may be impossible to make competitive —
//! the function then returns `None` instead of a plan.
//!
//! The candidate enumeration mirrors Algorithm 1 (single-dimension and
//! consecutive-pair candidates, clamped to the floor), but each
//! candidate must now be re-checked for feasibility: clamping can put a
//! candidate back inside some competitor's dominance region.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore};

/// The outcome of a floor-constrained upgrade attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstrainedUpgrade {
    /// The upgrading cost `f_p(upgraded) − f_p(original)`.
    pub cost: f64,
    /// The upgraded attribute values (respecting all floors).
    pub upgraded: Vec<f64>,
}

/// Computes the cheapest floor-respecting upgrade of `t` against
/// `skyline` (the skyline of `t`'s dominators), or `None` when no
/// considered candidate escapes domination within the floors.
///
/// With `floors` all `-inf` this returns exactly
/// [`crate::upgrade_single`]'s answer.
///
/// # Panics
/// Panics if `floors.len() != t.len()` or if some `floors[x] > t[x]`
/// (the product already violates its own floor).
pub fn upgrade_single_with_floors<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    floors: &[f64],
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Option<ConstrainedUpgrade> {
    let dims = t.len();
    assert_eq!(floors.len(), dims, "one floor per dimension");
    assert!(
        floors.iter().zip(t).all(|(&f, &v)| f <= v),
        "product already below a floor"
    );
    if skyline.is_empty() {
        return Some(ConstrainedUpgrade {
            cost: 0.0,
            upgraded: t.to_vec(),
        });
    }

    let eps = cfg.epsilon;
    let base = cost_fn.product_cost(t);
    let feasible = |candidate: &[f64]| -> bool {
        !skyline
            .iter()
            .any(|&s| dominates(p_store.point(s), candidate))
    };

    let mut best: Option<ConstrainedUpgrade> = None;
    let consider = |candidate: &[f64], cost: f64, best: &mut Option<ConstrainedUpgrade>| {
        if !feasible(candidate) {
            return;
        }
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            *best = Some(ConstrainedUpgrade {
                cost,
                upgraded: candidate.to_vec(),
            });
        }
    };

    let mut order: Vec<PointId> = skyline.to_vec();
    let mut candidate = vec![0.0; dims];
    for k in 0..dims {
        order.sort_by(|&a, &b| p_store.point(a)[k].total_cmp(&p_store.point(b)[k]));

        // Single-dimension candidate, clamped to the floor.
        let s_min = p_store.point(order[0]);
        candidate.copy_from_slice(t);
        candidate[k] = (s_min[k] - eps).min(t[k]).max(floors[k]);
        let cost = cost_fn.product_cost(&candidate) - base;
        consider(&candidate, cost, &mut best);

        // Pair candidates.
        for w in order.windows(2) {
            let s_i = p_store.point(w[0]);
            let s_j = p_store.point(w[1]);
            for x in 0..dims {
                let bound = if x == k { s_j[x] } else { s_i[x] };
                candidate[x] = (bound - eps).min(t[x]).max(floors[x]);
            }
            let cost = cost_fn.product_cost(&candidate) - base;
            consider(&candidate, cost, &mut best);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::upgrade::upgrade_single;

    fn cfg() -> UpgradeConfig {
        UpgradeConfig::with_epsilon(1e-4)
    }

    #[test]
    fn no_floors_matches_algorithm_one() {
        let mut p = PointStore::new(2);
        let sky = vec![
            p.push(&[0.1, 0.5]),
            p.push(&[0.3, 0.3]),
            p.push(&[0.5, 0.1]),
        ];
        let t = [0.8, 0.8];
        let f = SumCost::reciprocal(2, 1e-2);
        let unconstrained = upgrade_single(&p, &sky, &t, &f, &cfg());
        let floored = upgrade_single_with_floors(
            &p,
            &sky,
            &t,
            &[f64::NEG_INFINITY, f64::NEG_INFINITY],
            &f,
            &cfg(),
        )
        .unwrap();
        assert!((floored.cost - unconstrained.0).abs() < 1e-12);
        assert_eq!(floored.upgraded, unconstrained.1);
    }

    #[test]
    fn binding_floor_changes_the_plan() {
        let mut p = PointStore::new(2);
        // One dominator; unconstrained would escape cheaply via dim 0.
        let s = p.push(&[0.5, 0.2]);
        let t = [0.6, 0.8];
        let f = SumCost::reciprocal(2, 1e-2);
        let unconstrained = upgrade_single(&p, &[s], &t, &f, &cfg());
        assert!(unconstrained.1[0] < 0.5, "baseline escapes via dim 0");

        // Dim 0 cannot go below 0.55: must escape via dim 1 instead.
        let floored =
            upgrade_single_with_floors(&p, &[s], &t, &[0.55, f64::NEG_INFINITY], &f, &cfg())
                .unwrap();
        assert!(floored.upgraded[0] >= 0.55);
        assert!(floored.upgraded[1] < 0.2, "escape moved to dim 1");
        assert!(
            floored.cost >= unconstrained.0,
            "constraints cannot be cheaper"
        );
        // Still non-dominated.
        assert!(!dominates(p.point(s), &floored.upgraded));
    }

    #[test]
    fn infeasible_when_floors_trap_the_product() {
        let mut p = PointStore::new(2);
        // Dominator strictly better than any floor-respecting value.
        let s = p.push(&[0.1, 0.1]);
        let t = [0.8, 0.8];
        let f = SumCost::reciprocal(2, 1e-2);
        let out = upgrade_single_with_floors(&p, &[s], &t, &[0.5, 0.5], &f, &cfg());
        assert_eq!(out, None, "no floor-respecting escape exists");
    }

    #[test]
    fn floor_exactly_at_escape_value_is_feasible() {
        let mut p = PointStore::new(2);
        let s = p.push(&[0.5, 0.5]);
        let t = [0.8, 0.8];
        let f = SumCost::reciprocal(2, 1e-2);
        // Floor below the needed 0.5 - eps: feasible.
        let out =
            upgrade_single_with_floors(&p, &[s], &t, &[0.4999, f64::NEG_INFINITY], &f, &cfg());
        assert!(out.is_some());
        // Floor exactly at 0.5: candidate clamps to 0.5, which ties the
        // dominator on dim 0 and loses on dim 1 -> still dominated,
        // escape must use dim 1; with both floors at 0.5 nothing works.
        let out = upgrade_single_with_floors(&p, &[s], &t, &[0.5, 0.5], &f, &cfg());
        assert_eq!(out, None);
    }

    #[test]
    #[should_panic(expected = "below a floor")]
    fn product_below_floor_rejected() {
        let p = PointStore::new(1);
        let f = SumCost::reciprocal(1, 1e-2);
        let _ = upgrade_single_with_floors(&p, &[], &[0.2], &[0.5], &f, &cfg());
    }

    #[test]
    fn empty_skyline_free_even_with_floors() {
        let p = PointStore::new(2);
        let f = SumCost::reciprocal(2, 1e-2);
        let out =
            upgrade_single_with_floors(&p, &[], &[0.7, 0.7], &[0.6, 0.6], &f, &cfg()).unwrap();
        assert_eq!(out.cost, 0.0);
    }
}
