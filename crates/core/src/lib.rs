//! Top-k product upgrading (Lu & Jensen, *Upgrading Uncompetitive
//! Products Economically*, ICDE 2012).
//!
//! Given a competitor set `P`, an own-product set `T`, and a monotone
//! product cost function, find the `k` products of `T` that can be
//! upgraded most cheaply so that no competitor dominates them.
//!
//! # Modules
//!
//! * [`cost`] — attribute cost functions and integration into product
//!   cost functions (Definitions 4–6).
//! * [`upgrade`] — Algorithm 1: the cheapest way to lift a single
//!   product above a skyline of dominators.
//! * [`probing`] — Algorithm 2 (basic probing) and its improved variant
//!   built on `getDominatingSky` (Algorithm 3).
//! * [`join`] — Algorithm 4: the progressive R-tree × R-tree join with
//!   the NLB / CLB / ALB lower-bound strategies (Section III-B).
//! * [`single_set`] — the future-work variant where uncompetitive
//!   products and competitors live in one catalog (Section VI).
//! * [`error`] — structured errors for the fallible `try_*` entry
//!   points, which validate their inputs and run under
//!   [`skyup_obs::ExecutionLimits`] with anytime degradation: when a
//!   wall-clock deadline, node-visit budget, heap budget, or external
//!   cancellation fires, they return the best answer computed so far
//!   tagged [`skyup_obs::Completion::Partial`] instead of panicking or
//!   running unbounded.
//!
//! # Quick start
//!
//! ```
//! use skyup_core::cost::SumCost;
//! use skyup_core::join::{JoinUpgrader, LowerBound};
//! use skyup_core::UpgradeConfig;
//! use skyup_geom::PointStore;
//! use skyup_rtree::{RTree, RTreeParams};
//!
//! // Competitors (smaller is better on both dimensions).
//! let p = PointStore::from_rows(2, vec![[0.2, 0.8], [0.5, 0.5], [0.8, 0.2]]);
//! // Our uncompetitive products.
//! let t = PointStore::from_rows(2, vec![[0.9, 0.9], [0.6, 0.7]]);
//!
//! let rp = RTree::bulk_load(&p, RTreeParams::default());
//! let rt = RTree::bulk_load(&t, RTreeParams::default());
//! let cost = SumCost::reciprocal(2, 1e-3);
//!
//! let mut join = JoinUpgrader::new(
//!     &p, &rp, &t, &rt, &cost, UpgradeConfig::default(), LowerBound::Conservative,
//! );
//! let best = join.next().expect("a cheapest upgrade exists");
//! assert!(best.cost >= 0.0);
//! ```

pub mod config;
pub mod constrained;
pub mod cost;
pub mod discrete;
pub mod error;
pub mod join;
pub mod optimal;
pub mod probing;
pub mod result;
pub mod single_set;
pub mod topk;
pub mod upgrade;

pub use config::UpgradeConfig;
pub use constrained::{upgrade_single_with_floors, ConstrainedUpgrade};
pub use cost::{
    AttributeCost, CostFunction, LinearCost, PowerCost, ReciprocalCost, SumCost, WeightedSumCost,
};
pub use discrete::{upgrade_single_discrete, DiscreteDomains};
pub use error::SkyupError;
pub use join::{try_join_topk, BoundMode, JoinStats, JoinUpgrader, LowerBound};
pub use optimal::optimal_upgrade;
pub use probing::{
    basic_probing_topk, basic_probing_topk_rec, improved_probing_topk,
    improved_probing_topk_parallel, improved_probing_topk_parallel_rec, improved_probing_topk_rec,
    improved_probing_topk_scheduled, improved_probing_topk_scheduled_rec,
    improved_probing_topk_with_skyline, improved_probing_topk_with_skyline_rec, run_probe_batch,
    try_basic_probing_topk, try_improved_probing_topk, try_improved_probing_topk_parallel,
    try_improved_probing_topk_pruned, try_improved_probing_topk_scheduled, BatchItem, BatchOutput,
    ItemAnswer, ProbeStrategy, PruningStats,
};
pub use result::{AnytimeTopK, UpgradeResult};
pub use single_set::single_set_topk;
pub use topk::{SharedThreshold, TopK};
pub use upgrade::{
    dominators_from_skyline, try_upgrade_single, upgrade_single, upgrade_single_into,
    upgrade_single_presorted_into, DimOrders, UpgradeScratch,
};

// Guard types re-exported so `try_*` callers need only this crate.
pub use skyup_obs::{CancellationToken, Completion, ExecutionLimits, Interrupt};
