//! Structured errors for the fallible (`try_*`) query APIs.
//!
//! The panicking entry points keep their assert-based contracts for
//! callers that construct inputs programmatically; the `try_*` variants
//! validate everything a remote caller could get wrong — mismatched
//! dimensionalities, empty competitor sets, `k == 0`, `threads == 0`,
//! stale indexes, and non-monotone cost functions (checked with the
//! [`crate::cost::diagnostics`] sampler) — and report it as a
//! [`SkyupError`] instead of aborting the process.

use crate::cost::diagnostics::{verify_monotone_on, MonotonicityViolation};
use crate::cost::CostFunction;
use skyup_geom::PointStore;
use skyup_rtree::RTree;
use std::fmt;

/// How many leading points of each store the monotonicity sampler
/// inspects per `try_*` call (`O(limit²)` dominance-comparable pairs).
pub(crate) const MONOTONE_SAMPLE_LIMIT: usize = 48;

/// Why a `try_*` query was rejected or failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SkyupError {
    /// A parameter is out of range (`k == 0`, `threads == 0`, a cost
    /// function of the wrong dimensionality, ...).
    InvalidConfig(String),
    /// The competitor and product stores disagree on dimensionality.
    DimensionMismatch {
        /// Dimensionality of the competitor store `P`.
        p_dims: usize,
        /// Dimensionality of the product store `T`.
        t_dims: usize,
    },
    /// The competitor set `P` is empty — there is nothing to upgrade
    /// against, which almost always means a wiring bug upstream.
    EmptyCompetitorSet,
    /// An R-tree does not index exactly the points of its store.
    IndexMismatch {
        /// Which index (`"R_P"` or `"R_T"`).
        tree: &'static str,
        /// Points the tree indexes.
        tree_len: usize,
        /// Points the store holds.
        store_len: usize,
    },
    /// The cost function violates the paper's monotonicity assumption
    /// on sampled data (Section I-C); lower bounds and Algorithm 1's
    /// pruning would silently break.
    NonMonotoneCost(MonotonicityViolation),
    /// A data value is malformed (non-finite coordinate, out-of-bounds
    /// skyline id, a skyline point that does not dominate the product).
    InvalidInput(String),
    /// A parallel-probing worker panicked; the panic was contained by
    /// the unwind barrier and the other workers' output was discarded.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The serving engine degraded to read-only after a durability I/O
    /// failure (WAL append/fsync or checkpoint write). Queries keep
    /// being served from the last published snapshot; mutations are
    /// rejected with this error until the process is restarted.
    ReadOnly {
        /// The I/O failure that triggered the degradation.
        reason: String,
    },
    /// A data file could not be loaded: a malformed cell, a ragged
    /// column count, a non-finite value, or an empty file. Carries the
    /// 1-based line number so the offending row can be found without
    /// re-parsing (`line == 0` means the error is about the file as a
    /// whole, e.g. it is empty or unreadable).
    DataLoad {
        /// The file (or source label) being loaded.
        source: String,
        /// 1-based line of the offending row; `0` for whole-file errors.
        line: u64,
        /// What was wrong with the row.
        message: String,
    },
}

impl fmt::Display for SkyupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkyupError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SkyupError::DimensionMismatch { p_dims, t_dims } => {
                write!(f, "P has {p_dims} dimensions but T has {t_dims}")
            }
            SkyupError::EmptyCompetitorSet => write!(f, "competitor set P is empty"),
            SkyupError::IndexMismatch {
                tree,
                tree_len,
                store_len,
            } => write!(
                f,
                "{tree} indexes {tree_len} points but its store holds {store_len}"
            ),
            SkyupError::NonMonotoneCost(v) => {
                write!(f, "cost function is not monotone: {v}")
            }
            SkyupError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SkyupError::WorkerPanicked { worker, message } => {
                write!(f, "probing worker {worker} panicked: {message}")
            }
            SkyupError::ReadOnly { reason } => {
                write!(
                    f,
                    "engine is read-only after a durability failure: {reason}"
                )
            }
            SkyupError::DataLoad {
                source,
                line,
                message,
            } => {
                if *line == 0 {
                    write!(f, "{source}: {message}")
                } else {
                    write!(f, "{source}: line {line}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for SkyupError {}

/// The validation shared by every `try_*` query entry point.
pub(crate) fn validate_query<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
) -> Result<(), SkyupError> {
    if p_store.dims() != t_store.dims() {
        return Err(SkyupError::DimensionMismatch {
            p_dims: p_store.dims(),
            t_dims: t_store.dims(),
        });
    }
    if cost_fn.dims() != p_store.dims() {
        return Err(SkyupError::InvalidConfig(format!(
            "cost function covers {} dimensions but products have {}",
            cost_fn.dims(),
            p_store.dims()
        )));
    }
    if k == 0 {
        return Err(SkyupError::InvalidConfig("k must be at least 1".into()));
    }
    if p_store.is_empty() {
        return Err(SkyupError::EmptyCompetitorSet);
    }
    if p_tree.len() != p_store.len() {
        return Err(SkyupError::IndexMismatch {
            tree: "R_P",
            tree_len: p_tree.len(),
            store_len: p_store.len(),
        });
    }
    verify_monotone_on(cost_fn, p_store, MONOTONE_SAMPLE_LIMIT)
        .map_err(SkyupError::NonMonotoneCost)?;
    verify_monotone_on(cost_fn, t_store, MONOTONE_SAMPLE_LIMIT)
        .map_err(SkyupError::NonMonotoneCost)?;
    Ok(())
}

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use skyup_rtree::RTreeParams;

    #[test]
    fn validate_catches_each_mistake() {
        let p = PointStore::from_rows(2, vec![[0.1, 0.2], [0.3, 0.1]]);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let t = PointStore::from_rows(2, vec![[0.5, 0.5]]);
        let cost = SumCost::reciprocal(2, 1e-3);

        assert!(validate_query(&p, &rp, &t, 3, &cost).is_ok());

        let t3 = PointStore::new(3);
        assert_eq!(
            validate_query(&p, &rp, &t3, 3, &cost),
            Err(SkyupError::DimensionMismatch {
                p_dims: 2,
                t_dims: 3
            })
        );

        let cost3 = SumCost::reciprocal(3, 1e-3);
        assert!(matches!(
            validate_query(&p, &rp, &t, 3, &cost3),
            Err(SkyupError::InvalidConfig(_))
        ));

        assert!(matches!(
            validate_query(&p, &rp, &t, 0, &cost),
            Err(SkyupError::InvalidConfig(_))
        ));

        let empty = PointStore::new(2);
        let r_empty = RTree::bulk_load(&empty, RTreeParams::default());
        assert_eq!(
            validate_query(&empty, &r_empty, &t, 3, &cost),
            Err(SkyupError::EmptyCompetitorSet)
        );

        // A tree built over a different cardinality is stale.
        assert_eq!(
            validate_query(&p, &r_empty, &t, 3, &cost),
            Err(SkyupError::IndexMismatch {
                tree: "R_P",
                tree_len: 0,
                store_len: 2
            })
        );
    }

    #[test]
    fn validate_catches_non_monotone_cost() {
        use crate::cost::AttributeCost;
        struct Increasing;
        impl AttributeCost for Increasing {
            fn eval(&self, v: f64) -> f64 {
                v
            }
        }
        let broken = SumCost::new(vec![Box::new(Increasing), Box::new(Increasing)]);
        let p = PointStore::from_rows(2, vec![[0.1, 0.1], [0.9, 0.9]]);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let t = PointStore::from_rows(2, vec![[0.5, 0.5]]);
        let err = validate_query(&p, &rp, &t, 1, &broken).unwrap_err();
        assert!(matches!(err, SkyupError::NonMonotoneCost(_)));
        assert!(err.to_string().contains("monotone"));
    }

    #[test]
    fn display_covers_every_variant() {
        let msgs = [
            SkyupError::InvalidConfig("k must be at least 1".into()).to_string(),
            SkyupError::DimensionMismatch {
                p_dims: 2,
                t_dims: 3,
            }
            .to_string(),
            SkyupError::EmptyCompetitorSet.to_string(),
            SkyupError::IndexMismatch {
                tree: "R_T",
                tree_len: 1,
                store_len: 2,
            }
            .to_string(),
            SkyupError::InvalidInput("NaN".into()).to_string(),
            SkyupError::WorkerPanicked {
                worker: 3,
                message: "boom".into(),
            }
            .to_string(),
            SkyupError::ReadOnly {
                reason: "wal fsync failed: No space left on device".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn panic_message_extracts_strings() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaput"))), "kaput");
        assert_eq!(panic_message(Box::new(42_u32)), "non-string panic payload");
    }
}
