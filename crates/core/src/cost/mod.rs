//! Cost-function framework (paper Definitions 4–6).
//!
//! An *attribute cost function* `f_a : D_i → ℝ` gives the manufacturing
//! cost of achieving a particular value on one quality attribute. An
//! *integration function* combines the per-attribute functions into a
//! *product cost function* `f_p : 𝒟 → ℝ`. The paper's algorithms require
//! `f_p` to be **monotone**: `p₁ ≺ p₂ ⇒ f_p(p₁) ≥ f_p(p₂)` — a dominating
//! (better) product never costs less to build. With smaller-is-better
//! dimensions this holds whenever every attribute cost function is
//! non-increasing in the attribute value.

mod attr;
pub mod diagnostics;
mod integrate;

pub use attr::{AttributeCost, LinearCost, PowerCost, ReciprocalCost};
pub use diagnostics::{verify_monotone_axes, verify_monotone_on, MonotonicityViolation};
pub use integrate::{CostFunction, SumCost, WeightedSumCost};

/// Samples `f` on a grid to check it is non-increasing over `[lo, hi]`.
/// A cheap guard used by constructors in debug builds and by tests; not
/// a proof.
pub fn is_non_increasing(f: &dyn AttributeCost, lo: f64, hi: f64, samples: usize) -> bool {
    assert!(samples >= 2 && lo < hi);
    let step = (hi - lo) / (samples - 1) as f64;
    let mut prev = f.eval(lo);
    for i in 1..samples {
        let v = f.eval(lo + step * i as f64);
        if v > prev + 1e-12 {
            return false;
        }
        prev = v;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_functions_are_monotone() {
        let r = ReciprocalCost::new(1e-3);
        let l = LinearCost::new(10.0, 2.0);
        let p = PowerCost::new(1.0, 2.0, 1e-3);
        assert!(is_non_increasing(&r, 0.0, 2.0, 100));
        assert!(is_non_increasing(&l, 0.0, 2.0, 100));
        assert!(is_non_increasing(&p, 0.0, 2.0, 100));
    }

    #[test]
    fn increasing_function_detected() {
        struct Bad;
        impl AttributeCost for Bad {
            fn eval(&self, v: f64) -> f64 {
                v
            }
        }
        assert!(!is_non_increasing(&Bad, 0.0, 1.0, 10));
    }

    #[test]
    fn product_cost_monotone_under_dominance() {
        use skyup_geom::dominance::dominates;
        let f = SumCost::reciprocal(3, 1e-3);
        let better = [0.1, 0.2, 0.3];
        let worse = [0.2, 0.2, 0.4];
        assert!(dominates(&better, &worse));
        assert!(f.product_cost(&better) >= f.product_cost(&worse));
    }
}
