//! Cost-model diagnostics.
//!
//! Every algorithm in this crate assumes the product cost function is
//! *monotone*: `p₁ ≺ p₂ ⇒ f_p(p₁) ≥ f_p(p₂)` (paper Section I-C). A
//! user-supplied cost model that violates this silently breaks the
//! lower bounds and Algorithm 1's candidate pruning. This module checks
//! the assumption against concrete data before a workload runs.

use crate::cost::CostFunction;
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore};

/// A witnessed monotonicity violation: `better` dominates `worse` but
/// was assigned a *lower* product cost.
#[derive(Clone, Debug, PartialEq)]
pub struct MonotonicityViolation {
    /// The dominating (better) point.
    pub better: PointId,
    /// The dominated (worse) point.
    pub worse: PointId,
    /// `f_p(better)`.
    pub better_cost: f64,
    /// `f_p(worse)`.
    pub worse_cost: f64,
}

impl std::fmt::Display for MonotonicityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} dominates {} but costs {} < {}",
            self.better, self.worse, self.better_cost, self.worse_cost
        )
    }
}

/// Checks `cost_fn` for monotonicity over every dominance-comparable
/// pair among the first `sample_limit` points of `store` (pass
/// `usize::MAX` to check all pairs — `O(n²)`). Returns the first
/// violation found, or `Ok(())`.
pub fn verify_monotone_on<C: CostFunction + ?Sized>(
    cost_fn: &C,
    store: &PointStore,
    sample_limit: usize,
) -> Result<(), MonotonicityViolation> {
    let n = store.len().min(sample_limit);
    let tol = 1e-9;
    for i in 0..n {
        let a = PointId(i as u32);
        let pa = store.point(a);
        let ca = cost_fn.product_cost(pa);
        for j in (i + 1)..n {
            let b = PointId(j as u32);
            let pb = store.point(b);
            if dominates(pa, pb) {
                let cb = cost_fn.product_cost(pb);
                if ca + tol < cb {
                    return Err(MonotonicityViolation {
                        better: a,
                        worse: b,
                        better_cost: ca,
                        worse_cost: cb,
                    });
                }
            } else if dominates(pb, pa) {
                let cb = cost_fn.product_cost(pb);
                if cb + tol < ca {
                    return Err(MonotonicityViolation {
                        better: b,
                        worse: a,
                        better_cost: cb,
                        worse_cost: ca,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks monotonicity along every coordinate axis on a grid over
/// `[lo, hi]^dims` — cheaper than the pairwise check and catches
/// per-attribute violations directly: for each dimension, the attribute
/// cost must be non-increasing.
pub fn verify_monotone_axes<C: CostFunction + ?Sized>(
    cost_fn: &C,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Result<(), (usize, f64, f64)> {
    assert!(steps >= 2 && lo < hi);
    let step = (hi - lo) / (steps - 1) as f64;
    for dim in 0..cost_fn.dims() {
        let mut prev = cost_fn.attr_cost(dim, lo);
        for i in 1..steps {
            let v = lo + step * i as f64;
            let c = cost_fn.attr_cost(dim, v);
            if c > prev + 1e-9 {
                return Err((dim, v - step, v));
            }
            prev = c;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AttributeCost, SumCost};

    /// A deliberately broken cost: cheaper to be better on dim 0.
    struct Increasing;
    impl AttributeCost for Increasing {
        fn eval(&self, v: f64) -> f64 {
            v
        }
    }

    #[test]
    fn reciprocal_passes_both_checks() {
        let f = SumCost::reciprocal(2, 1e-2);
        let store = PointStore::from_rows(
            2,
            vec![
                vec![0.1, 0.2],
                vec![0.3, 0.4],
                vec![0.2, 0.9],
                vec![0.3, 0.3],
            ],
        );
        assert!(verify_monotone_on(&f, &store, usize::MAX).is_ok());
        assert!(verify_monotone_axes(&f, 0.0, 2.0, 64).is_ok());
    }

    #[test]
    fn broken_cost_caught_pairwise() {
        let f = SumCost::new(vec![Box::new(Increasing), Box::new(Increasing)]);
        let store = PointStore::from_rows(2, vec![vec![0.1, 0.1], vec![0.9, 0.9]]);
        let err = verify_monotone_on(&f, &store, usize::MAX).unwrap_err();
        assert_eq!(err.better, PointId(0));
        assert_eq!(err.worse, PointId(1));
        assert!(err.better_cost < err.worse_cost);
        assert!(err.to_string().contains("dominates"));
    }

    #[test]
    fn broken_cost_caught_on_axes() {
        let f = SumCost::new(vec![Box::new(Increasing)]);
        let (dim, a, b) = verify_monotone_axes(&f, 0.0, 1.0, 16).unwrap_err();
        assert_eq!(dim, 0);
        assert!(a < b);
    }

    #[test]
    fn incomparable_pairs_never_flagged() {
        // Costs wildly different on incomparable points are fine.
        let f = SumCost::reciprocal(2, 1e-3);
        let store = PointStore::from_rows(2, vec![vec![0.001, 0.9], vec![0.9, 0.001]]);
        assert!(verify_monotone_on(&f, &store, usize::MAX).is_ok());
    }

    #[test]
    fn sample_limit_respected() {
        let f = SumCost::new(vec![Box::new(Increasing)]);
        let store = PointStore::from_rows(1, vec![vec![0.5], vec![0.6]]);
        // Limiting to 1 point checks no pairs at all.
        assert!(verify_monotone_on(&f, &store, 1).is_ok());
        assert!(verify_monotone_on(&f, &store, 2).is_err());
    }
}
