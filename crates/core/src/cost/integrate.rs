//! Integration functions: from attribute costs to product costs
//! (paper Definitions 5–6, Equations 1–2).

use super::attr::{AttributeCost, ReciprocalCost};

/// A product cost function `f_p` together with access to its
/// per-dimension attribute components `f_p.f_a^k` (Algorithm 1 needs
/// both).
pub trait CostFunction: Send + Sync {
    /// The dimensionality of products this function applies to.
    fn dims(&self) -> usize;

    /// The attribute cost `f_a^k(v)` on dimension `dim` — including any
    /// weight the integration applies to that dimension, so that
    /// `product_cost(p) = Σ_k attr_cost(k, p[k])`.
    fn attr_cost(&self, dim: usize, v: f64) -> f64;

    /// The product cost `f_p(p)`.
    ///
    /// # Panics
    /// May panic (debug) if `p.len() != self.dims()`.
    fn product_cost(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dims());
        p.iter()
            .enumerate()
            .map(|(k, &v)| self.attr_cost(k, v))
            .sum()
    }
}

/// Borrows delegate, so `&C` (and `&dyn CostFunction`) can be stored in
/// homogeneous slices — batch entry points take `&[C]` with one cost
/// function per request.
impl<C: CostFunction + ?Sized> CostFunction for &C {
    fn dims(&self) -> usize {
        (**self).dims()
    }

    #[inline]
    fn attr_cost(&self, dim: usize, v: f64) -> f64 {
        (**self).attr_cost(dim, v)
    }

    fn product_cost(&self, p: &[f64]) -> f64 {
        (**self).product_cost(p)
    }
}

/// The summation integration `F^sum` (Equation 1): the product cost is
/// the plain sum of the attribute costs.
pub struct SumCost {
    attrs: Vec<Box<dyn AttributeCost>>,
}

impl SumCost {
    /// Integrates the given attribute cost functions, one per dimension.
    pub fn new(attrs: Vec<Box<dyn AttributeCost>>) -> Self {
        assert!(!attrs.is_empty(), "need at least one dimension");
        Self { attrs }
    }

    /// The paper's experimental configuration: `f_a^i(v) = 1/(v + ε)` on
    /// every one of `dims` dimensions.
    pub fn reciprocal(dims: usize, eps: f64) -> Self {
        Self::new(
            (0..dims)
                .map(|_| Box::new(ReciprocalCost::new(eps)) as Box<dyn AttributeCost>)
                .collect(),
        )
    }
}

impl CostFunction for SumCost {
    fn dims(&self) -> usize {
        self.attrs.len()
    }

    #[inline]
    fn attr_cost(&self, dim: usize, v: f64) -> f64 {
        self.attrs[dim].eval(v)
    }
}

/// The weighted summation integration `F^wgt` (Equation 2):
/// `f_p(p) = Σ_i w_i · f_a^i(p.d_i)` with non-negative weights.
pub struct WeightedSumCost {
    attrs: Vec<Box<dyn AttributeCost>>,
    weights: Vec<f64>,
}

impl WeightedSumCost {
    /// Integrates attribute cost functions with per-dimension weights.
    ///
    /// # Panics
    /// Panics if lengths differ, the set is empty, or any weight is
    /// negative or non-finite.
    pub fn new(attrs: Vec<Box<dyn AttributeCost>>, weights: Vec<f64>) -> Self {
        assert!(!attrs.is_empty(), "need at least one dimension");
        assert_eq!(attrs.len(), weights.len(), "one weight per dimension");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self { attrs, weights }
    }

    /// Weighted reciprocal costs, the weighted analogue of
    /// [`SumCost::reciprocal`].
    pub fn reciprocal(weights: &[f64], eps: f64) -> Self {
        Self::new(
            weights
                .iter()
                .map(|_| Box::new(ReciprocalCost::new(eps)) as Box<dyn AttributeCost>)
                .collect(),
            weights.to_vec(),
        )
    }
}

impl CostFunction for WeightedSumCost {
    fn dims(&self) -> usize {
        self.attrs.len()
    }

    #[inline]
    fn attr_cost(&self, dim: usize, v: f64) -> f64 {
        self.weights[dim] * self.attrs[dim].eval(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCost;

    #[test]
    fn sum_cost_adds_components() {
        let f = SumCost::new(vec![
            Box::new(LinearCost::new(10.0, 1.0)),
            Box::new(LinearCost::new(20.0, 2.0)),
        ]);
        assert_eq!(f.dims(), 2);
        assert_eq!(f.product_cost(&[1.0, 2.0]), 9.0 + 16.0);
        assert_eq!(f.attr_cost(0, 1.0), 9.0);
        assert_eq!(f.attr_cost(1, 2.0), 16.0);
    }

    #[test]
    fn weighted_sum_applies_weights() {
        let f = WeightedSumCost::new(
            vec![
                Box::new(LinearCost::new(10.0, 0.0)),
                Box::new(LinearCost::new(10.0, 0.0)),
            ],
            vec![1.0, 3.0],
        );
        assert_eq!(f.product_cost(&[0.0, 0.0]), 10.0 + 30.0);
        assert_eq!(f.attr_cost(1, 0.0), 30.0);
    }

    #[test]
    fn zero_weight_mutes_dimension() {
        let f = WeightedSumCost::reciprocal(&[1.0, 0.0], 1e-3);
        let cheap = f.product_cost(&[0.5, 0.0]);
        let same = f.product_cost(&[0.5, 100.0]);
        assert_eq!(cheap, same);
    }

    #[test]
    fn reciprocal_constructor_matches_paper() {
        let f = SumCost::reciprocal(3, 0.5);
        // Each dimension contributes 1/(v + 0.5).
        assert!((f.product_cost(&[0.5, 0.5, 0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one weight per dimension")]
    fn weight_length_mismatch_panics() {
        let _ = WeightedSumCost::new(vec![Box::new(LinearCost::new(1.0, 0.0))], vec![1.0, 2.0]);
    }
}
