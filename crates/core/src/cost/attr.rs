//! Attribute cost functions (paper Definition 4).

/// The cost of achieving a given value on one attribute.
///
/// For the paper's algorithms to be correct the function must be
/// **non-increasing** in the attribute value: with smaller-is-better
/// semantics, a better (smaller) value costs at least as much to
/// manufacture. All built-in implementations satisfy this.
pub trait AttributeCost: Send + Sync {
    /// The manufacturing cost of attribute value `v`.
    fn eval(&self, v: f64) -> f64;
}

/// `f_a(v) = 1 / (v + ε)` — the function used throughout the paper's
/// empirical study (Section IV-A). Strictly decreasing on `v > -ε`; the
/// cost explodes as the attribute approaches its ideal value `0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReciprocalCost {
    /// Regularizer keeping the cost finite at `v = 0`.
    pub eps: f64,
}

impl ReciprocalCost {
    /// Creates the function; `eps` must be positive.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0, "ReciprocalCost requires eps > 0");
        Self { eps }
    }
}

impl AttributeCost for ReciprocalCost {
    #[inline]
    fn eval(&self, v: f64) -> f64 {
        1.0 / (v + self.eps)
    }
}

/// `f_a(v) = base − slope · v` with `slope >= 0` — a linear cost where
/// each unit of quality improvement costs the same.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearCost {
    /// Cost at `v = 0` (the ideal value).
    pub base: f64,
    /// Cost saved per unit of attribute value; must be non-negative.
    pub slope: f64,
}

impl LinearCost {
    /// Creates the function; `slope` must be non-negative.
    pub fn new(base: f64, slope: f64) -> Self {
        assert!(slope >= 0.0, "LinearCost requires slope >= 0");
        Self { base, slope }
    }
}

impl AttributeCost for LinearCost {
    #[inline]
    fn eval(&self, v: f64) -> f64 {
        self.base - self.slope * v
    }
}

/// `f_a(v) = scale · (v + ε)^(−exponent)` — a generalized reciprocal
/// with tunable steepness; `exponent = 1` recovers a scaled
/// [`ReciprocalCost`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerCost {
    /// Multiplicative scale; must be positive.
    pub scale: f64,
    /// Decay exponent; must be positive.
    pub exponent: f64,
    /// Regularizer keeping the cost finite at `v = 0`.
    pub eps: f64,
}

impl PowerCost {
    /// Creates the function with positivity checks on all parameters.
    pub fn new(scale: f64, exponent: f64, eps: f64) -> Self {
        assert!(scale > 0.0 && exponent > 0.0 && eps > 0.0);
        Self {
            scale,
            exponent,
            eps,
        }
    }
}

impl AttributeCost for PowerCost {
    #[inline]
    fn eval(&self, v: f64) -> f64 {
        self.scale * (v + self.eps).powf(-self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_values() {
        let f = ReciprocalCost::new(0.5);
        assert_eq!(f.eval(0.5), 1.0);
        assert!(f.eval(0.0) > f.eval(1.0));
    }

    #[test]
    fn linear_values() {
        let f = LinearCost::new(10.0, 2.0);
        assert_eq!(f.eval(0.0), 10.0);
        assert_eq!(f.eval(1.0), 8.0);
    }

    #[test]
    fn power_generalizes_reciprocal() {
        let p = PowerCost::new(1.0, 1.0, 0.25);
        let r = ReciprocalCost::new(0.25);
        for v in [0.0, 0.3, 1.0, 1.7] {
            assert!((p.eval(v) - r.eval(v)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "eps > 0")]
    fn reciprocal_rejects_zero_eps() {
        let _ = ReciprocalCost::new(0.0);
    }

    #[test]
    #[should_panic(expected = "slope >= 0")]
    fn linear_rejects_negative_slope() {
        let _ = LinearCost::new(1.0, -1.0);
    }
}
