//! Upgrading over discrete attribute domains (the paper's first
//! research direction in Section VI).
//!
//! Many quality attributes are not continuously tunable: camera
//! resolutions come in sensor steps, hotel star ratings in halves,
//! battery capacities in cell sizes. This module reruns Algorithm 1's
//! candidate enumeration over **per-dimension level sets**: instead of
//! beating a competitor value `v` by the infinitesimal `ε`, an upgraded
//! attribute snaps to the *largest allowed level strictly below `v`*.
//! Ordered categorical attributes are handled by encoding categories as
//! their rank (best = smallest), with one cost-table entry per level.
//!
//! Because snapping can overshoot (there may be no level just below a
//! competitor), each candidate is feasibility-checked explicitly, and a
//! product may be impossible to upgrade within its domain — the
//! function then returns `None`.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore};

/// The allowed values of every dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscreteDomains {
    levels: Vec<Vec<f64>>,
}

impl DiscreteDomains {
    /// Creates domains from per-dimension level lists.
    ///
    /// # Panics
    /// Panics if any list is empty, unsorted, non-finite, or contains
    /// duplicates.
    pub fn new(levels: Vec<Vec<f64>>) -> Self {
        assert!(!levels.is_empty(), "need at least one dimension");
        for (d, ls) in levels.iter().enumerate() {
            assert!(!ls.is_empty(), "dimension {d} has no levels");
            assert!(
                ls.iter().all(|v| v.is_finite()),
                "dimension {d} has non-finite levels"
            );
            assert!(
                ls.windows(2).all(|w| w[0] < w[1]),
                "dimension {d} levels must be strictly ascending"
            );
        }
        Self { levels }
    }

    /// Uniformly spaced levels `lo, lo+step, …` per dimension — handy
    /// for tests and for quantizing continuous data.
    pub fn uniform(dims: usize, lo: f64, step: f64, count: usize) -> Self {
        assert!(step > 0.0 && count > 0);
        Self::new(
            (0..dims)
                .map(|_| (0..count).map(|i| lo + step * i as f64).collect())
                .collect(),
        )
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.levels.len()
    }

    /// The levels of one dimension.
    pub fn levels(&self, dim: usize) -> &[f64] {
        &self.levels[dim]
    }

    /// The largest allowed level strictly below `v` on `dim`.
    pub fn snap_below(&self, dim: usize, v: f64) -> Option<f64> {
        let ls = &self.levels[dim];
        match ls.partition_point(|&l| l < v) {
            0 => None,
            i => Some(ls[i - 1]),
        }
    }

    /// Whether `p` uses only allowed levels.
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .enumerate()
            .all(|(d, &v)| self.levels[d].binary_search_by(|l| l.total_cmp(&v)).is_ok())
    }
}

/// Computes the cheapest discrete-domain upgrade of `t` against
/// `skyline`, or `None` when no candidate in the domain escapes
/// domination. `t` itself must lie on the domain grid.
pub fn upgrade_single_discrete<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    skyline: &[PointId],
    t: &[f64],
    domains: &DiscreteDomains,
    cost_fn: &C,
    _cfg: &UpgradeConfig,
) -> Option<(f64, Vec<f64>)> {
    let dims = t.len();
    assert_eq!(domains.dims(), dims, "domain dimensionality mismatch");
    debug_assert!(domains.contains(t), "product must lie on the domain grid");
    if skyline.is_empty() {
        return Some((0.0, t.to_vec()));
    }

    let base = cost_fn.product_cost(t);
    let feasible = |candidate: &[f64]| -> bool {
        !skyline
            .iter()
            .any(|&s| dominates(p_store.point(s), candidate))
    };
    let mut best: Option<(f64, Vec<f64>)> = None;
    let consider = |candidate: &[f64], best: &mut Option<(f64, Vec<f64>)>| {
        if !feasible(candidate) {
            return;
        }
        let cost = cost_fn.product_cost(candidate) - base;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            *best = Some((cost, candidate.to_vec()));
        }
    };

    let mut order: Vec<PointId> = skyline.to_vec();
    let mut candidate = vec![0.0; dims];
    for k in 0..dims {
        order.sort_by(|&a, &b| p_store.point(a)[k].total_cmp(&p_store.point(b)[k]));

        // Single-dimension candidate: snap below the best competitor.
        if let Some(v) = domains.snap_below(k, p_store.point(order[0])[k]) {
            candidate.copy_from_slice(t);
            candidate[k] = v.min(t[k]);
            consider(&candidate, &mut best);
        }

        // Pair candidates: snap below s_j on D_k, below s_i elsewhere.
        for w in order.windows(2) {
            let s_i = p_store.point(w[0]);
            let s_j = p_store.point(w[1]);
            for x in 0..dims {
                let bound = if x == k { s_j[x] } else { s_i[x] };
                match domains.snap_below(x, bound) {
                    Some(v) => candidate[x] = v.min(t[x]),
                    // No level below the bound: keep t's own value; the
                    // feasibility check decides whether that suffices.
                    None => candidate[x] = t[x],
                }
            }
            consider(&candidate, &mut best);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::upgrade_single;

    fn cfg() -> UpgradeConfig {
        UpgradeConfig::with_epsilon(1e-6)
    }

    #[test]
    fn snap_below_semantics() {
        let d = DiscreteDomains::new(vec![vec![1.0, 2.0, 3.0]]);
        assert_eq!(d.snap_below(0, 2.5), Some(2.0));
        assert_eq!(d.snap_below(0, 2.0), Some(1.0)); // strictly below
        assert_eq!(d.snap_below(0, 1.0), None);
        assert_eq!(d.snap_below(0, 100.0), Some(3.0));
    }

    #[test]
    fn phone_camera_steps() {
        // Camera megapixels negated (larger better): levels -5..-1.
        // Competitor has -4 (4 MP); our phone has -2 (2 MP) and must jump
        // to -5 (5 MP) to beat it on that dimension.
        let mut p = PointStore::new(2);
        let s = p.push(&[150.0, -4.0]); // weight 150g, 4 MP
        let t = [160.0, -2.0];
        let domains = DiscreteDomains::new(vec![
            (80..=250).step_by(10).map(|w| w as f64).collect(), // weight in 10g steps
            vec![-5.0, -4.0, -3.0, -2.0, -1.0],                 // megapixels
        ]);
        let f = SumCost::new(vec![
            Box::new(crate::cost::LinearCost::new(500.0, 1.0)),
            Box::new(crate::cost::LinearCost::new(100.0, 10.0)),
        ]);
        let (cost, up) =
            upgrade_single_discrete(&p, &[s], &t, &domains, &f, &cfg()).expect("feasible");
        assert!(domains.contains(&up));
        assert!(!dominates(p.point(s), &up));
        assert!(cost > 0.0);
        // Two escapes possible: weight to 140g (cost 20) or camera to
        // -5 (cost 30). The cheaper weight cut wins.
        assert_eq!(up, vec![140.0, -2.0]);
        assert!((cost - 20.0).abs() < 1e-9);
    }

    #[test]
    fn no_feasible_level_returns_none() {
        let mut p = PointStore::new(2);
        // Competitor sits at the domain's best corner.
        let s = p.push(&[1.0, 1.0]);
        let t = [3.0, 3.0];
        let domains = DiscreteDomains::new(vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]]);
        let f = SumCost::reciprocal(2, 1e-2);
        assert_eq!(
            upgrade_single_discrete(&p, &[s], &t, &domains, &f, &cfg()),
            None
        );
    }

    #[test]
    fn dense_grid_approaches_continuous_answer() {
        let mut p = PointStore::new(2);
        let sky = vec![
            p.push(&[0.2, 0.6]),
            p.push(&[0.4, 0.4]),
            p.push(&[0.6, 0.2]),
        ];
        let t = [0.8, 0.8];
        let f = SumCost::reciprocal(2, 1e-2);
        let (cont_cost, _) = upgrade_single(&p, &sky, &t, &f, &cfg());
        // A very fine grid: the discrete answer converges from above.
        let domains = DiscreteDomains::uniform(2, 0.0, 0.0005, 2000);
        // Quantize t onto the grid (0.8 is representable).
        let (disc_cost, up) =
            upgrade_single_discrete(&p, &sky, &t, &domains, &f, &cfg()).expect("feasible");
        assert!(domains.contains(&up));
        assert!(disc_cost >= cont_cost - 1e-9);
        assert!(
            (disc_cost - cont_cost).abs() < 0.05 * cont_cost.max(1.0),
            "dense grid should be close: {disc_cost} vs {cont_cost}"
        );
    }

    #[test]
    fn already_competitive_is_free() {
        let p = PointStore::new(2);
        let domains = DiscreteDomains::uniform(2, 0.0, 1.0, 5);
        let f = SumCost::reciprocal(2, 1e-2);
        let out = upgrade_single_discrete(&p, &[], &[2.0, 2.0], &domains, &f, &cfg()).unwrap();
        assert_eq!(out.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_levels_rejected() {
        let _ = DiscreteDomains::new(vec![vec![2.0, 1.0]]);
    }

    #[test]
    fn categorical_encoding_example() {
        // Hotel star rating: categories {1*,2*,3*,4*,5*} encoded as
        // negated rank (larger better). Upgrading a 2* hotel against a
        // 4* competitor with equal price must jump to 5*.
        let mut p = PointStore::new(2);
        let s = p.push(&[100.0, -4.0]);
        let t = [100.0, -2.0];
        let domains = DiscreteDomains::new(vec![
            (50..=200).step_by(25).map(|v| v as f64).collect(),
            vec![-5.0, -4.0, -3.0, -2.0, -1.0],
        ]);
        let f = SumCost::new(vec![
            Box::new(crate::cost::LinearCost::new(300.0, 1.0)),
            Box::new(crate::cost::LinearCost::new(50.0, 5.0)),
        ]);
        let (_, up) =
            upgrade_single_discrete(&p, &[s], &t, &domains, &f, &cfg()).expect("feasible");
        assert!(!dominates(p.point(s), &up));
        // Either price drops below 100 (to 75) or stars reach 5.
        assert!(up == vec![75.0, -2.0] || up == vec![100.0, -5.0]);
    }
}
