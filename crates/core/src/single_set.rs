//! Single-catalog upgrading (paper Section VI, third research
//! direction).
//!
//! When a manufacturer owns a large catalog and wants to upgrade its own
//! uncompetitive products *against the rest of the same catalog*, the
//! competitor and product roles collapse into one set `S`. Because
//! dominance is strict, a product never dominates itself — and exact
//! duplicates never dominate each other — so the dominator skyline of
//! `t ∈ S` computed over all of `S` is exactly the set `t` must escape.
//! The improved-probing machinery therefore applies unchanged.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::result::UpgradeResult;
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::{PointId, PointStore};
use skyup_rtree::RTree;
use skyup_skyline::dominating_skyline;

/// Finds the `k` products of catalog `store` (indexed by `tree`) that
/// can be upgraded most cheaply to escape domination by the rest of the
/// catalog. Products already in the catalog's skyline report cost `0`.
///
/// `candidates` restricts which products are considered for upgrading
/// (e.g. the manufacturer's own line within a market-wide catalog);
/// `None` considers every product.
pub fn single_set_topk<C: CostFunction + ?Sized>(
    store: &PointStore,
    tree: &RTree,
    candidates: Option<&[PointId]>,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    let mut topk = TopK::new(k);
    let all: Vec<PointId>;
    let ids: &[PointId] = match candidates {
        Some(c) => c,
        None => {
            all = store.ids().collect();
            &all
        }
    };
    for &tid in ids {
        let t = store.point(tid);
        let skyline = dominating_skyline(store, tree, t);
        let (cost, upgraded) = upgrade_single(store, &skyline, t, cost_fn, cfg);
        topk.offer(UpgradeResult {
            product: tid,
            original: t.to_vec(),
            upgraded,
            cost,
        });
    }
    topk.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use skyup_geom::dominance::dominates;
    use skyup_rtree::RTreeParams;

    fn catalog() -> (PointStore, RTree) {
        let store = PointStore::from_rows(
            2,
            vec![
                vec![0.1, 0.9],   // skyline
                vec![0.5, 0.5],   // skyline
                vec![0.9, 0.1],   // skyline
                vec![0.6, 0.6],   // dominated by (0.5, 0.5), barely
                vec![0.95, 0.95], // deeply dominated
            ],
        );
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        (store, tree)
    }

    #[test]
    fn skyline_products_cost_zero() {
        let (store, tree) = catalog();
        let cost = SumCost::reciprocal(2, 1e-2);
        let out = single_set_topk(&store, &tree, None, 5, &cost, &UpgradeConfig::default());
        assert_eq!(out.len(), 5);
        let zero_cost: Vec<u32> = out
            .iter()
            .filter(|r| r.cost == 0.0)
            .map(|r| r.product.0)
            .collect();
        assert_eq!(zero_cost, vec![0, 1, 2]);
    }

    #[test]
    fn dominated_products_escape_after_upgrade() {
        let (store, tree) = catalog();
        let cost = SumCost::reciprocal(2, 1e-2);
        let out = single_set_topk(&store, &tree, None, 5, &cost, &UpgradeConfig::default());
        for r in out.iter().filter(|r| r.cost > 0.0) {
            // After the upgrade, nothing in the catalog dominates it.
            let clear = store
                .iter()
                .all(|(id, c)| id == r.product || !dominates(c, &r.upgraded));
            assert!(clear, "product {:?} still dominated", r.product);
        }
        // The barely dominated product is cheaper than the deep one.
        let barely = out.iter().find(|r| r.product.0 == 3).unwrap();
        let deep = out.iter().find(|r| r.product.0 == 4).unwrap();
        assert!(barely.cost < deep.cost);
    }

    #[test]
    fn candidate_restriction() {
        let (store, tree) = catalog();
        let cost = SumCost::reciprocal(2, 1e-2);
        let out = single_set_topk(
            &store,
            &tree,
            Some(&[PointId(3), PointId(4)]),
            10,
            &cost,
            &UpgradeConfig::default(),
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.product.0 == 3 || r.product.0 == 4));
    }

    #[test]
    fn duplicates_are_mutually_harmless() {
        let store = PointStore::from_rows(2, vec![vec![0.5, 0.5]; 3]);
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        let cost = SumCost::reciprocal(2, 1e-2);
        let out = single_set_topk(&store, &tree, None, 3, &cost, &UpgradeConfig::default());
        assert!(out.iter().all(|r| r.cost == 0.0));
    }
}
