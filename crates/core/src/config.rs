//! Tuning knobs shared by all upgrading algorithms.

/// Configuration for the upgrading algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpgradeConfig {
    /// The strict-improvement margin ε of Algorithm 1: an upgraded value
    /// is placed `ε` below the competitor value it must beat. Must be
    /// positive and small relative to the data scale.
    pub epsilon: f64,

    /// When `true`, Algorithm 1 additionally evaluates the "beyond the
    /// last skyline point" candidate on every sort dimension (match the
    /// last skyline point on all other dimensions and keep the original
    /// value on the sort dimension). The paper's pseudo code stops at
    /// consecutive pairs; the extra candidate preserves correctness and
    /// can only lower the reported cost. Off by default for fidelity;
    /// the ablation bench measures its effect.
    pub extended_candidates: bool,
}

impl UpgradeConfig {
    /// Creates a configuration with the given ε.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and positive.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be finite and positive"
        );
        Self {
            epsilon,
            extended_candidates: false,
        }
    }
}

impl Default for UpgradeConfig {
    /// `epsilon = 1e-6`, paper-faithful candidate enumeration.
    fn default() -> Self {
        Self {
            epsilon: 1e-6,
            extended_candidates: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = UpgradeConfig::default();
        assert!(c.epsilon > 0.0);
        assert!(!c.extended_candidates);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_epsilon() {
        let _ = UpgradeConfig::with_epsilon(0.0);
    }
}
