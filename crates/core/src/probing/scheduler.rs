//! Work-stealing probe scheduler with an optional bound-sorted probe
//! order and a shared admission threshold.
//!
//! Static chunking (one contiguous slice of `T` per worker) balances
//! poorly: dominator-skyline cost varies wildly across products, so one
//! unlucky slice can hold the whole join back. The scheduler instead
//! lets workers *claim* products one at a time from a shared atomic
//! counter — idle workers steal whatever is left, so the makespan tracks
//! the slowest single product rather than the slowest slice.
//!
//! Three strategies share one engine:
//!
//! * [`ProbeStrategy::StaticChunk`] — the legacy contiguous partition,
//!   kept as the bench baseline.
//! * [`ProbeStrategy::WorkStealing`] — atomic-counter claims in product
//!   id order; per-worker top-k, no pruning. Merged counters are fully
//!   deterministic (every product is evaluated exactly once).
//! * [`ProbeStrategy::BoundSorted`] — claims walk a probe order
//!   pre-sorted ascending by the cheap admissible NLB/ALB list bound
//!   ([`crate::join::list_bound`]), and workers prune against a shared
//!   [`SharedThreshold`] cell that caches the global top-k admission
//!   threshold. Because the bound stream is sorted and admissible, the
//!   first claim whose bound exceeds the threshold proves every
//!   *remaining* claim is also prunable: the worker drains the counter
//!   (`swap(n)`) and accounts the whole tail as `ThresholdPrunes` in one
//!   step.
//!
//! # Why the pruned answer is still exact
//!
//! The shared cell is monotone (CAS-min) and always holds the k-th best
//! cost over a *subset* of the offers, which is an upper bound on the
//! final global threshold θ*. A product is pruned only when its
//! admissible lower bound — and hence its true cost — is *strictly*
//! greater than the cell, so strictly greater than θ*: it could never
//! displace a top-k member. Pruning fires only once k results have been
//! offered (the cell is +∞ before that), so the top-k over the evaluated
//! products equals the top-k over all of `T`, and product ids are
//! distinct, so the `(cost, id)` order — and therefore the returned
//! vector — is bit-identical to sequential
//! [`crate::improved_probing_topk`] at any thread count.
//!
//! # Determinism
//!
//! Results are bit-identical for every strategy and thread count. Merged
//! counters are deterministic for `StaticChunk` and `WorkStealing`
//! (`StealEvents == |T|`); under `BoundSorted` only the invariant
//! `ProductsEvaluated + ThresholdPrunes == |T|` is guaranteed for
//! unlimited runs — *which* products get pruned depends on timing (more
//! threads publish the threshold sooner), and `SharedThresholdUpdates`
//! varies with the interleaving. With one thread the entire run is
//! deterministic.
//!
//! Each worker owns a [`SkylineScratch`] and an [`UpgradeScratch`], so
//! after warmup the probe loop performs no per-product heap allocation
//! (results are only materialized for products that pass the
//! [`TopK::admits`] gate).

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{panic_message, validate_query, SkyupError};
use crate::join::{list_bound, BoundMode, LowerBound};
use crate::probing::pruned::{screen_frontier, PruningStats};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::topk::{SharedThreshold, TopK};
use crate::upgrade::{upgrade_single_into, UpgradeScratch};
use skyup_geom::{PointId, PointStore};
use skyup_obs::{
    timed, Completion, Counter, ExecutionLimits, NullRecorder, Phase, QueryMetrics, Recorder,
};
use skyup_rtree::{EntryRef, RTree};
use skyup_skyline::{dominating_skyline_into, SkylineScratch};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the probe loop distributes the products of `T` across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Contiguous `⌈n/threads⌉`-sized slices, one per worker (the legacy
    /// partition). No stealing, no pruning.
    StaticChunk,
    /// Workers claim products in id order from a shared atomic counter.
    /// No pruning; merged counters are fully deterministic.
    WorkStealing,
    /// Work stealing over a probe order sorted ascending by the
    /// admissible list bound, pruning against a [`SharedThreshold`].
    BoundSorted,
}

impl ProbeStrategy {
    /// Stable snake_case name (bench/CLI vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            ProbeStrategy::StaticChunk => "static_chunk",
            ProbeStrategy::WorkStealing => "work_stealing",
            ProbeStrategy::BoundSorted => "bound_sorted",
        }
    }
}

/// What one worker hands back on clean (non-panicking) exit.
struct WorkerOut {
    part: Vec<UpgradeResult>,
    metrics: Option<QueryMetrics>,
    evaluated: usize,
    pruned: u64,
    completion: Completion,
    visits: u64,
}

/// Everything the engine produced; wrappers decide which parts to
/// surface and which summary counters to bump.
struct EngineOut {
    results: Vec<UpgradeResult>,
    stats: PruningStats,
    completion: Completion,
    evaluated: usize,
    visits: u64,
}

/// The shared engine. Callers guarantee `threads >= 1`, matching
/// dimensionalities, and a non-empty `T`.
#[allow(clippy::too_many_arguments)]
fn run_scheduled<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    strategy: ProbeStrategy,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<EngineOut, SkyupError>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    let n = t_store.len();
    debug_assert!(threads >= 1 && n > 0);
    let collect = rec.is_enabled();
    let dims = p_store.dims();

    // Probe order. BoundSorted pays one admissible list bound per
    // product up front (`LowerBoundEvals` += |T|, under `BoundSort`)
    // and sorts ascending by `(bound, id)`; the other strategies walk
    // id order.
    let (order, bounds): (Vec<u32>, Vec<f64>) = if strategy == ProbeStrategy::BoundSorted {
        timed(rec, Phase::BoundSort, |rec| {
            let frontier = screen_frontier(p_tree);
            let mut bounds = vec![0.0f64; n];
            if !frontier.is_empty() {
                let mut screened: Vec<EntryRef> = Vec::with_capacity(frontier.len());
                for (i, (_tid, t)) in t_store.iter().enumerate() {
                    screened.clear();
                    screened.extend(frontier.iter().copied().filter(|&e| {
                        p_tree
                            .entry_lo(p_store, e)
                            .iter()
                            .zip(t)
                            .all(|(&l, &y)| l <= y)
                    }));
                    bounds[i] = list_bound(
                        t,
                        &screened,
                        p_store,
                        p_tree,
                        cost_fn,
                        LowerBound::Aggressive,
                        BoundMode::Admissible,
                    );
                    rec.bump(Counter::LowerBoundEvals);
                }
            }
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by(|&a, &b| {
                bounds[a as usize]
                    .total_cmp(&bounds[b as usize])
                    .then(a.cmp(&b))
            });
            (order, bounds)
        })
    } else {
        ((0..n as u32).collect(), Vec::new())
    };

    let guard = limits.start();
    let chunk = n.div_ceil(threads);
    let workers = match strategy {
        ProbeStrategy::StaticChunk => n.div_ceil(chunk),
        _ => threads.min(n),
    };
    let per_worker_topk = strategy != ProbeStrategy::BoundSorted;

    // Shared scheduler state: the claim counter, the threshold cache,
    // and (BoundSorted only) the single global top-k.
    let next = AtomicUsize::new(0);
    let threshold = SharedThreshold::new();
    let shared = Mutex::new(TopK::new(k));

    let outcomes: Vec<(usize, Result<WorkerOut, String>)> = timed(rec, Phase::ProbeLoop, |_| {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let mut wguard = guard.clone();
                let (next, threshold, shared) = (&next, &threshold, &shared);
                let (order, bounds) = (order.as_slice(), bounds.as_slice());
                handles.push(scope.spawn(move || {
                    let canceller = wguard.clone();
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut local = collect.then(QueryMetrics::new);
                        let mut topk = per_worker_topk.then(|| TopK::new(k));
                        let mut sky = SkylineScratch::new(dims);
                        let mut upg = UpgradeScratch::new();
                        let mut completion = Completion::Exact;
                        let mut evaluated = 0usize;
                        let mut pruned = 0u64;
                        let mut range = if strategy == ProbeStrategy::StaticChunk {
                            w * chunk..((w + 1) * chunk).min(n)
                        } else {
                            0..0
                        };
                        loop {
                            if let Err(i) = wguard.checkpoint() {
                                completion = Completion::Partial(i);
                                break;
                            }
                            let pos = if strategy == ProbeStrategy::StaticChunk {
                                match range.next() {
                                    Some(p) => p,
                                    None => break,
                                }
                            } else {
                                let p = next.fetch_add(1, Ordering::Relaxed);
                                if p >= n {
                                    break;
                                }
                                if let Some(m) = &mut local {
                                    m.bump(Counter::StealEvents);
                                }
                                p
                            };
                            let idx = order[pos] as usize;
                            if strategy == ProbeStrategy::BoundSorted
                                && bounds[idx] > threshold.get()
                            {
                                // The stream is sorted by an admissible
                                // bound and the cell only tightens:
                                // every unclaimed position is prunable
                                // too. Drain the counter and account the
                                // whole tail at once.
                                let drained = next.swap(n, Ordering::Relaxed).min(n);
                                let tail = (n - drained) as u64;
                                pruned += 1 + tail;
                                if let Some(m) = &mut local {
                                    m.incr(Counter::ThresholdPrunes, 1 + tail);
                                }
                                break;
                            }
                            let tid = PointId(idx as u32);
                            let t = t_store.point(tid);
                            let sky_res = match &mut local {
                                Some(m) => timed(m, Phase::DominatingSky, |m| {
                                    dominating_skyline_into(
                                        p_store,
                                        p_tree,
                                        t,
                                        m,
                                        &mut wguard,
                                        &mut sky,
                                    )
                                }),
                                None => dominating_skyline_into(
                                    p_store,
                                    p_tree,
                                    t,
                                    &mut NullRecorder,
                                    &mut wguard,
                                    &mut sky,
                                ),
                            };
                            if let Err(i) = sky_res {
                                completion = Completion::Partial(i);
                                break;
                            }
                            let cost = match &mut local {
                                Some(m) => timed(m, Phase::Upgrade, |_| {
                                    upgrade_single_into(
                                        p_store,
                                        sky.skyline(),
                                        t,
                                        cost_fn,
                                        cfg,
                                        &mut upg,
                                    )
                                }),
                                None => upgrade_single_into(
                                    p_store,
                                    sky.skyline(),
                                    t,
                                    cost_fn,
                                    cfg,
                                    &mut upg,
                                ),
                            };
                            if let Some(m) = &mut local {
                                m.bump(Counter::ProductsEvaluated);
                            }
                            evaluated += 1;
                            match &mut topk {
                                Some(tk) => {
                                    // Build the (allocating) result only
                                    // when it will actually be kept.
                                    if tk.admits(cost, idx as u32) {
                                        tk.offer(UpgradeResult {
                                            product: tid,
                                            original: t.to_vec(),
                                            upgraded: upg.upgraded().to_vec(),
                                            cost,
                                        });
                                    }
                                }
                                None => {
                                    // Cheap pre-gate on the cached
                                    // threshold (conservative: the cell
                                    // never under-estimates), then take
                                    // the lock only for plausible offers.
                                    if cost <= threshold.get() {
                                        let mut tk = shared.lock().expect("top-k mutex poisoned");
                                        if tk.admits(cost, idx as u32) {
                                            tk.offer(UpgradeResult {
                                                product: tid,
                                                original: t.to_vec(),
                                                upgraded: upg.upgraded().to_vec(),
                                                cost,
                                            });
                                        }
                                        let th = tk.threshold();
                                        drop(tk);
                                        if threshold.tighten(th) {
                                            if let Some(m) = &mut local {
                                                m.bump(Counter::SharedThresholdUpdates);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        WorkerOut {
                            part: topk.map(TopK::into_sorted).unwrap_or_default(),
                            metrics: local,
                            evaluated,
                            pruned,
                            completion,
                            visits: wguard.node_visits(),
                        }
                    }));
                    match out {
                        Ok(o) => (w, Ok(o)),
                        Err(payload) => {
                            // Stop the sibling workers at their next
                            // checkpoint; their output is dropped anyway.
                            canceller.cancel();
                            (w, Err(panic_message(payload)))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("scheduled probing worker escaped its unwind barrier")
                })
                .collect()
        })
    });

    // A panic anywhere poisons the whole answer: report it before
    // absorbing any worker's output.
    for (w, out) in &outcomes {
        if let Err(message) = out {
            rec.bump(Counter::WorkerPanics);
            return Err(SkyupError::WorkerPanicked {
                worker: *w,
                message: message.clone(),
            });
        }
    }

    let mut merged = TopK::new(k);
    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;
    let mut pruned = 0u64;
    let mut visits = 0u64;
    for (_, out) in outcomes {
        let o = out.expect("panics were handled above");
        if let Some(m) = o.metrics {
            rec.absorb(&m);
        }
        if completion.is_exact() {
            completion = o.completion;
        }
        evaluated += o.evaluated;
        pruned += o.pruned;
        visits += o.visits;
        for r in o.part {
            merged.offer(r);
        }
    }
    let results = if per_worker_topk {
        merged.into_sorted()
    } else {
        shared
            .into_inner()
            .expect("top-k mutex poisoned")
            .into_sorted()
    };
    Ok(EngineOut {
        results,
        stats: PruningStats {
            evaluated: evaluated as u64,
            pruned,
        },
        completion,
        evaluated,
        visits,
    })
}

/// Runs improved probing under `strategy` across `threads` workers and
/// returns the `k` cheapest upgrades (bit-identical to sequential
/// [`crate::improved_probing_topk`]) plus the evaluated/pruned split.
///
/// `threads == 0` is clamped to one worker thread, matching
/// [`crate::improved_probing_topk_parallel`].
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_scheduled<C>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    strategy: ProbeStrategy,
) -> (Vec<UpgradeResult>, PruningStats)
where
    C: CostFunction + Sync + ?Sized,
{
    improved_probing_topk_scheduled_rec(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        strategy,
        &mut NullRecorder,
    )
}

/// [`improved_probing_topk_scheduled`] with instrumentation. Each worker
/// collects into a private [`QueryMetrics`] (only when `rec` is enabled)
/// which is folded into `rec` after the join.
///
/// # Panics
/// Propagates a worker panic (after all workers have been joined), like
/// the legacy parallel entry point. Use
/// [`try_improved_probing_topk_scheduled`] for contained panics.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_scheduled_rec<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    strategy: ProbeStrategy,
    rec: &mut R,
) -> (Vec<UpgradeResult>, PruningStats)
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    let threads = threads.max(1);
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return (Vec::new(), PruningStats::default());
    }
    match run_scheduled(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        strategy,
        &ExecutionLimits::none(),
        rec,
    ) {
        Ok(out) => {
            rec.incr(Counter::ResultsEmitted, out.results.len() as u64);
            (out.results, out.stats)
        }
        Err(SkyupError::WorkerPanicked { worker, message }) => {
            panic!("probing worker {worker} panicked: {message}")
        }
        Err(e) => unreachable!("unlimited scheduled probing failed: {e}"),
    }
}

/// Fallible, guarded scheduled probing: input validation as in
/// [`crate::probing::try_basic_probing_topk`] plus `threads >= 1`, then
/// each worker claims products under a forked guard sharing the global
/// budgets. A worker that panics is contained by an unwind barrier: it
/// cancels the shared token (stopping its siblings at their next
/// checkpoint), every worker's output is discarded, and the call returns
/// [`SkyupError::WorkerPanicked`].
///
/// On a limit interruption each worker keeps the exact top-k over the
/// products it fully evaluated, so the merged [`Completion::Partial`]
/// answer is the exact top-k over the union of the evaluated products
/// (under [`ProbeStrategy::BoundSorted`] the shared collector has the
/// same property: the offer gate only skips products provably outside
/// the top-k of the evaluated set). Unlimited runs are bit-identical to
/// [`improved_probing_topk_scheduled_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_improved_probing_topk_scheduled<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    strategy: ProbeStrategy,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<(AnytimeTopK, PruningStats), SkyupError>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    if threads == 0 {
        return Err(SkyupError::InvalidConfig(
            "need at least one worker thread".into(),
        ));
    }
    validate_query(p_store, p_tree, t_store, k, cost_fn)?;
    if t_store.is_empty() {
        return Ok((
            AnytimeTopK {
                results: Vec::new(),
                completion: Completion::Exact,
                evaluated: 0,
            },
            PruningStats::default(),
        ));
    }
    let out = run_scheduled(
        p_store, p_tree, t_store, k, cost_fn, cfg, threads, strategy, limits, rec,
    )?;
    rec.incr(Counter::ResultsEmitted, out.results.len() as u64);
    rec.incr(Counter::GuardedNodeVisits, out.visits);
    if !out.completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    Ok((
        AnytimeTopK {
            results: out.results,
            completion: out.completion,
            evaluated: out.evaluated,
        },
        out.stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, SumCost};

    fn linear_cost(dims: usize) -> SumCost {
        SumCost::new(
            (0..dims)
                .map(|_| Box::new(LinearCost::new(2.0, 1.0)) as Box<dyn crate::cost::AttributeCost>)
                .collect(),
        )
    }
    use crate::probing::improved_probing_topk;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    /// Interleaved domains + linear cost: the workload where the bound
    /// screen actually fires (reciprocal costs keep every bound at ~0).
    fn pruning_workload() -> (PointStore, PointStore, RTree, SumCost) {
        let p = pseudo_random_store(500, 3, 0.0, 1.0, 0x51);
        let t = pseudo_random_store(120, 3, 0.3, 1.3, 0x52);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        (p, t, rp, linear_cost(3))
    }

    #[test]
    fn every_strategy_matches_sequential_bit_for_bit() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        let seq = improved_probing_topk(&p, &rp, &t, 10, &cost, &cfg);
        for strategy in [
            ProbeStrategy::StaticChunk,
            ProbeStrategy::WorkStealing,
            ProbeStrategy::BoundSorted,
        ] {
            for threads in [1, 2, 7] {
                let (out, stats) = improved_probing_topk_scheduled(
                    &p, &rp, &t, 10, &cost, &cfg, threads, strategy,
                );
                assert_eq!(out.len(), seq.len(), "{strategy:?} threads={threads}");
                for (a, b) in seq.iter().zip(&out) {
                    assert_eq!(a.product, b.product, "{strategy:?} threads={threads}");
                    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                    assert_eq!(a.upgraded, b.upgraded);
                    assert_eq!(a.original, b.original);
                }
                assert_eq!(
                    stats.evaluated + stats.pruned,
                    t.len() as u64,
                    "{strategy:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn bound_sorted_actually_prunes_on_interleaved_workload() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        let (_, stats) = improved_probing_topk_scheduled(
            &p,
            &rp,
            &t,
            5,
            &cost,
            &cfg,
            1,
            ProbeStrategy::BoundSorted,
        );
        assert!(
            stats.pruned > 0,
            "the interleaved workload must exercise the screen: {stats:?}"
        );
        assert_eq!(stats.evaluated + stats.pruned, t.len() as u64);
    }

    #[test]
    fn single_thread_bound_sorted_is_deterministic_including_metrics() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        let run = || {
            let mut m = QueryMetrics::new();
            let (out, stats) = improved_probing_topk_scheduled_rec(
                &p,
                &rp,
                &t,
                5,
                &cost,
                &cfg,
                1,
                ProbeStrategy::BoundSorted,
                &mut m,
            );
            let snapshot: Vec<u64> = Counter::ALL.iter().map(|&c| m.get(c)).collect();
            (out, stats, snapshot)
        };
        let (a_out, a_stats, a_counters) = run();
        let (b_out, b_stats, b_counters) = run();
        assert_eq!(a_stats, b_stats);
        assert_eq!(a_counters, b_counters);
        assert_eq!(a_out.len(), b_out.len());
        for (x, y) in a_out.iter().zip(&b_out) {
            assert_eq!(x.product, y.product);
            assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        }
    }

    #[test]
    fn work_stealing_steal_events_equal_t_len() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        for threads in [1, 3, 8] {
            let mut m = QueryMetrics::new();
            let _ = improved_probing_topk_scheduled_rec(
                &p,
                &rp,
                &t,
                5,
                &cost,
                &cfg,
                threads,
                ProbeStrategy::WorkStealing,
                &mut m,
            );
            assert_eq!(
                m.get(Counter::StealEvents),
                t.len() as u64,
                "threads={threads}"
            );
            assert_eq!(m.get(Counter::ProductsEvaluated), t.len() as u64);
            assert_eq!(m.get(Counter::ThresholdPrunes), 0);
        }
    }

    #[test]
    fn bound_sorted_counter_invariant_holds_at_any_thread_count() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        for threads in [1, 2, 4, 8] {
            let mut m = QueryMetrics::new();
            let (_, stats) = improved_probing_topk_scheduled_rec(
                &p,
                &rp,
                &t,
                5,
                &cost,
                &cfg,
                threads,
                ProbeStrategy::BoundSorted,
                &mut m,
            );
            assert_eq!(
                m.get(Counter::ProductsEvaluated) + m.get(Counter::ThresholdPrunes),
                t.len() as u64,
                "threads={threads}"
            );
            assert_eq!(m.get(Counter::ProductsEvaluated), stats.evaluated);
            assert_eq!(m.get(Counter::ThresholdPrunes), stats.pruned);
            assert_eq!(m.get(Counter::LowerBoundEvals), t.len() as u64);
        }
    }

    #[test]
    fn try_scheduled_unlimited_matches_plain() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        for strategy in [ProbeStrategy::WorkStealing, ProbeStrategy::BoundSorted] {
            let (plain, _) =
                improved_probing_topk_scheduled(&p, &rp, &t, 8, &cost, &cfg, 3, strategy);
            let (any, _) = try_improved_probing_topk_scheduled(
                &p,
                &rp,
                &t,
                8,
                &cost,
                &cfg,
                3,
                strategy,
                &ExecutionLimits::none(),
                &mut NullRecorder,
            )
            .unwrap();
            assert!(any.completion.is_exact());
            assert_eq!(any.results.len(), plain.len());
            for (a, b) in any.results.iter().zip(&plain) {
                assert_eq!(a.product, b.product);
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            }
        }
    }

    #[test]
    fn try_scheduled_partial_results_stay_exact_per_product() {
        let (p, t, rp, cost) = pruning_workload();
        let cfg = UpgradeConfig::default();
        let seq = improved_probing_topk(&p, &rp, &t, t.len(), &cost, &cfg);
        let by_product: std::collections::HashMap<u32, &UpgradeResult> =
            seq.iter().map(|r| (r.product.0, r)).collect();
        for budget in [50u64, 400, 2_000] {
            for threads in [1, 3] {
                let limits = ExecutionLimits::none().with_max_node_visits(budget);
                let (any, stats) = try_improved_probing_topk_scheduled(
                    &p,
                    &rp,
                    &t,
                    5,
                    &cost,
                    &cfg,
                    threads,
                    ProbeStrategy::BoundSorted,
                    &limits,
                    &mut NullRecorder,
                )
                .unwrap();
                assert!(any.results.len() <= 5.min(any.evaluated));
                assert!(any
                    .results
                    .windows(2)
                    .all(|w| (w[0].cost, w[0].product.0) <= (w[1].cost, w[1].product.0)));
                for r in &any.results {
                    let expect = by_product[&r.product.0];
                    assert_eq!(r.cost.to_bits(), expect.cost.to_bits());
                    assert_eq!(r.upgraded, expect.upgraded);
                }
                assert!(stats.evaluated as usize == any.evaluated);
            }
        }
    }

    #[test]
    fn try_scheduled_rejects_zero_threads() {
        let (p, t, rp, cost) = pruning_workload();
        let err = try_improved_probing_topk_scheduled(
            &p,
            &rp,
            &t,
            5,
            &cost,
            &UpgradeConfig::default(),
            0,
            ProbeStrategy::BoundSorted,
            &ExecutionLimits::none(),
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidConfig(_)));
    }

    #[test]
    fn reciprocal_cost_keeps_screen_idle_but_results_exact() {
        // Bounds collapse to ~0 under reciprocal costs, so BoundSorted
        // degenerates to plain stealing — results must still match.
        let p = pseudo_random_store(400, 2, 0.0, 1.0, 0x61);
        let t = pseudo_random_store(61, 2, 0.5, 1.5, 0x62);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let cfg = UpgradeConfig::default();
        let seq = improved_probing_topk(&p, &rp, &t, 7, &cost, &cfg);
        let (out, stats) = improved_probing_topk_scheduled(
            &p,
            &rp,
            &t,
            7,
            &cost,
            &cfg,
            4,
            ProbeStrategy::BoundSorted,
        );
        assert_eq!(out.len(), seq.len());
        for (a, b) in seq.iter().zip(&out) {
            assert_eq!(a.product, b.product);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        assert_eq!(stats.evaluated + stats.pruned, t.len() as u64);
    }
}
