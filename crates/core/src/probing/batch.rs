//! Shard-parallel batch execution of per-product upgrade answers over
//! one shared skyline.
//!
//! A serving layer that drains its queue into per-epoch batches ends up
//! with the union of many requests' products, all to be answered
//! against the *same* snapshot. This module evaluates that union once:
//!
//! * **One shared skyline, one shared columnar view** — the snapshot's
//!   live-set skyline is gathered into a [`ColumnarPoints`] buffer once
//!   per batch, and every worker scans it with the blockwise dominator
//!   kernel ([`skyup_geom::collect_dominators_cols`]) instead of a
//!   scalar filter per product.
//! * **Work stealing** — workers claim items from a shared atomic
//!   counter in *request-major index order* (all of request 0's
//!   products in order, then request 1's, ...). The claim order is load
//!   balancing *and* a correctness tool: see "Per-request limits"
//!   below.
//! * **Cross-request dominator memo** — dominator sets are memoized and
//!   reused across requests by ADR containment: if `t[i] <= t'[i]` on
//!   every dimension then `dominators(t) ⊆ dominators(t')` (any `s ≺ t`
//!   satisfies `s ≤ t ≤ t'` with a strict coordinate carried through),
//!   so a memoized superset list is filtered instead of re-scanning the
//!   whole skyline. An exact coordinate-bit match reuses the list
//!   verbatim.
//!
//! # Why batched answers are bit-identical
//!
//! A per-product answer is a pure function of `(t, skyline, cost_fn)`:
//! the dominator set is the order-preserving filter of the id-sorted
//! skyline (`skyline(dominators(t)) = {s ∈ skyline(P) : s ≺ t}`), and
//! [`upgrade_single_into`] is deterministic given that list. All three
//! dominator paths produce the *same list in the same order*: the
//! columnar kernel enumerates dominator positions ascending (= skyline
//! order), an exact memo hit returns a list produced that way, and an
//! ADR-containment filter of a superset list is the same subsequence of
//! the skyline as a full filter (the superset property guarantees no
//! dominator is missing, and filtering preserves order). So every item's
//! `(cost, upgraded)` is bit-identical to the sequential
//! `dominators_from_skyline` + `upgrade_single` path, regardless of
//! thread count, claim interleaving, or memo state.
//!
//! # Per-request limits
//!
//! Each request brings its own (already started) [`ExecGuard`]; workers
//! fork it ([`ExecGuard::clone`]) so one request's deadline or budget
//! never touches another's. A worker checks the owning request's guard
//! at claim time and *skips* the item (outcome `None`) when a
//! stop-now interrupt — deadline, cancellation, shed — has fired. A
//! sticky *budget* trip does not cut: budgets are charged at admission
//! (the caller ran `visit_node` per item before building the work
//! list), so every item in the list is already paid for and the
//! sequential path would have computed it before noticing the
//! exhausted budget. Because guard trips are sticky and claims walk each
//! request's products in index order, the cut items of a request are a
//! *suffix* in claim order — but a later-claimed item may still finish
//! on another worker after an earlier item was cut. Callers that need
//! exact-prefix semantics (the serving contract) therefore truncate at
//! the request's first cut index: everything before it is guaranteed
//! present (claimed earlier, and not cut — otherwise it would be the
//! first cut), so the retained prefix is complete and each retained
//! answer is exact. [`BatchOutput::first_cut`] reports that index.
//!
//! Deliberate deviation from the bound-sorted scheduler: batch claims
//! are *not* sorted by a screening lower bound, and there is no shared
//! admission threshold. Every computed answer must be materialized
//! anyway — the result cache learns batch fills, and per-request top-k
//! merges must fold in cache hits the executor never sees — so
//! threshold pruning could not skip any work, while a bound-sorted
//! claim order would break the first-cut prefix guarantee above.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{panic_message, SkyupError};
use crate::upgrade::{upgrade_single_presorted_into, DimOrders, UpgradeScratch};
use skyup_geom::{ColumnarPoints, PointId, PointStore};
use skyup_obs::{timed, Counter, ExecGuard, Interrupt, Phase, QueryMetrics, Recorder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// One product of one request, flattened into the batch work list.
/// Items must be listed in request-major index order (all of a request's
/// products contiguous and ascending by `index`).
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// Which request (index into the `cost_fns`/`guards` slices) this
    /// product belongs to.
    pub request: u32,
    /// The product's index within its request.
    pub index: u32,
    /// The product's coordinates.
    pub coords: &'a [f64],
}

/// A fully evaluated batch item.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemAnswer {
    /// Minimal upgrade cost.
    pub cost: f64,
    /// The upgraded coordinates achieving that cost.
    pub upgraded: Vec<f64>,
    /// The skyline of the product's dominators, in skyline (id) order —
    /// exactly what the answer depends on. Shared: a memo hit hands out
    /// the same allocation it matched.
    pub dominators: Arc<Vec<PointId>>,
    /// Whether the dominator set came from the cross-request memo
    /// (exact or containment hit) rather than a full skyline scan —
    /// per-item attribution behind the aggregate
    /// [`BatchOutput::memo_hits`].
    pub memo_hit: bool,
}

/// Everything a batch run produced.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per item, parallel to the input slice: `Some` when evaluated,
    /// `None` when the owning request's guard had tripped at claim time.
    pub outcomes: Vec<Option<ItemAnswer>>,
    /// Items whose dominator set came out of the cross-request memo
    /// (exact or containment hit) instead of a full skyline scan.
    pub memo_hits: u64,
}

impl BatchOutput {
    /// The first cut item index (within its request) for request `r`,
    /// or `None` when every item of `r` was evaluated. Callers enforce
    /// prefix semantics by discarding answers at or beyond this index.
    pub fn first_cut<'a>(&self, items: &[BatchItem<'a>], r: u32) -> Option<u32> {
        items
            .iter()
            .zip(&self.outcomes)
            .filter(|(it, out)| it.request == r && out.is_none())
            .map(|(it, _)| it.index)
            .min()
    }
}

/// Maximum entries held by the cross-request dominator memo. Lookups
/// scan linearly under a lock, so the table stays small on purpose —
/// past this size the scan would rival the columnar kernel it replaces.
const MEMO_CAP: usize = 64;

/// The memo only switches on when the skyline has at least this many
/// points. Below it, a memo lookup (a locked scan of up to [`MEMO_CAP`]
/// entries, each a `dims`-coordinate compare) costs as much as the
/// columnar kernel scan it would save, so the memo would be pure
/// overhead — measurably so on small-skyline workloads.
const MEMO_MIN_SKYLINE: usize = 128;

/// Minimum items per spawned worker: below this, a worker's share of
/// the batch is cheaper than spawning it.
const MIN_ITEMS_PER_WORKER: usize = 32;

struct MemoEntry {
    t: Vec<f64>,
    dominators: Arc<Vec<PointId>>,
}

enum MemoLookup {
    /// Same coordinate bits: the list is the answer.
    Exact(Arc<Vec<PointId>>),
    /// `t <= entry.t` on every dimension: the list is a superset of
    /// `dominators(t)` in skyline order; filter it.
    Superset(Arc<Vec<PointId>>),
    Miss,
}

/// The cross-request dominator memo (see module docs). Read-mostly: the
/// table stops growing at [`MEMO_CAP`], after which every access is a
/// shared read lock.
struct DominatorMemo {
    entries: RwLock<Vec<MemoEntry>>,
}

impl DominatorMemo {
    fn new() -> Self {
        DominatorMemo {
            entries: RwLock::new(Vec::new()),
        }
    }

    fn lookup(&self, t: &[f64]) -> MemoLookup {
        let entries = self.entries.read().expect("dominator memo poisoned");
        let mut best: Option<&MemoEntry> = None;
        for e in entries.iter() {
            if e.t.len() != t.len() {
                continue;
            }
            if e.t.iter().zip(t).all(|(a, b)| a.to_bits() == b.to_bits()) {
                return MemoLookup::Exact(Arc::clone(&e.dominators));
            }
            // ADR containment: t inside entry.t's lower-left box.
            if t.iter().zip(&e.t).all(|(&x, &y)| x <= y) {
                match best {
                    Some(b) if b.dominators.len() <= e.dominators.len() => {}
                    _ => best = Some(e),
                }
            }
        }
        match best {
            Some(e) => MemoLookup::Superset(Arc::clone(&e.dominators)),
            None => MemoLookup::Miss,
        }
    }

    fn insert(&self, t: &[f64], dominators: &Arc<Vec<PointId>>) {
        {
            // Full tables are the steady state; don't take the write
            // lock just to find that out.
            let entries = self.entries.read().expect("dominator memo poisoned");
            if entries.len() >= MEMO_CAP {
                return;
            }
        }
        let mut entries = self.entries.write().expect("dominator memo poisoned");
        if entries.len() >= MEMO_CAP {
            return;
        }
        entries.push(MemoEntry {
            t: t.to_vec(),
            dominators: Arc::clone(dominators),
        });
    }
}

struct WorkerOut {
    /// `(item position, answer)` pairs, in claim order.
    part: Vec<(usize, ItemAnswer)>,
    metrics: Option<QueryMetrics>,
    memo_hits: u64,
}

/// Evaluates a batch of request-tagged products against one shared
/// skyline (see the module docs for the execution model and the
/// bit-identity argument).
///
/// * `skyline` must be the id-sorted skyline of `p_store`'s live set —
///   the canonical order every dominator list is a subsequence of.
/// * `cost_fns[r]` and `guards[r]` belong to the request of every item
///   with `request == r`; guards are forked per worker, so budgets and
///   deadlines stay request-scoped.
///
/// A worker panic is contained: siblings stop at their next claim, all
/// output is dropped, and [`SkyupError::WorkerPanicked`] is returned.
#[allow(clippy::too_many_arguments)]
pub fn run_probe_batch<'a, C, R>(
    p_store: &PointStore,
    skyline: &[PointId],
    items: &[BatchItem<'a>],
    cost_fns: &[C],
    guards: &[ExecGuard],
    cfg: &UpgradeConfig,
    threads: usize,
    rec: &mut R,
) -> Result<BatchOutput, SkyupError>
where
    C: CostFunction + Sync,
    R: Recorder + ?Sized,
{
    let n = items.len();
    if cost_fns.len() != guards.len() {
        return Err(SkyupError::InvalidInput(format!(
            "{} cost functions for {} request guards",
            cost_fns.len(),
            guards.len()
        )));
    }
    let dims = p_store.dims();
    for (pos, it) in items.iter().enumerate() {
        if it.request as usize >= guards.len() {
            return Err(SkyupError::InvalidInput(format!(
                "item {pos} names request {} of {}",
                it.request,
                guards.len()
            )));
        }
        if it.coords.len() != dims {
            return Err(SkyupError::InvalidInput(format!(
                "item {pos} has {} coordinates, expected {dims}",
                it.coords.len()
            )));
        }
    }
    debug_assert!(
        skyline.windows(2).all(|w| w[0] < w[1]),
        "skyline not id-sorted"
    );
    if n == 0 {
        return Ok(BatchOutput {
            outcomes: Vec::new(),
            memo_hits: 0,
        });
    }

    let collect = rec.is_enabled();
    let mut cols = ColumnarPoints::new(dims);
    cols.gather(p_store, skyline);
    let cols = &cols;
    // Hoist Algorithm 1's per-dimension sorts: sort the skyline by each
    // dimension once per batch; workers recover any dominator subset's
    // order as a subsequence filter (bit-identical — see
    // `upgrade_single_presorted_into`).
    let dim_orders = DimOrders::new(p_store, skyline);
    let dim_orders = &dim_orders;

    // See MEMO_MIN_SKYLINE: on small skylines a memo probe costs as
    // much as the kernel scan it replaces.
    let memo = (skyline.len() >= MEMO_MIN_SKYLINE).then(DominatorMemo::new);
    let memo = memo.as_ref();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Spawning a scoped worker costs tens of microseconds — real money
    // against per-item costs of a few microseconds. Cap the worker
    // count so each spawned thread has enough items to amortize its own
    // startup, and never exceed the hardware's actual parallelism:
    // extra workers on a saturated machine only add context-switch
    // churn. Small batches run inline on the caller's thread.
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = threads
        .max(1)
        .min(hw)
        .min(n.div_ceil(MIN_ITEMS_PER_WORKER))
        .max(1);

    let run_worker = |mut wguards: Vec<ExecGuard>| -> WorkerOut {
        let mut local = collect.then(QueryMetrics::new);
        let mut upg = UpgradeScratch::new();
        let mut positions: Vec<u32> = Vec::new();
        let mut part: Vec<(usize, ItemAnswer)> = Vec::new();
        let mut memo_hits = 0u64;
        loop {
            if abort.load(Ordering::Relaxed) {
                break;
            }
            let pos = next.fetch_add(1, Ordering::Relaxed);
            if pos >= n {
                break;
            }
            if let Some(m) = &mut local {
                m.bump(Counter::StealEvents);
            }
            let item = &items[pos];
            let r = item.request as usize;
            // Only stop-now interrupts cut at claim time; a budget trip
            // means the admission charge ran out *after* this item was
            // admitted, so it still gets computed (see module docs).
            match wguards[r].checkpoint() {
                Err(Interrupt::NodeVisitBudget | Interrupt::HeapBudget) => {}
                Err(_) => continue, // outcome stays None: cut at claim time
                Ok(()) => {}
            }
            let t = item.coords;
            let mut full_scan = |local: &mut Option<QueryMetrics>| {
                positions.clear();
                let scan = cols.collect_dominators(t, &mut positions);
                if let Some(m) = local {
                    // Charge the points the kernel actually compared:
                    // zone-map-skipped blocks ran no dominance tests.
                    m.incr(Counter::DominanceTests, scan.points);
                    m.incr(Counter::KernelBlockScans, scan.blocks);
                    m.incr(Counter::KernelBlocksSkipped, scan.skipped);
                }
                Arc::new(
                    positions
                        .iter()
                        .map(|&p| skyline[p as usize])
                        .collect::<Vec<PointId>>(),
                )
            };
            let memo_hits_before = memo_hits;
            let dominators: Arc<Vec<PointId>> = match memo.map(|m| m.lookup(t)) {
                Some(MemoLookup::Exact(list)) => {
                    memo_hits += 1;
                    if let Some(m) = &mut local {
                        m.bump(Counter::DominatorMemoHits);
                    }
                    list
                }
                Some(MemoLookup::Superset(list)) => {
                    memo_hits += 1;
                    if let Some(m) = &mut local {
                        m.bump(Counter::DominatorMemoHits);
                        m.incr(Counter::DominanceTests, list.len() as u64);
                    }
                    let filtered = Arc::new(
                        list.iter()
                            .copied()
                            .filter(|&s| skyup_geom::dominance::dominates(p_store.point(s), t))
                            .collect::<Vec<PointId>>(),
                    );
                    memo.expect("superset hit implies a memo")
                        .insert(t, &filtered);
                    filtered
                }
                Some(MemoLookup::Miss) => {
                    let found = full_scan(&mut local);
                    memo.expect("miss implies a memo").insert(t, &found);
                    found
                }
                None => full_scan(&mut local),
            };
            let cost = upgrade_single_presorted_into(
                p_store,
                dim_orders,
                &dominators[..],
                t,
                &cost_fns[r],
                cfg,
                &mut upg,
            );
            if let Some(m) = &mut local {
                m.bump(Counter::ProductsEvaluated);
            }
            part.push((
                pos,
                ItemAnswer {
                    cost,
                    upgraded: upg.upgraded().to_vec(),
                    dominators,
                    memo_hit: memo_hits > memo_hits_before,
                },
            ));
        }
        WorkerOut {
            part,
            metrics: local,
            memo_hits,
        }
    };

    let outcomes_raw: Vec<(usize, Result<WorkerOut, String>)> =
        timed(rec, Phase::ProbeLoop, |_| {
            if workers == 1 {
                // Small batch / single thread: run inline, no spawn.
                let wguards: Vec<ExecGuard> = guards.to_vec();
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_worker(wguards)));
                vec![(0usize, out.map_err(panic_message))]
            } else {
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for w in 0..workers {
                        let wguards: Vec<ExecGuard> = guards.to_vec();
                        let (run_worker, abort) = (&run_worker, &abort);
                        handles.push(scope.spawn(move || {
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run_worker(wguards)
                                }));
                            match out {
                                Ok(o) => (w, Ok(o)),
                                Err(payload) => {
                                    // Stop the siblings at their next claim;
                                    // every worker's output is dropped anyway.
                                    abort.store(true, Ordering::Relaxed);
                                    (w, Err(panic_message(payload)))
                                }
                            }
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("batch worker escaped its unwind barrier"))
                        .collect()
                })
            }
        });

    for (w, out) in &outcomes_raw {
        if let Err(message) = out {
            rec.bump(Counter::WorkerPanics);
            return Err(SkyupError::WorkerPanicked {
                worker: *w,
                message: message.clone(),
            });
        }
    }

    let mut outcomes: Vec<Option<ItemAnswer>> = (0..n).map(|_| None).collect();
    let mut memo_hits = 0u64;
    for (_, out) in outcomes_raw {
        let o = out.expect("panics were handled above");
        if let Some(m) = o.metrics {
            rec.absorb(&m);
        }
        memo_hits += o.memo_hits;
        for (pos, answer) in o.part {
            debug_assert!(outcomes[pos].is_none(), "item {pos} claimed twice");
            outcomes[pos] = Some(answer);
        }
    }
    Ok(BatchOutput {
        outcomes,
        memo_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::upgrade::{dominators_from_skyline, upgrade_single};
    use skyup_obs::{CancellationToken, ExecutionLimits, NullRecorder};
    use skyup_skyline::skyline_sfs;

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    /// Anti-correlated competitors hugging the hyperplane
    /// `Σ coords = dims - 1`: most points are mutually incomparable, so
    /// the skyline is large enough (>= MEMO_MIN_SKYLINE) to switch the
    /// dominator memo on.
    fn anti_store(n: usize, dims: usize, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let mut row: Vec<f64> = (0..dims - 1).map(|_| next()).collect();
            let sum: f64 = row.iter().sum();
            row.push((dims - 1) as f64 - sum + 0.01 * next());
            s.push(&row);
        }
        s
    }

    fn workload(dims: usize, seed: u64) -> (PointStore, Vec<PointId>, Vec<Vec<Vec<f64>>>, SumCost) {
        let p = anti_store(600, dims, seed);
        let all: Vec<PointId> = p.ids().collect();
        let mut sky = skyline_sfs(&p, &all);
        sky.sort_unstable();
        assert!(
            sky.len() >= MEMO_MIN_SKYLINE,
            "workload must enable the memo"
        );
        // Three requests with overlapping product sets (coarse grid so
        // exact coordinate repeats happen and the memo gets exercised).
        let t = pseudo_random_store(90, dims, 0.4, 1.4, seed ^ 0xbeef);
        let mut requests: Vec<Vec<Vec<f64>>> = vec![Vec::new(); 3];
        for (i, (_, coords)) in t.iter().enumerate() {
            let rounded: Vec<f64> = coords.iter().map(|v| (v * 8.0).floor() / 8.0).collect();
            requests[i % 3].push(rounded.clone());
            if i % 4 == 0 {
                requests[(i + 1) % 3].push(rounded);
            }
        }
        (p, sky, requests, SumCost::reciprocal(dims, 1e-3))
    }

    fn flatten<'a>(requests: &'a [Vec<Vec<f64>>]) -> Vec<BatchItem<'a>> {
        let mut items = Vec::new();
        for (r, products) in requests.iter().enumerate() {
            for (i, t) in products.iter().enumerate() {
                items.push(BatchItem {
                    request: r as u32,
                    index: i as u32,
                    coords: t,
                });
            }
        }
        items
    }

    #[test]
    fn batch_answers_bit_identical_to_sequential_at_any_thread_count() {
        for dims in [2usize, 3] {
            let (p, sky, requests, cost) = workload(dims, 0x77 + dims as u64);
            let items = flatten(&requests);
            let cfg = UpgradeConfig::default();
            let cost_fns: Vec<&SumCost> = vec![&cost; requests.len()];
            let guards: Vec<ExecGuard> = (0..requests.len())
                .map(|_| ExecutionLimits::none().start())
                .collect();
            for threads in [1usize, 2, 7] {
                let out = run_probe_batch(
                    &p,
                    &sky,
                    &items,
                    &cost_fns,
                    &guards,
                    &cfg,
                    threads,
                    &mut NullRecorder,
                )
                .unwrap();
                assert_eq!(out.outcomes.len(), items.len());
                for (item, outcome) in items.iter().zip(&out.outcomes) {
                    let got = outcome.as_ref().expect("unlimited batch evaluates all");
                    let want_dom =
                        dominators_from_skyline(&p, &sky, item.coords, &mut NullRecorder);
                    let (want_cost, want_up) =
                        upgrade_single(&p, &want_dom, item.coords, &cost, &cfg);
                    assert_eq!(*got.dominators, want_dom, "threads={threads}");
                    assert_eq!(got.cost.to_bits(), want_cost.to_bits());
                    let gb: Vec<u64> = got.upgraded.iter().map(|v| v.to_bits()).collect();
                    let wb: Vec<u64> = want_up.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(gb, wb);
                }
                assert!(
                    out.memo_hits > 0,
                    "overlapping requests must hit the memo (threads={threads})"
                );
            }
        }
    }

    #[test]
    fn memo_superset_filter_matches_full_scan() {
        // Products on a dominance chain: t0 <= t1 <= t2 componentwise,
        // issued worst-first so the best product filters a superset.
        let p = anti_store(400, 3, 0x99);
        let all: Vec<PointId> = p.ids().collect();
        let mut sky = skyline_sfs(&p, &all);
        sky.sort_unstable();
        assert!(
            sky.len() >= MEMO_MIN_SKYLINE,
            "workload must enable the memo"
        );
        let chain: Vec<Vec<f64>> = vec![
            vec![1.2, 1.2, 1.2],
            vec![0.9, 1.0, 1.1],
            vec![0.6, 0.7, 0.8],
        ];
        let requests = vec![chain];
        let items = flatten(&requests);
        let cost = SumCost::reciprocal(3, 1e-3);
        let guards = vec![ExecutionLimits::none().start()];
        let out = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&cost],
            &guards,
            &UpgradeConfig::default(),
            1,
            &mut NullRecorder,
        )
        .unwrap();
        // Single-threaded claim order is the chain order, so items 1 and
        // 2 must both resolve through containment.
        assert_eq!(out.memo_hits, 2);
        for (item, outcome) in items.iter().zip(&out.outcomes) {
            let got = outcome.as_ref().unwrap();
            let want = dominators_from_skyline(&p, &sky, item.coords, &mut NullRecorder);
            assert_eq!(*got.dominators, want);
        }
    }

    #[test]
    fn tripped_guard_cuts_only_its_own_request() {
        let (p, sky, requests, cost) = workload(3, 0xab);
        let items = flatten(&requests);
        let cfg = UpgradeConfig::default();
        let cost_fns: Vec<&SumCost> = vec![&cost; requests.len()];
        let token = CancellationToken::new();
        token.cancel();
        // Request 1 arrives already cancelled; 0 and 2 are unlimited.
        let guards: Vec<ExecGuard> = (0..requests.len())
            .map(|r| {
                if r == 1 {
                    ExecutionLimits::none().with_token(token.clone()).start()
                } else {
                    ExecutionLimits::none().start()
                }
            })
            .collect();
        for threads in [1usize, 4] {
            let out = run_probe_batch(
                &p,
                &sky,
                &items,
                &cost_fns,
                &guards,
                &cfg,
                threads,
                &mut NullRecorder,
            )
            .unwrap();
            for (item, outcome) in items.iter().zip(&out.outcomes) {
                if item.request == 1 {
                    assert!(outcome.is_none(), "cancelled request item evaluated");
                } else {
                    assert!(outcome.is_some(), "healthy request item dropped");
                }
            }
            assert_eq!(out.first_cut(&items, 1), Some(0));
            assert_eq!(out.first_cut(&items, 0), None);
        }
    }

    #[test]
    fn admission_charged_budget_does_not_cut_admitted_items() {
        // The serving layer charges visit_node per product at admission
        // and only lists the products that fit the budget. A request
        // whose budget tripped *during* admission must still get every
        // admitted item evaluated: the trip is sticky, but it is not a
        // stop-now interrupt.
        let (p, sky, requests, cost) = workload(3, 0xcd);
        let cfg = UpgradeConfig::default();
        let cost_fns: Vec<&SumCost> = vec![&cost; requests.len()];
        let budget = 2u64;
        let guards: Vec<ExecGuard> = (0..requests.len())
            .map(|_| ExecutionLimits::none().with_max_node_visits(budget).start())
            .collect();
        // Admission: charge each product, stop at the failing charge —
        // exactly what the serving layer does. Request 0 has more
        // products than budget, so its guard ends up tripped.
        let mut admitted = Vec::new();
        let mut charging = guards.clone();
        for (r, products) in requests.iter().enumerate() {
            for (i, t) in products.iter().enumerate() {
                if charging[r].visit_node().is_err() {
                    break;
                }
                admitted.push(BatchItem {
                    request: r as u32,
                    index: i as u32,
                    coords: t,
                });
            }
        }
        assert!(guards.iter().all(|g| g.interrupted().is_some()));
        for threads in [1usize, 3] {
            let out = run_probe_batch(
                &p,
                &sky,
                &admitted,
                &cost_fns,
                &guards,
                &cfg,
                threads,
                &mut NullRecorder,
            )
            .unwrap();
            for (pos, outcome) in out.outcomes.iter().enumerate() {
                assert!(
                    outcome.is_some(),
                    "admitted item {pos} was cut (threads={threads})"
                );
            }
            for r in 0..requests.len() as u32 {
                assert_eq!(out.first_cut(&admitted, r), None);
            }
        }
    }

    #[test]
    fn worker_panic_is_contained() {
        // A NaN coordinate makes upgrade_single's debug contract panic
        // via the cost function; simulate with a poisoned cost fn by
        // feeding an out-of-range request id instead: cleaner to panic
        // deliberately through a product whose dims pass validation but
        // whose cost function panics.
        struct Bomb;
        impl CostFunction for Bomb {
            fn dims(&self) -> usize {
                2
            }
            fn attr_cost(&self, _dim: usize, _to: f64) -> f64 {
                panic!("bomb cost");
            }
            fn product_cost(&self, _p: &[f64]) -> f64 {
                panic!("bomb cost");
            }
        }
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0x5);
        let all: Vec<PointId> = p.ids().collect();
        let mut sky = skyline_sfs(&p, &all);
        sky.sort_unstable();
        let products = vec![vec![1.5, 1.5], vec![1.6, 1.6]];
        let requests = vec![products];
        let items = flatten(&requests);
        let guards = vec![ExecutionLimits::none().start()];
        let err = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&Bomb],
            &guards,
            &UpgradeConfig::default(),
            2,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::WorkerPanicked { .. }));
    }

    #[test]
    fn validation_rejects_malformed_batches() {
        let p = pseudo_random_store(10, 2, 0.0, 1.0, 0x6);
        let sky: Vec<PointId> = Vec::new();
        let cost = SumCost::reciprocal(2, 1e-3);
        let guards = vec![ExecutionLimits::none().start()];
        let t = vec![0.5, 0.5];
        // Request id out of range.
        let items = [BatchItem {
            request: 3,
            index: 0,
            coords: &t,
        }];
        let err = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&cost],
            &guards,
            &UpgradeConfig::default(),
            1,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidInput(_)));
        // Wrong dimensionality.
        let bad = vec![0.5];
        let items = [BatchItem {
            request: 0,
            index: 0,
            coords: &bad,
        }];
        let err = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&cost],
            &guards,
            &UpgradeConfig::default(),
            1,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidInput(_)));
        // Mismatched request metadata.
        let items: [BatchItem<'_>; 0] = [];
        let err = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&cost, &cost],
            &guards,
            &UpgradeConfig::default(),
            1,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidInput(_)));
    }

    #[test]
    fn empty_skyline_answers_are_free() {
        let p = PointStore::new(2);
        let sky: Vec<PointId> = Vec::new();
        let cost = SumCost::reciprocal(2, 1e-3);
        let t = vec![0.4, 0.4];
        let items = [BatchItem {
            request: 0,
            index: 0,
            coords: &t,
        }];
        let guards = vec![ExecutionLimits::none().start()];
        let out = run_probe_batch(
            &p,
            &sky,
            &items,
            &[&cost],
            &guards,
            &UpgradeConfig::default(),
            2,
            &mut NullRecorder,
        )
        .unwrap();
        let a = out.outcomes[0].as_ref().unwrap();
        assert_eq!(a.cost, 0.0);
        assert_eq!(a.upgraded, t);
        assert!(a.dominators.is_empty());
    }
}
