//! Threshold-pruned improved probing (library extension).
//!
//! Plain probing pays the full dominator-skyline + Algorithm 1 cost for
//! *every* product, even ones that obviously cannot enter the top-k.
//! This variant screens each product first with the cheap admissible
//! lower bound of DESIGN.md §3 evaluated against the competitor root's
//! children: if even the optimistic single-dimension escape already
//! costs more than the current k-th best result, the product is skipped
//! without touching the index further. The answer is identical to
//! [`crate::improved_probing_topk`]; only work is saved.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{validate_query, SkyupError};
use crate::join::{list_bound, BoundMode, LowerBound};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::PointStore;
use skyup_obs::{
    timed, Completion, Counter, ExecutionLimits, NullRecorder, Phase, QueryMetrics, Recorder,
};
use skyup_rtree::{EntryRef, RTree};
use skyup_skyline::{dominating_skyline_lim, dominating_skyline_rec};

/// Statistics from one pruned-probing run — a view over the unified
/// [`skyup_obs`] counters (`ProductsEvaluated` / `ThresholdPrunes`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruningStats {
    /// Products fully evaluated (skyline + Algorithm 1).
    pub evaluated: u64,
    /// Products skipped by the lower-bound screen.
    pub pruned: u64,
}

impl PruningStats {
    /// Extracts the pruning view from collected metrics.
    pub fn from_metrics(m: &QueryMetrics) -> Self {
        Self {
            evaluated: m.get(Counter::ProductsEvaluated),
            pruned: m.get(Counter::ThresholdPrunes),
        }
    }
}

/// Improved probing with the admissible lower-bound screen. Returns the
/// same `k` results as [`crate::improved_probing_topk`] plus the
/// pruning statistics.
pub fn improved_probing_topk_pruned<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> (Vec<UpgradeResult>, PruningStats) {
    improved_probing_topk_pruned_rec(p_store, p_tree, t_store, k, cost_fn, cfg, &mut NullRecorder)
}

/// [`improved_probing_topk_pruned`] with instrumentation: in addition to
/// the improved-probing counters, every lower-bound screen is a
/// `LowerBoundEvals` and every screened-out product a `ThresholdPrunes`.
/// The returned [`PruningStats`] always matches the recorder's
/// `ProductsEvaluated` / `ThresholdPrunes` counters.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_pruned_rec<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    rec: &mut R,
) -> (Vec<UpgradeResult>, PruningStats) {
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    let mut stats = PruningStats::default();
    if t_store.is_empty() {
        return (Vec::new(), stats);
    }
    let screen_entries = screen_frontier(p_tree);

    let mut topk = TopK::new(k);
    // One screened-entry buffer reused across all products (the hot
    // loop must not allocate per product).
    let mut screened: Vec<EntryRef> = Vec::with_capacity(screen_entries.len());
    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            if topk.is_full() && !screen_entries.is_empty() {
                screened.clear();
                screened.extend(screen_entries.iter().copied().filter(|&e| {
                    p_tree
                        .entry_lo(p_store, e)
                        .iter()
                        .zip(t)
                        .all(|(&l, &y)| l <= y)
                }));
                let lb = list_bound(
                    t,
                    &screened,
                    p_store,
                    p_tree,
                    cost_fn,
                    LowerBound::Aggressive,
                    BoundMode::Admissible,
                );
                rec.bump(Counter::LowerBoundEvals);
                if lb > topk.threshold() {
                    stats.pruned += 1;
                    rec.bump(Counter::ThresholdPrunes);
                    continue;
                }
            }
            stats.evaluated += 1;
            rec.bump(Counter::ProductsEvaluated);
            let skyline = timed(rec, Phase::DominatingSky, |rec| {
                dominating_skyline_rec(p_store, p_tree, t, rec)
            });
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });
    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    (results, stats)
}

/// Builds the shallow frontier of the competitor tree used by the
/// lower-bound screen: top levels expanded breadth-first until a few
/// dozen entries are available (capped so the per-product screen stays
/// O(1) in |P|). Shared with the bound-sorted probe scheduler.
pub(crate) fn screen_frontier(p_tree: &RTree) -> Vec<EntryRef> {
    if p_tree.is_empty() {
        return Vec::new();
    }
    let mut frontier: Vec<EntryRef> = vec![EntryRef::Node(p_tree.root_id())];
    loop {
        let expandable = frontier
            .iter()
            .filter(|e| matches!(e, EntryRef::Node(n) if !p_tree.node(*n).is_leaf()))
            .count();
        if frontier.len() >= 32 || expandable == 0 {
            break;
        }
        let mut next = Vec::with_capacity(frontier.len() * 4);
        for e in frontier {
            match e {
                EntryRef::Node(n) if !p_tree.node(n).is_leaf() => {
                    next.extend(p_tree.node(n).entries());
                }
                other => next.push(other),
            }
        }
        frontier = next;
        if frontier.len() > 512 {
            break;
        }
    }
    frontier
}

/// Fallible, guarded pruned probing: input validation as in
/// [`crate::probing::try_basic_probing_topk`], then the screened probe
/// loop runs under `limits` with every `getDominatingSky` traversal
/// charged to the guard (the O(1) lower-bound screen itself is not
/// charged — it reads only the prebuilt frontier). On interruption the
/// exact top-k over the fully evaluated prefix of `T` comes back tagged
/// [`Completion::Partial`]; unlimited runs are bit-identical to
/// [`improved_probing_topk_pruned_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_improved_probing_topk_pruned<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<(AnytimeTopK, PruningStats), SkyupError> {
    validate_query(p_store, p_tree, t_store, k, cost_fn)?;
    let mut guard = limits.start();
    let mut stats = PruningStats::default();
    let screen_entries = screen_frontier(p_tree);
    let mut topk = TopK::new(k);
    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;
    // One screened-entry buffer reused across all products.
    let mut screened: Vec<EntryRef> = Vec::with_capacity(screen_entries.len());

    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            if let Err(i) = guard.checkpoint() {
                completion = Completion::Partial(i);
                break;
            }
            if topk.is_full() && !screen_entries.is_empty() {
                screened.clear();
                screened.extend(screen_entries.iter().copied().filter(|&e| {
                    p_tree
                        .entry_lo(p_store, e)
                        .iter()
                        .zip(t)
                        .all(|(&l, &y)| l <= y)
                }));
                let lb = list_bound(
                    t,
                    &screened,
                    p_store,
                    p_tree,
                    cost_fn,
                    LowerBound::Aggressive,
                    BoundMode::Admissible,
                );
                rec.bump(Counter::LowerBoundEvals);
                if lb > topk.threshold() {
                    stats.pruned += 1;
                    rec.bump(Counter::ThresholdPrunes);
                    continue;
                }
            }
            let sky_res = timed(rec, Phase::DominatingSky, |rec| {
                dominating_skyline_lim(p_store, p_tree, t, rec, &mut guard)
            });
            let skyline = match sky_res {
                Ok(s) => s,
                Err(i) => {
                    completion = Completion::Partial(i);
                    break;
                }
            };
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            stats.evaluated += 1;
            rec.bump(Counter::ProductsEvaluated);
            evaluated += 1;
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });

    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    rec.incr(Counter::GuardedNodeVisits, guard.node_visits());
    if !completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    Ok((
        AnytimeTopK {
            results,
            completion,
            evaluated,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::probing::improved_probing_topk;
    use skyup_data::synthetic::{paper_competitors, paper_products, Distribution};
    use skyup_rtree::RTreeParams;

    #[test]
    fn identical_results_with_pruning() {
        for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
            let p = paper_competitors(3000, 3, dist, 0x91);
            let t = paper_products(500, 3, dist, 0x92);
            let rp = RTree::bulk_load(&p, RTreeParams::default());
            let cost = SumCost::reciprocal(3, 1e-3);
            let cfg = UpgradeConfig::default();
            let plain = improved_probing_topk(&p, &rp, &t, 10, &cost, &cfg);
            let (pruned, stats) = improved_probing_topk_pruned(&p, &rp, &t, 10, &cost, &cfg);
            assert_eq!(plain.len(), pruned.len());
            for (a, b) in plain.iter().zip(&pruned) {
                assert_eq!(a.product, b.product, "{dist:?}");
                assert!((a.cost - b.cost).abs() < 1e-12);
            }
            assert_eq!(stats.evaluated + stats.pruned, 500);
        }
    }

    #[test]
    fn pruning_fires_on_interleaved_domains() {
        // The screen pays off when the top-k products are barely
        // dominated (near-zero thresholds) while much of T sits deep in
        // competitor territory with a large admissible bound. Interleaved
        // domains produce exactly that mix; on the paper's fully
        // dominated (1,2]^c products every threshold is huge and the
        // screen rarely helps (the equivalence test above still covers
        // that case).
        use skyup_data::synthetic::{generate, SyntheticConfig};
        let p = generate(
            5000,
            &SyntheticConfig::unit(2, Distribution::Independent, 0x93),
        );
        let t = generate(
            1000,
            &SyntheticConfig {
                dims: 2,
                distribution: Distribution::Independent,
                lo: 0.3,
                hi: 1.3,
                seed: 0x94,
            },
        );
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        // Linear costs keep upgrade prices commensurate with the
        // corner-based screen; the reciprocal cost's blow-up near zero
        // makes every upgrade dwarf the bound (screen stays sound but
        // idle there).
        let cost = SumCost::new(vec![
            Box::new(crate::cost::LinearCost::new(2.0, 1.0)),
            Box::new(crate::cost::LinearCost::new(2.0, 1.0)),
        ]);
        let cfg = UpgradeConfig::default();
        let (pruned_out, stats) = improved_probing_topk_pruned(&p, &rp, &t, 5, &cost, &cfg);
        assert!(
            stats.pruned > 100,
            "expected substantial pruning, evaluated={} pruned={}",
            stats.evaluated,
            stats.pruned
        );
        // And the answer is still exact.
        let plain = improved_probing_topk(&p, &rp, &t, 5, &cost, &cfg);
        for (a, b) in plain.iter().zip(&pruned_out) {
            assert_eq!(a.product, b.product);
        }
    }

    #[test]
    fn empty_sets() {
        let p = PointStore::new(2);
        let t = PointStore::new(2);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let (out, stats) =
            improved_probing_topk_pruned(&p, &rp, &t, 5, &cost, &UpgradeConfig::default());
        assert!(out.is_empty());
        assert_eq!(stats, PruningStats::default());
    }
}
