//! The probing algorithms (paper Section III-A).
//!
//! Both probe every product `t ∈ T` in isolation against the competitor
//! R-tree `R_P`, compute the skyline of `t`'s dominators, upgrade `t`
//! with Algorithm 1, and keep the `k` cheapest upgrades.
//!
//! * [`basic_probing_topk`] — Algorithm 2: a plain range query over
//!   `ADR(t)` fetches *all* dominators, then their skyline is computed
//!   in memory. The paper's brute-force baseline.
//! * [`improved_probing_topk`] — replaces the range query + skyline pair
//!   with `getDominatingSky` (Algorithm 3), which prunes R-tree nodes
//!   dominated by already-found skyline points.
//!
//! Neither algorithm is progressive: no result can be reported until all
//! of `T` has been processed (Section IV-B notes this).
//!
//! Library extensions: [`improved_probing_topk_parallel`] partitions
//! `T` across threads (bit-identical results),
//! [`improved_probing_topk_pruned`] screens products with a cheap
//! admissible lower bound before paying for the full evaluation, and
//! [`run_probe_batch`] evaluates the flattened product union of many
//! *requests* against one shared skyline with work stealing, a
//! cross-request dominator memo, and per-request execution limits
//! (the `skyup-serve` batch pipeline's engine).
//!
//! Every variant also has a fallible `try_*` twin that validates its
//! inputs (returning [`crate::SkyupError`] instead of panicking) and
//! runs under [`skyup_obs::ExecutionLimits`], degrading to a tagged
//! best-so-far answer ([`crate::AnytimeTopK`]) when a budget fires.

mod basic;
mod batch;
mod improved;
mod parallel;
mod pruned;
mod scheduler;

pub use basic::{basic_probing_topk, basic_probing_topk_rec, try_basic_probing_topk};
pub use batch::{run_probe_batch, BatchItem, BatchOutput, ItemAnswer};
pub use improved::{
    improved_probing_topk, improved_probing_topk_rec, improved_probing_topk_with_skyline,
    improved_probing_topk_with_skyline_rec, try_improved_probing_topk,
};
pub use parallel::{
    improved_probing_topk_parallel, improved_probing_topk_parallel_rec,
    try_improved_probing_topk_parallel,
};
pub use pruned::{
    improved_probing_topk_pruned, improved_probing_topk_pruned_rec,
    try_improved_probing_topk_pruned, PruningStats,
};
pub use scheduler::{
    improved_probing_topk_scheduled, improved_probing_topk_scheduled_rec,
    try_improved_probing_topk_scheduled, ProbeStrategy,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::UpgradeConfig;
    use skyup_geom::PointStore;
    use skyup_rtree::{RTree, RTreeParams};

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn basic_and_improved_agree() {
        for dims in [2, 3] {
            let p = pseudo_random_store(400, dims, 0.0, 1.0, 0xaa + dims as u64);
            let t = pseudo_random_store(60, dims, 0.5, 1.5, 0xbb + dims as u64);
            let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
            let cost = SumCost::reciprocal(dims, 1e-3);
            let cfg = UpgradeConfig::default();
            let a = basic_probing_topk(&p, &rp, &t, 5, &cost, &cfg);
            let b = improved_probing_topk(&p, &rp, &t, 5, &cost, &cfg);
            assert_eq!(a.len(), 5);
            let ca: Vec<f64> = a.iter().map(|r| r.cost).collect();
            let cb: Vec<f64> = b.iter().map(|r| r.cost).collect();
            for (x, y) in ca.iter().zip(&cb) {
                assert!((x - y).abs() < 1e-9, "cost mismatch: {ca:?} vs {cb:?}");
            }
            // With distinct costs, the chosen products agree too.
            let ia: Vec<u32> = a.iter().map(|r| r.product.0).collect();
            let ib: Vec<u32> = b.iter().map(|r| r.product.0).collect();
            assert_eq!(ia, ib);
        }
    }

    #[test]
    fn with_skyline_matches_self_computed_path() {
        for dims in [2, 3] {
            let p = pseudo_random_store(400, dims, 0.0, 1.0, 0xc1 + dims as u64);
            let t = pseudo_random_store(60, dims, 0.5, 1.5, 0xd2 + dims as u64);
            let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
            let cost = SumCost::reciprocal(dims, 1e-3);
            let cfg = UpgradeConfig::default();
            let all: Vec<_> = p.iter().map(|(id, _)| id).collect();
            let mut sky = skyup_skyline::skyline_sfs(&p, &all);
            sky.sort();
            let a = improved_probing_topk(&p, &rp, &t, 10, &cost, &cfg);
            let b = improved_probing_topk_with_skyline(&p, &sky, &t, 10, &cost, &cfg);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.product, y.product);
                assert_eq!(x.cost.to_bits(), y.cost.to_bits());
                let xb: Vec<u64> = x.upgraded.iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u64> = y.upgraded.iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, yb);
            }
        }
    }

    #[test]
    fn k_larger_than_t_returns_everything() {
        let p = pseudo_random_store(100, 2, 0.0, 1.0, 0x1);
        let t = pseudo_random_store(7, 2, 0.5, 1.5, 0x2);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = improved_probing_topk(&p, &rp, &t, 50, &cost, &UpgradeConfig::default());
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn results_sorted_by_cost() {
        let p = pseudo_random_store(300, 2, 0.0, 1.0, 0x3);
        let t = pseudo_random_store(40, 2, 0.8, 1.8, 0x4);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = basic_probing_topk(&p, &rp, &t, 10, &cost, &UpgradeConfig::default());
        assert!(out.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn already_competitive_products_cost_zero() {
        // T products strictly better than every competitor.
        let p = pseudo_random_store(100, 2, 0.5, 1.0, 0x5);
        let t = pseudo_random_store(5, 2, 0.0, 0.2, 0x6);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = improved_probing_topk(&p, &rp, &t, 5, &cost, &UpgradeConfig::default());
        assert!(out.iter().all(|r| r.cost == 0.0 && r.already_competitive()));
    }

    #[test]
    fn empty_competitor_set() {
        let p = PointStore::new(2);
        let t = pseudo_random_store(5, 2, 0.0, 1.0, 0x7);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        for algo in [basic_probing_topk, improved_probing_topk] {
            let out = algo(&p, &rp, &t, 3, &cost, &UpgradeConfig::default());
            assert_eq!(out.len(), 3);
            assert!(out.iter().all(|r| r.cost == 0.0));
        }
    }

    #[test]
    fn empty_product_set() {
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0x8);
        let t = PointStore::new(2);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = basic_probing_topk(&p, &rp, &t, 3, &cost, &UpgradeConfig::default());
        assert!(out.is_empty());
    }
}
