//! Multi-threaded improved probing.
//!
//! Probing processes each product of `T` independently against the
//! read-only competitor index, so it parallelizes embarrassingly:
//! partition `T` across threads, keep a per-thread top-k, merge. Results
//! are bit-identical to the sequential version (the merge re-applies the
//! same `(cost, product id)` order). The paper's algorithms are all
//! single-threaded; this is a library extension.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{panic_message, validate_query, SkyupError};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::{PointId, PointStore};
use skyup_obs::{
    timed, Completion, Counter, ExecutionLimits, NullRecorder, Phase, QueryMetrics, Recorder,
};
use skyup_rtree::RTree;
use skyup_skyline::{dominating_skyline, dominating_skyline_lim, dominating_skyline_rec};

/// Runs improved probing across `threads` worker threads and returns the
/// `k` cheapest upgrades, sorted by `(cost, product id)` — exactly the
/// sequential [`crate::improved_probing_topk`] answer.
///
/// `threads == 0` is clamped to one worker thread (historically this
/// panicked; [`try_improved_probing_topk_parallel`] instead reports it
/// as [`SkyupError::InvalidConfig`] so remote callers get a diagnostic
/// rather than a silently-adjusted run).
pub fn improved_probing_topk_parallel<C>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
) -> Vec<UpgradeResult>
where
    C: CostFunction + Sync + ?Sized,
{
    improved_probing_topk_parallel_rec(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        &mut NullRecorder,
    )
}

/// [`improved_probing_topk_parallel`] with instrumentation. Each worker
/// collects into a private [`QueryMetrics`] (only when the caller's
/// recorder is enabled) which is folded into `rec` after the join, so
/// counters equal the sequential run's and phase times sum worker time.
///
/// `threads == 0` is clamped to one worker thread.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_parallel_rec<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    rec: &mut R,
) -> Vec<UpgradeResult>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    let threads = threads.max(1);
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return Vec::new();
    }

    let n = t_store.len();
    let chunk = n.div_ceil(threads);
    let collect = rec.is_enabled();

    let partials: Vec<(Vec<UpgradeResult>, Option<QueryMetrics>)> =
        timed(rec, Phase::ProbeLoop, |_| {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for w in 0..threads {
                    let lo = w * chunk;
                    if lo >= n {
                        break;
                    }
                    let hi = ((w + 1) * chunk).min(n);
                    handles.push(scope.spawn(move || {
                        let mut local = collect.then(QueryMetrics::new);
                        let mut topk = TopK::new(k);
                        for raw in lo..hi {
                            let tid = PointId(raw as u32);
                            let t = t_store.point(tid);
                            let skyline = match &mut local {
                                Some(m) => timed(m, Phase::DominatingSky, |m| {
                                    dominating_skyline_rec(p_store, p_tree, t, m)
                                }),
                                None => dominating_skyline(p_store, p_tree, t),
                            };
                            let (cost, upgraded) = match &mut local {
                                Some(m) => timed(m, Phase::Upgrade, |_| {
                                    upgrade_single(p_store, &skyline, t, cost_fn, cfg)
                                }),
                                None => upgrade_single(p_store, &skyline, t, cost_fn, cfg),
                            };
                            if let Some(m) = &mut local {
                                m.bump(Counter::ProductsEvaluated);
                            }
                            topk.offer(UpgradeResult {
                                product: tid,
                                original: t.to_vec(),
                                upgraded,
                                cost,
                            });
                        }
                        (topk.into_sorted(), local)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("probing worker panicked"))
                    .collect()
            })
        });

    let mut merged = TopK::new(k);
    for (part, local) in partials {
        if let Some(m) = local {
            rec.absorb(&m);
        }
        for r in part {
            merged.offer(r);
        }
    }
    let results = merged.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    results
}

/// What one guarded worker hands back on clean (non-panicking) exit.
struct WorkerOut {
    part: Vec<UpgradeResult>,
    metrics: Option<QueryMetrics>,
    evaluated: usize,
    completion: Completion,
    visits: u64,
}

/// Fallible, guarded parallel probing: input validation as in
/// [`crate::probing::try_basic_probing_topk`] plus `threads >= 1`, then
/// each worker runs its slice of `T` under a forked guard sharing the
/// global budgets. A worker that panics is contained by an unwind
/// barrier: it cancels the shared token (stopping its siblings at their
/// next checkpoint), every worker's output is discarded, and the call
/// returns [`SkyupError::WorkerPanicked`].
///
/// On a limit interruption each worker keeps the exact top-k over the
/// prefix of its slice it fully evaluated, so the merged
/// [`Completion::Partial`] answer is the exact top-k over the union of
/// those prefixes. Unlimited runs are bit-identical to
/// [`improved_probing_topk_parallel_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_improved_probing_topk_parallel<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<AnytimeTopK, SkyupError>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    if threads == 0 {
        return Err(SkyupError::InvalidConfig(
            "need at least one worker thread".into(),
        ));
    }
    validate_query(p_store, p_tree, t_store, k, cost_fn)?;
    if t_store.is_empty() {
        return Ok(AnytimeTopK {
            results: Vec::new(),
            completion: Completion::Exact,
            evaluated: 0,
        });
    }

    let guard = limits.start();
    let n = t_store.len();
    let chunk = n.div_ceil(threads);
    let collect = rec.is_enabled();

    let outcomes: Vec<(usize, Result<WorkerOut, String>)> = timed(rec, Phase::ProbeLoop, |_| {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let lo = w * chunk;
                if lo >= n {
                    break;
                }
                let hi = ((w + 1) * chunk).min(n);
                let mut wguard = guard.clone();
                handles.push(scope.spawn(move || {
                    let canceller = wguard.clone();
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut local = collect.then(QueryMetrics::new);
                        let mut topk = TopK::new(k);
                        let mut completion = Completion::Exact;
                        let mut evaluated = 0usize;
                        for raw in lo..hi {
                            if let Err(i) = wguard.checkpoint() {
                                completion = Completion::Partial(i);
                                break;
                            }
                            let tid = PointId(raw as u32);
                            let t = t_store.point(tid);
                            let sky_res = match &mut local {
                                Some(m) => timed(m, Phase::DominatingSky, |m| {
                                    dominating_skyline_lim(p_store, p_tree, t, m, &mut wguard)
                                }),
                                None => dominating_skyline_lim(
                                    p_store,
                                    p_tree,
                                    t,
                                    &mut NullRecorder,
                                    &mut wguard,
                                ),
                            };
                            let skyline = match sky_res {
                                Ok(s) => s,
                                Err(i) => {
                                    completion = Completion::Partial(i);
                                    break;
                                }
                            };
                            let (cost, upgraded) = match &mut local {
                                Some(m) => timed(m, Phase::Upgrade, |_| {
                                    upgrade_single(p_store, &skyline, t, cost_fn, cfg)
                                }),
                                None => upgrade_single(p_store, &skyline, t, cost_fn, cfg),
                            };
                            if let Some(m) = &mut local {
                                m.bump(Counter::ProductsEvaluated);
                            }
                            evaluated += 1;
                            topk.offer(UpgradeResult {
                                product: tid,
                                original: t.to_vec(),
                                upgraded,
                                cost,
                            });
                        }
                        WorkerOut {
                            part: topk.into_sorted(),
                            metrics: local,
                            evaluated,
                            completion,
                            visits: wguard.node_visits(),
                        }
                    }));
                    match out {
                        Ok(o) => (w, Ok(o)),
                        Err(payload) => {
                            // Stop the sibling workers at their next
                            // checkpoint; their output is dropped anyway.
                            canceller.cancel();
                            (w, Err(panic_message(payload)))
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("guarded probing worker escaped its unwind barrier")
                })
                .collect()
        })
    });

    // A panic anywhere poisons the whole answer: report it before
    // absorbing any worker's output.
    for (w, out) in &outcomes {
        if let Err(message) = out {
            rec.bump(Counter::WorkerPanics);
            return Err(SkyupError::WorkerPanicked {
                worker: *w,
                message: message.clone(),
            });
        }
    }

    let mut merged = TopK::new(k);
    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;
    let mut visits = 0u64;
    for (_, out) in outcomes {
        let o = out.expect("panics were handled above");
        if let Some(m) = o.metrics {
            rec.absorb(&m);
        }
        if completion.is_exact() {
            completion = o.completion;
        }
        evaluated += o.evaluated;
        visits += o.visits;
        for r in o.part {
            merged.offer(r);
        }
    }
    let results = merged.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    rec.incr(Counter::GuardedNodeVisits, visits);
    if !completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    Ok(AnytimeTopK {
        results,
        completion,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::probing::improved_probing_topk;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn matches_sequential_exactly() {
        let p = pseudo_random_store(600, 3, 0.0, 1.0, 0xa);
        let t = pseudo_random_store(97, 3, 0.5, 1.5, 0xb); // odd size: ragged chunks
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(3, 1e-3);
        let cfg = UpgradeConfig::default();
        let seq = improved_probing_topk(&p, &rp, &t, 10, &cost, &cfg);
        for threads in [1, 2, 3, 8, 64] {
            let par = improved_probing_topk_parallel(&p, &rp, &t, 10, &cost, &cfg, threads);
            assert_eq!(seq.len(), par.len(), "threads={threads}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.product, b.product, "threads={threads}");
                assert!((a.cost - b.cost).abs() < 1e-12);
                assert_eq!(a.upgraded, b.upgraded);
            }
        }
    }

    #[test]
    fn more_threads_than_products() {
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0xc);
        let t = pseudo_random_store(3, 2, 1.1, 2.0, 0xd);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out =
            improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &UpgradeConfig::default(), 16);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_t() {
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0xe);
        let t = PointStore::new(2);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out =
            improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &UpgradeConfig::default(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let p = pseudo_random_store(200, 2, 0.0, 1.0, 0xf);
        let t = pseudo_random_store(17, 2, 0.5, 1.5, 0x10);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let cfg = UpgradeConfig::default();
        let clamped = improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &cfg, 0);
        let seq = improved_probing_topk(&p, &rp, &t, 5, &cost, &cfg);
        assert_eq!(clamped.len(), seq.len());
        for (a, b) in seq.iter().zip(&clamped) {
            assert_eq!(a.product, b.product);
            assert!((a.cost - b.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn try_rejects_zero_threads() {
        use crate::error::SkyupError;
        use skyup_obs::ExecutionLimits;
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0x11);
        let t = pseudo_random_store(5, 2, 0.5, 1.5, 0x12);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let err = try_improved_probing_topk_parallel(
            &p,
            &rp,
            &t,
            5,
            &cost,
            &UpgradeConfig::default(),
            0,
            &ExecutionLimits::none(),
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidConfig(_)));
        assert!(err.to_string().contains("worker thread"));
    }
}
