//! Multi-threaded improved probing.
//!
//! Probing processes each product of `T` independently against the
//! read-only competitor index, so it parallelizes embarrassingly. These
//! entry points run the shared probe scheduler
//! ([`crate::probing::scheduler`]) under
//! [`ProbeStrategy::WorkStealing`]: workers claim products in id order
//! from a shared atomic counter, keep a per-thread top-k, and merge.
//! Results are bit-identical to the sequential version (the merge
//! re-applies the same `(cost, product id)` order), and the merged
//! counters are fully deterministic because every product is evaluated
//! exactly once. The paper's algorithms are all single-threaded; this is
//! a library extension.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::SkyupError;
use crate::probing::scheduler::{
    improved_probing_topk_scheduled_rec, try_improved_probing_topk_scheduled, ProbeStrategy,
};
use crate::result::{AnytimeTopK, UpgradeResult};
use skyup_geom::PointStore;
use skyup_obs::{ExecutionLimits, NullRecorder, Recorder};
use skyup_rtree::RTree;

/// Runs improved probing across `threads` worker threads and returns the
/// `k` cheapest upgrades, sorted by `(cost, product id)` — exactly the
/// sequential [`crate::improved_probing_topk`] answer.
///
/// `threads == 0` is clamped to one worker thread (historically this
/// panicked; [`try_improved_probing_topk_parallel`] instead reports it
/// as [`SkyupError::InvalidConfig`] so remote callers get a diagnostic
/// rather than a silently-adjusted run).
pub fn improved_probing_topk_parallel<C>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
) -> Vec<UpgradeResult>
where
    C: CostFunction + Sync + ?Sized,
{
    improved_probing_topk_parallel_rec(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        &mut NullRecorder,
    )
}

/// [`improved_probing_topk_parallel`] with instrumentation. Each worker
/// collects into a private [`skyup_obs::QueryMetrics`] (only when the
/// caller's recorder is enabled) which is folded into `rec` after the
/// join, so counters equal the sequential run's (plus `StealEvents`,
/// one per claimed product) and phase times sum worker time.
///
/// `threads == 0` is clamped to one worker thread.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_parallel_rec<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    rec: &mut R,
) -> Vec<UpgradeResult>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    improved_probing_topk_scheduled_rec(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        ProbeStrategy::WorkStealing,
        rec,
    )
    .0
}

/// Fallible, guarded parallel probing: input validation as in
/// [`crate::probing::try_basic_probing_topk`] plus `threads >= 1`, then
/// each worker claims products under a forked guard sharing the global
/// budgets. A worker that panics is contained by an unwind barrier: it
/// cancels the shared token (stopping its siblings at their next
/// checkpoint), every worker's output is discarded, and the call
/// returns [`SkyupError::WorkerPanicked`].
///
/// On a limit interruption each worker keeps the exact top-k over the
/// products it fully evaluated, so the merged
/// [`skyup_obs::Completion::Partial`] answer is the exact top-k over the
/// union of those sets. Unlimited runs are bit-identical to
/// [`improved_probing_topk_parallel_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_improved_probing_topk_parallel<C, R>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    threads: usize,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<AnytimeTopK, SkyupError>
where
    C: CostFunction + Sync + ?Sized,
    R: Recorder + ?Sized,
{
    try_improved_probing_topk_scheduled(
        p_store,
        p_tree,
        t_store,
        k,
        cost_fn,
        cfg,
        threads,
        ProbeStrategy::WorkStealing,
        limits,
        rec,
    )
    .map(|(any, _)| any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::probing::improved_probing_topk;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    #[test]
    fn matches_sequential_exactly() {
        let p = pseudo_random_store(600, 3, 0.0, 1.0, 0xa);
        let t = pseudo_random_store(97, 3, 0.5, 1.5, 0xb); // odd size: ragged chunks
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(3, 1e-3);
        let cfg = UpgradeConfig::default();
        let seq = improved_probing_topk(&p, &rp, &t, 10, &cost, &cfg);
        for threads in [1, 2, 3, 8, 64] {
            let par = improved_probing_topk_parallel(&p, &rp, &t, 10, &cost, &cfg, threads);
            assert_eq!(seq.len(), par.len(), "threads={threads}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.product, b.product, "threads={threads}");
                assert!((a.cost - b.cost).abs() < 1e-12);
                assert_eq!(a.upgraded, b.upgraded);
            }
        }
    }

    #[test]
    fn more_threads_than_products() {
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0xc);
        let t = pseudo_random_store(3, 2, 1.1, 2.0, 0xd);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out =
            improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &UpgradeConfig::default(), 16);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn empty_t() {
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0xe);
        let t = PointStore::new(2);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out =
            improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &UpgradeConfig::default(), 4);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let p = pseudo_random_store(200, 2, 0.0, 1.0, 0xf);
        let t = pseudo_random_store(17, 2, 0.5, 1.5, 0x10);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let cfg = UpgradeConfig::default();
        let clamped = improved_probing_topk_parallel(&p, &rp, &t, 5, &cost, &cfg, 0);
        let seq = improved_probing_topk(&p, &rp, &t, 5, &cost, &cfg);
        assert_eq!(clamped.len(), seq.len());
        for (a, b) in seq.iter().zip(&clamped) {
            assert_eq!(a.product, b.product);
            assert!((a.cost - b.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn try_rejects_zero_threads() {
        use crate::error::SkyupError;
        use skyup_obs::ExecutionLimits;
        let p = pseudo_random_store(50, 2, 0.0, 1.0, 0x11);
        let t = pseudo_random_store(5, 2, 0.5, 1.5, 0x12);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let err = try_improved_probing_topk_parallel(
            &p,
            &rp,
            &t,
            5,
            &cost,
            &UpgradeConfig::default(),
            0,
            &ExecutionLimits::none(),
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, SkyupError::InvalidConfig(_)));
        assert!(err.to_string().contains("worker thread"));
    }
}
