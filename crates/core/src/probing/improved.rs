//! The improved probing algorithm: Algorithm 2 with lines 3–4 replaced by
//! `getDominatingSky` (Algorithm 3).

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{validate_query, SkyupError};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::topk::TopK;
use crate::upgrade::{dominators_from_skyline, upgrade_single};
use skyup_geom::{PointId, PointStore};
use skyup_obs::{timed, Completion, Counter, ExecutionLimits, NullRecorder, Phase, Recorder};
use skyup_rtree::RTree;
use skyup_skyline::{dominating_skyline_lim, dominating_skyline_rec};

/// Runs the improved probing algorithm: for every `t ∈ T`, the skyline
/// of `t`'s dominators is computed directly by a constrained BBS
/// traversal of `R_P` — R-tree nodes whose minimum corner is dominated
/// by an already-found skyline point are pruned without being read
/// (paper Figure 2) — then `t` is upgraded with Algorithm 1. Returns the
/// `k` cheapest upgrades sorted by `(cost, product id)`.
pub fn improved_probing_topk<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    improved_probing_topk_rec(p_store, p_tree, t_store, k, cost_fn, cfg, &mut NullRecorder)
}

/// [`improved_probing_topk`] with instrumentation: times the probe loop
/// and its `getDominatingSky` / upgrade phases, counts R-tree accesses,
/// dominance tests, and products evaluated.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_rec<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    rec: &mut R,
) -> Vec<UpgradeResult> {
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return Vec::new();
    }
    let mut topk = TopK::new(k);
    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            let skyline = timed(rec, Phase::DominatingSky, |rec| {
                dominating_skyline_rec(p_store, p_tree, t, rec)
            });
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });
    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    results
}

/// Improved probing over an externally supplied, precomputed skyline of
/// the full competitor set: per product, `getDominatingSky` is replaced
/// by a linear filter of `p_skyline` down to `t`'s dominators (see
/// [`dominators_from_skyline`] for the identity making this exact).
/// Needs no competitor R-tree at query time, which is what lets a
/// serving snapshot amortize one skyline computation across every
/// request. Results equal [`improved_probing_topk`] when `p_skyline` is
/// the skyline of `p_store`.
pub fn improved_probing_topk_with_skyline<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_skyline: &[PointId],
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    improved_probing_topk_with_skyline_rec(
        p_store,
        p_skyline,
        t_store,
        k,
        cost_fn,
        cfg,
        &mut NullRecorder,
    )
}

/// [`improved_probing_topk_with_skyline`] with instrumentation; the
/// skyline filter is charged to [`Phase::DominatingSky`] and its
/// dominance tests are counted like any other variant's.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_with_skyline_rec<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_skyline: &[PointId],
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    rec: &mut R,
) -> Vec<UpgradeResult> {
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return Vec::new();
    }
    let mut topk = TopK::new(k);
    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            let skyline = timed(rec, Phase::DominatingSky, |rec| {
                dominators_from_skyline(p_store, p_skyline, t, rec)
            });
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });
    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    results
}

/// Fallible, guarded improved probing: input validation as in
/// [`crate::probing::try_basic_probing_topk`], then the probe loop runs
/// under `limits` with every `getDominatingSky` traversal charged to
/// the guard. On interruption the exact top-k over the fully evaluated
/// prefix of `T` comes back tagged [`Completion::Partial`]; unlimited
/// runs are bit-identical to [`improved_probing_topk_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_improved_probing_topk<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<AnytimeTopK, SkyupError> {
    validate_query(p_store, p_tree, t_store, k, cost_fn)?;
    let mut guard = limits.start();
    let mut topk = TopK::new(k);
    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;

    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            if let Err(i) = guard.checkpoint() {
                completion = Completion::Partial(i);
                break;
            }
            let sky_res = timed(rec, Phase::DominatingSky, |rec| {
                dominating_skyline_lim(p_store, p_tree, t, rec, &mut guard)
            });
            let skyline = match sky_res {
                Ok(s) => s,
                Err(i) => {
                    completion = Completion::Partial(i);
                    break;
                }
            };
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            evaluated += 1;
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });

    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    rec.incr(Counter::GuardedNodeVisits, guard.node_visits());
    if !completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    Ok(AnytimeTopK {
        results,
        completion,
        evaluated,
    })
}
