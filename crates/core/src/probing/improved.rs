//! The improved probing algorithm: Algorithm 2 with lines 3–4 replaced by
//! `getDominatingSky` (Algorithm 3).

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::result::UpgradeResult;
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::PointStore;
use skyup_rtree::RTree;
use skyup_skyline::dominating_skyline;

/// Runs the improved probing algorithm: for every `t ∈ T`, the skyline
/// of `t`'s dominators is computed directly by a constrained BBS
/// traversal of `R_P` — R-tree nodes whose minimum corner is dominated
/// by an already-found skyline point are pruned without being read
/// (paper Figure 2) — then `t` is upgraded with Algorithm 1. Returns the
/// `k` cheapest upgrades sorted by `(cost, product id)`.
pub fn improved_probing_topk<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    assert_eq!(p_store.dims(), t_store.dims(), "P and T dimensionality differ");
    if t_store.is_empty() {
        return Vec::new();
    }
    let mut topk = TopK::new(k);
    for (tid, t) in t_store.iter() {
        let skyline = dominating_skyline(p_store, p_tree, t);
        let (cost, upgraded) = upgrade_single(p_store, &skyline, t, cost_fn, cfg);
        topk.offer(UpgradeResult {
            product: tid,
            original: t.to_vec(),
            upgraded,
            cost,
        });
    }
    topk.into_sorted()
}
