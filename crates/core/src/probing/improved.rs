//! The improved probing algorithm: Algorithm 2 with lines 3–4 replaced by
//! `getDominatingSky` (Algorithm 3).

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::result::UpgradeResult;
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::PointStore;
use skyup_obs::{timed, Counter, NullRecorder, Phase, Recorder};
use skyup_rtree::RTree;
use skyup_skyline::dominating_skyline_rec;

/// Runs the improved probing algorithm: for every `t ∈ T`, the skyline
/// of `t`'s dominators is computed directly by a constrained BBS
/// traversal of `R_P` — R-tree nodes whose minimum corner is dominated
/// by an already-found skyline point are pruned without being read
/// (paper Figure 2) — then `t` is upgraded with Algorithm 1. Returns the
/// `k` cheapest upgrades sorted by `(cost, product id)`.
pub fn improved_probing_topk<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    improved_probing_topk_rec(p_store, p_tree, t_store, k, cost_fn, cfg, &mut NullRecorder)
}

/// [`improved_probing_topk`] with instrumentation: times the probe loop
/// and its `getDominatingSky` / upgrade phases, counts R-tree accesses,
/// dominance tests, and products evaluated.
#[allow(clippy::too_many_arguments)]
pub fn improved_probing_topk_rec<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    rec: &mut R,
) -> Vec<UpgradeResult> {
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return Vec::new();
    }
    let mut topk = TopK::new(k);
    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            let skyline = timed(rec, Phase::DominatingSky, |rec| {
                dominating_skyline_rec(p_store, p_tree, t, rec)
            });
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });
    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    results
}
