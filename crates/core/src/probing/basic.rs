//! Algorithm 2: the basic probing baseline.

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::{validate_query, SkyupError};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::topk::TopK;
use crate::upgrade::upgrade_single;
use skyup_geom::dominance::dominates;
use skyup_geom::{PointId, PointStore, Rect};
use skyup_obs::{timed, Completion, Counter, ExecutionLimits, NullRecorder, Phase, Recorder};
use skyup_rtree::RTree;
use skyup_skyline::skyline_sfs_rec;

/// Runs the basic probing algorithm: for every `t ∈ T`, fetch all
/// dominators with a range query over `ADR(t)`, compute their skyline in
/// memory, upgrade `t` with Algorithm 1, and return the `k` cheapest
/// upgrades sorted by `(cost, product id)`.
///
/// `p_tree` must index exactly the points of `p_store`.
///
/// Note: points *equal* to `t` fall inside `ADR(t)` but do not dominate
/// `t`; they are filtered out before the skyline step so that a product
/// tying with a competitor is correctly reported as already competitive.
pub fn basic_probing_topk<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
) -> Vec<UpgradeResult> {
    basic_probing_topk_rec(p_store, p_tree, t_store, k, cost_fn, cfg, &mut NullRecorder)
}

/// [`basic_probing_topk`] with instrumentation: times the probe loop and
/// its per-product range-query (`DominatingSky`) and upgrade phases,
/// counts ADR candidates, dominance tests, R-tree accesses, and products
/// evaluated.
#[allow(clippy::too_many_arguments)]
pub fn basic_probing_topk_rec<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    rec: &mut R,
) -> Vec<UpgradeResult> {
    assert_eq!(
        p_store.dims(),
        t_store.dims(),
        "P and T dimensionality differ"
    );
    if t_store.is_empty() {
        return Vec::new();
    }
    let dims = p_store.dims();
    let mut topk = TopK::new(k);
    let mut candidates: Vec<PointId> = Vec::new();

    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            // Lines 3-4: dominators <- RangeQuery(R_P, ADR(t)), then their
            // skyline — the basic algorithm's stand-in for Algorithm 3.
            let skyline = timed(rec, Phase::DominatingSky, |rec| {
                let dominators: Vec<PointId> = if p_tree.is_empty() {
                    Vec::new()
                } else {
                    let root_lo = p_tree.root().mbr().lo();
                    let adr_lo: Vec<f64> = (0..dims).map(|i| root_lo[i].min(t[i])).collect();
                    let adr = Rect::new(&adr_lo, t);
                    p_tree.range_query_into_rec(p_store, &adr, &mut candidates, rec);
                    rec.incr(Counter::AdrCandidates, candidates.len() as u64);
                    candidates
                        .iter()
                        .copied()
                        .filter(|&p| {
                            rec.bump(Counter::DominanceTests);
                            dominates(p_store.point(p), t)
                        })
                        .collect()
                };
                skyline_sfs_rec(p_store, &dominators, rec)
            });

            // Line 5: upgrade(S, t, f_p).
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });
    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    results
}

/// Fallible, guarded basic probing: validates the inputs up front
/// (dimensionalities, `k >= 1`, non-empty `P`, index cardinality,
/// cost-function monotonicity on sampled data) and runs the probe loop
/// under `limits`. When a limit fires the loop stops between products
/// and the exact top-k over the fully evaluated prefix of `T` is
/// returned tagged [`Completion::Partial`]; with no limits the output
/// is bit-identical to [`basic_probing_topk_rec`].
#[allow(clippy::too_many_arguments)]
pub fn try_basic_probing_topk<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    k: usize,
    cost_fn: &C,
    cfg: &UpgradeConfig,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<AnytimeTopK, SkyupError> {
    validate_query(p_store, p_tree, t_store, k, cost_fn)?;
    let mut guard = limits.start();
    let dims = p_store.dims();
    let mut topk = TopK::new(k);
    let mut completion = Completion::Exact;
    let mut evaluated = 0usize;
    let mut candidates: Vec<PointId> = Vec::new();

    timed(rec, Phase::ProbeLoop, |rec| {
        for (tid, t) in t_store.iter() {
            if let Err(i) = guard.checkpoint() {
                completion = Completion::Partial(i);
                break;
            }
            let sky_res = timed(rec, Phase::DominatingSky, |rec| {
                let root_lo = p_tree.root().mbr().lo();
                let adr_lo: Vec<f64> = (0..dims).map(|i| root_lo[i].min(t[i])).collect();
                let adr = Rect::new(&adr_lo, t);
                p_tree.range_query_into_lim(p_store, &adr, &mut candidates, rec, &mut guard)?;
                rec.incr(Counter::AdrCandidates, candidates.len() as u64);
                let dominators: Vec<PointId> = candidates
                    .iter()
                    .copied()
                    .filter(|&p| {
                        rec.bump(Counter::DominanceTests);
                        dominates(p_store.point(p), t)
                    })
                    .collect();
                Ok(skyline_sfs_rec(p_store, &dominators, rec))
            });
            let skyline = match sky_res {
                Ok(s) => s,
                Err(i) => {
                    // The interrupted product's work is discarded whole:
                    // a truncated dominator set is unsound for upgrades.
                    completion = Completion::Partial(i);
                    break;
                }
            };
            let (cost, upgraded) = timed(rec, Phase::Upgrade, |_| {
                upgrade_single(p_store, &skyline, t, cost_fn, cfg)
            });
            rec.bump(Counter::ProductsEvaluated);
            evaluated += 1;
            topk.offer(UpgradeResult {
                product: tid,
                original: t.to_vec(),
                upgraded,
                cost,
            });
        }
    });

    let results = topk.into_sorted();
    rec.incr(Counter::ResultsEmitted, results.len() as u64);
    rec.incr(Counter::GuardedNodeVisits, guard.node_visits());
    if !completion.is_exact() {
        rec.bump(Counter::LimitInterrupts);
    }
    Ok(AnytimeTopK {
        results,
        completion,
        evaluated,
    })
}
