//! Result types returned by the upgrading algorithms.

use skyup_geom::PointId;

/// One upgraded product: which product of `T` to upgrade, the attribute
/// values to upgrade it to, and the cost `f_p(upgraded) − f_p(original)`.
#[derive(Clone, Debug, PartialEq)]
pub struct UpgradeResult {
    /// Id of the product in the `T` point store.
    pub product: PointId,
    /// The product's current attribute values.
    pub original: Vec<f64>,
    /// The attribute values after the cheapest upgrade found.
    pub upgraded: Vec<f64>,
    /// The upgrading cost. Zero when the product is already
    /// non-dominated (then `upgraded == original`).
    pub cost: f64,
}

impl UpgradeResult {
    /// Whether the product required no change at all.
    pub fn already_competitive(&self) -> bool {
        self.cost == 0.0 && self.original == self.upgraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competitive_detection() {
        let r = UpgradeResult {
            product: PointId(1),
            original: vec![1.0, 2.0],
            upgraded: vec![1.0, 2.0],
            cost: 0.0,
        };
        assert!(r.already_competitive());
        let r2 = UpgradeResult {
            upgraded: vec![0.5, 2.0],
            cost: 0.7,
            ..r
        };
        assert!(!r2.already_competitive());
    }
}
