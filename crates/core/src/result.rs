//! Result types returned by the upgrading algorithms.

use skyup_geom::PointId;
use skyup_obs::Completion;

/// One upgraded product: which product of `T` to upgrade, the attribute
/// values to upgrade it to, and the cost `f_p(upgraded) − f_p(original)`.
#[derive(Clone, Debug, PartialEq)]
pub struct UpgradeResult {
    /// Id of the product in the `T` point store.
    pub product: PointId,
    /// The product's current attribute values.
    pub original: Vec<f64>,
    /// The attribute values after the cheapest upgrade found.
    pub upgraded: Vec<f64>,
    /// The upgrading cost. Zero when the product is already
    /// non-dominated (then `upgraded == original`).
    pub cost: f64,
}

impl UpgradeResult {
    /// Whether the product required no change at all.
    pub fn already_competitive(&self) -> bool {
        self.cost == 0.0 && self.original == self.upgraded
    }
}

/// A top-k answer from a `try_*` entry point, tagged with how complete
/// it is.
///
/// With [`Completion::Exact`] the results are the algorithm's full
/// answer — bit-identical to the infallible entry point's output. With
/// [`Completion::Partial`] an execution limit fired first and the
/// results are a valid best-so-far answer:
///
/// * probing variants return the exact top-k over the `evaluated`-long
///   prefix of `T` that was fully processed (every returned result
///   carries its exact per-product upgrade, and the set is a subset of
///   the unlimited run's full `|T|`-ranking, in consistent order);
/// * the join returns an exact prefix of its unlimited emission
///   sequence (the deterministic traversal simply stopped early).
#[derive(Clone, Debug, PartialEq)]
pub struct AnytimeTopK {
    /// The collected upgrades, sorted the same way the corresponding
    /// infallible entry point sorts them.
    pub results: Vec<UpgradeResult>,
    /// Whether the answer is exact or cut short by a limit.
    pub completion: Completion,
    /// Products fully evaluated (probing) or results emitted (join)
    /// before the query ended.
    pub evaluated: usize,
}

impl AnytimeTopK {
    /// Whether the query ran to the end.
    pub fn is_exact(&self) -> bool {
        self.completion.is_exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn competitive_detection() {
        let r = UpgradeResult {
            product: PointId(1),
            original: vec![1.0, 2.0],
            upgraded: vec![1.0, 2.0],
            cost: 0.0,
        };
        assert!(r.already_competitive());
        let r2 = UpgradeResult {
            upgraded: vec![0.5, 2.0],
            cost: 0.7,
            ..r
        };
        assert!(!r2.already_competitive());
    }
}
