//! The join algorithm's priority queue entries.

use skyup_geom::OrderedF64;
use skyup_rtree::EntryRef;

/// One heap element of Algorithm 4: the tuple
/// `⟨JL, e_T, t′, cost⟩` of the paper, plus a sequence number that makes
/// the heap order total and deterministic.
#[derive(Debug)]
pub(crate) struct JoinHeapEntry {
    /// The priority: `LBC(e_T, JL)` while unresolved, the exact
    /// upgrading cost once resolved.
    pub cost: OrderedF64,
    /// Monotone insertion counter breaking cost ties FIFO.
    pub seq: u64,
    /// The `R_T` entry this element describes (node or single product).
    pub target: EntryRef,
    /// The join list: `R_P` entries that may contain dominators of
    /// products under `target`. Empty once resolved.
    pub jl: Vec<EntryRef>,
    /// Set when the exact upgrade has been computed for a leaf product:
    /// the upgraded coordinate vector `t′` (the exact cost is in `cost`).
    pub resolved: Option<Vec<f64>>,
}

impl PartialEq for JoinHeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl Eq for JoinHeapEntry {}

impl PartialOrd for JoinHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-order on `(cost, seq)`; wrap in [`std::cmp::Reverse`] for the
/// min-heap the algorithm needs.
impl Ord for JoinHeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost.cmp(&other.cost).then(self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skyup_geom::PointId;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn entry(cost: f64, seq: u64) -> JoinHeapEntry {
        JoinHeapEntry {
            cost: OrderedF64::new(cost),
            seq,
            target: EntryRef::Point(PointId(0)),
            jl: Vec::new(),
            resolved: None,
        }
    }

    #[test]
    fn min_heap_orders_by_cost_then_seq() {
        let mut h = BinaryHeap::new();
        h.push(Reverse(entry(2.0, 0)));
        h.push(Reverse(entry(1.0, 2)));
        h.push(Reverse(entry(1.0, 1)));
        h.push(Reverse(entry(0.0, 3)));
        let order: Vec<(f64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|Reverse(e)| (e.cost.get(), e.seq))
            .collect();
        assert_eq!(order, vec![(0.0, 3), (1.0, 1), (1.0, 2), (2.0, 0)]);
    }
}
