//! `LBC(e_T, e_T.JL)` — lower bounds over a whole join list
//! (paper Section III-B4).

use super::lbc::{lbc_entry, lbc_entry_admissible, EntryLbc};
use crate::cost::CostFunction;
use skyup_geom::dims::DimMask;
use skyup_geom::PointStore;
use skyup_rtree::{EntryRef, RTree};
use std::collections::HashMap;

/// Which per-entry bound the join uses (see DESIGN.md §3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BoundMode {
    /// The paper's `LBC` exactly as defined (Section III-B3). Not
    /// admissible: it can exceed true upgrading costs, so the join's
    /// emission order — and hence its top-k — is approximate whenever
    /// the `P`/`T` domains interleave. In the paper's own experimental
    /// setups the approximation is rarely visible. This is the default
    /// because the figures under reproduction study these bounds.
    #[default]
    Paper,
    /// The provably admissible single-dimension-escape bound
    /// ([`super::lbc_entry_admissible`]): weaker pruning, but the join's
    /// output order is exactly ascending in true cost and its top-k
    /// matches the probing algorithms.
    Admissible,
}

/// The three strategies for combining per-entry bounds into one bound
/// for a join list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LowerBound {
    /// `LBC_N` (Equation 2): the minimum over *all* entries. Correct but
    /// pessimistic — a single case-1/2 entry zeroes the bound.
    Naive,
    /// `LBC_C` (Equation 3): the minimum over entries with positive
    /// bounds only, justified by Lemma 2 (one positive entry forces a
    /// positive overall cost).
    Conservative,
    /// `LBC_A` (Equation 4): partition the positive entries by their
    /// `(D_D, D_I)` signature, take the maximum inside each partition,
    /// and the minimum across partitions (Lemma 3).
    Aggressive,
}

impl LowerBound {
    /// All strategies, in the order the paper's figures present them.
    pub const ALL: [LowerBound; 3] = [
        LowerBound::Naive,
        LowerBound::Conservative,
        LowerBound::Aggressive,
    ];

    /// The abbreviation used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            LowerBound::Naive => "NLB",
            LowerBound::Conservative => "CLB",
            LowerBound::Aggressive => "ALB",
        }
    }
}

/// Evaluates the per-entry bound for one join-list entry, resolving the
/// entry's corners through the competitor tree.
pub(crate) fn entry_bound<C: CostFunction + ?Sized>(
    e_t_min: &[f64],
    entry: EntryRef,
    p_store: &PointStore,
    p_tree: &RTree,
    cost_fn: &C,
    mode: BoundMode,
) -> EntryLbc {
    let lo = p_tree.entry_lo(p_store, entry);
    let hi = p_tree.entry_hi(p_store, entry);
    match mode {
        BoundMode::Paper => lbc_entry(e_t_min, lo, hi, cost_fn),
        BoundMode::Admissible => {
            // Reuse the paper classification for the signature (the
            // aggressive strategy's grouping key) but replace the cost.
            let mut b = lbc_entry(e_t_min, lo, hi, cost_fn);
            b.cost = lbc_entry_admissible(e_t_min, hi, cost_fn);
            b
        }
    }
}

/// Computes `LBC(e_T, e_T.JL)` with the chosen strategy. An empty join
/// list means no competitor can dominate anything under `e_T`: bound 0.
pub fn list_bound<C: CostFunction + ?Sized>(
    e_t_min: &[f64],
    jl: &[EntryRef],
    p_store: &PointStore,
    p_tree: &RTree,
    cost_fn: &C,
    bound: LowerBound,
    mode: BoundMode,
) -> f64 {
    if jl.is_empty() {
        return 0.0;
    }
    match bound {
        LowerBound::Naive => {
            let mut min = f64::INFINITY;
            for &e in jl {
                let b = entry_bound(e_t_min, e, p_store, p_tree, cost_fn, mode);
                if b.cost < min {
                    min = b.cost;
                    if min == 0.0 {
                        break;
                    }
                }
            }
            min
        }
        LowerBound::Conservative => {
            let mut min_pos = f64::INFINITY;
            for &e in jl {
                let b = entry_bound(e_t_min, e, p_store, p_tree, cost_fn, mode);
                if b.cost > 0.0 && b.cost < min_pos {
                    min_pos = b.cost;
                }
            }
            if min_pos.is_finite() {
                min_pos
            } else {
                0.0
            }
        }
        LowerBound::Aggressive => {
            // In admissible mode a positive entry bound requires *every*
            // dimension disadvantaged ([`lbc_entry_admissible`]), so all
            // positive entries share the all-dims signature and the
            // grouping below degenerates to a single max — which is
            // exactly the sound aggressive bound: the upgrade must
            // escape every fully dominating entry. Take that path
            // without the map (the bound-sorted probe scheduler calls
            // this once per product; it must not allocate).
            if mode == BoundMode::Admissible {
                let mut max = 0.0f64;
                for &e in jl {
                    let b = entry_bound(e_t_min, e, p_store, p_tree, cost_fn, mode);
                    if b.cost > max {
                        max = b.cost;
                    }
                }
                return max;
            }
            // Group positive entries by signature; max within a group,
            // min across groups.
            let mut groups: HashMap<(DimMask, DimMask), f64> = HashMap::new();
            for &e in jl {
                let b = entry_bound(e_t_min, e, p_store, p_tree, cost_fn, mode);
                if b.cost > 0.0 {
                    let slot = groups.entry(b.signature).or_insert(0.0);
                    if b.cost > *slot {
                        *slot = b.cost;
                    }
                }
            }
            let min = groups.values().copied().fold(f64::INFINITY, f64::min);
            if min.is_finite() {
                min
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use skyup_geom::PointId;
    use skyup_rtree::RTreeParams;

    /// Builds a tiny P store/tree whose leaf points serve as join-list
    /// entries with exactly the corners we want.
    fn setup(points: &[[f64; 2]]) -> (PointStore, RTree) {
        let store = PointStore::from_rows(2, points.iter().map(|p| p.to_vec()));
        let tree = RTree::bulk_load(&store, RTreeParams::with_max_entries(4));
        (store, tree)
    }

    fn f() -> SumCost {
        SumCost::reciprocal(2, 1e-2)
    }

    #[test]
    fn empty_list_is_zero() {
        let (store, tree) = setup(&[[0.1, 0.1]]);
        assert_eq!(
            list_bound(
                &[0.5, 0.5],
                &[],
                &store,
                &tree,
                &f(),
                LowerBound::Naive,
                BoundMode::Paper
            ),
            0.0
        );
    }

    #[test]
    fn naive_zeroed_by_single_incomparable_entry() {
        let (store, tree) = setup(&[
            [0.1, 0.1], // dominates e_T.min: positive bound
            [0.1, 0.9], // incomparable with (0.5, 0.5): zero bound
        ]);
        let jl = vec![EntryRef::Point(PointId(0)), EntryRef::Point(PointId(1))];
        let t_min = [0.5, 0.5];
        let nlb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Naive,
            BoundMode::Paper,
        );
        let clb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Conservative,
            BoundMode::Paper,
        );
        assert_eq!(nlb, 0.0);
        assert!(clb > 0.0, "CLB uses the positive entry (Lemma 2)");
    }

    #[test]
    fn conservative_takes_min_positive() {
        let (store, tree) = setup(&[
            [0.4, 0.4], // close dominator: small bound
            [0.1, 0.1], // far dominator: large bound
        ]);
        let jl = vec![EntryRef::Point(PointId(0)), EntryRef::Point(PointId(1))];
        let t_min = [0.5, 0.5];
        let clb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Conservative,
            BoundMode::Paper,
        );
        let near = entry_bound(
            &t_min,
            EntryRef::Point(PointId(0)),
            &store,
            &tree,
            &f(),
            BoundMode::Paper,
        )
        .cost;
        let far = entry_bound(
            &t_min,
            EntryRef::Point(PointId(1)),
            &store,
            &tree,
            &f(),
            BoundMode::Paper,
        )
        .cost;
        assert!(near < far);
        assert!((clb - near).abs() < 1e-12);
    }

    #[test]
    fn aggressive_at_least_conservative() {
        // Two entries with the same signature (both dominate on both
        // dims): ALB takes their max, CLB their min.
        let (store, tree) = setup(&[[0.4, 0.4], [0.1, 0.1]]);
        let jl = vec![EntryRef::Point(PointId(0)), EntryRef::Point(PointId(1))];
        let t_min = [0.5, 0.5];
        let clb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Conservative,
            BoundMode::Paper,
        );
        let alb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Aggressive,
            BoundMode::Paper,
        );
        assert!(alb >= clb);
        let far = entry_bound(
            &t_min,
            EntryRef::Point(PointId(1)),
            &store,
            &tree,
            &f(),
            BoundMode::Paper,
        )
        .cost;
        assert!((alb - far).abs() < 1e-12, "same signature: ALB = max");
    }

    #[test]
    fn aggressive_min_across_different_signatures() {
        // Entry 0 dominates on dim 0 only (dim 1 incomparable-equal);
        // entry 1 dominates on dim 1 only. Different signatures: ALB is
        // the min of the two (an upgrade can escape via either set).
        let (store, tree) = setup(&[[0.2, 0.5], [0.5, 0.1]]);
        let jl = vec![EntryRef::Point(PointId(0)), EntryRef::Point(PointId(1))];
        let t_min = [0.5, 0.5];
        let b0 = entry_bound(
            &t_min,
            EntryRef::Point(PointId(0)),
            &store,
            &tree,
            &f(),
            BoundMode::Paper,
        )
        .cost;
        let b1 = entry_bound(
            &t_min,
            EntryRef::Point(PointId(1)),
            &store,
            &tree,
            &f(),
            BoundMode::Paper,
        )
        .cost;
        let alb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Aggressive,
            BoundMode::Paper,
        );
        assert!((alb - b0.min(b1)).abs() < 1e-12);
    }

    #[test]
    fn node_entries_use_mbr_corners() {
        // A multi-point tree: the root node's bound must use its MBR.
        let (store, tree) = setup(&[[0.1, 0.2], [0.3, 0.4], [0.2, 0.1], [0.4, 0.3]]);
        let jl = vec![EntryRef::Node(tree.root_id())];
        let t_min = [0.9, 0.9];
        let got = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Naive,
            BoundMode::Paper,
        );
        let cost_fn = f();
        let expected = cost_fn.product_cost(&[0.4, 0.4]) - cost_fn.product_cost(&[0.9, 0.9]);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn all_strategies_ordering_invariant() {
        // NLB <= CLB always; ALB >= CLB always (finer partitions only
        // raise the inner max).
        let (store, tree) = setup(&[[0.2, 0.5], [0.5, 0.1], [0.1, 0.1], [0.45, 0.45]]);
        let jl: Vec<EntryRef> = (0..4).map(|i| EntryRef::Point(PointId(i))).collect();
        let t_min = [0.5, 0.5];
        let nlb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Naive,
            BoundMode::Paper,
        );
        let clb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Conservative,
            BoundMode::Paper,
        );
        let alb = list_bound(
            &t_min,
            &jl,
            &store,
            &tree,
            &f(),
            LowerBound::Aggressive,
            BoundMode::Paper,
        );
        assert!(nlb <= clb + 1e-12);
        assert!(clb <= alb + 1e-12);
    }
}
