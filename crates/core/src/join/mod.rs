//! The join-based approach (paper Section III-B).
//!
//! Requires both the competitor set `P` and the product set `T` to be
//! indexed by R-trees. Entries of `R_T` are processed best-first by
//! their lower-bound upgrading cost; join lists track which parts of
//! `R_P` can still dominate the products below an entry. The approach is
//! *progressive*: results stream out in ascending cost order and the
//! join can stop as soon as `k` products have been reported.

mod algorithm;
mod bounds;
mod heap;
mod lbc;

pub use algorithm::{JoinStats, JoinUpgrader};
pub use bounds::{list_bound, BoundMode, LowerBound};
pub use lbc::{lbc_entry, lbc_entry_admissible, EntryLbc};

use crate::config::UpgradeConfig;
use crate::cost::CostFunction;
use crate::error::SkyupError;
use crate::result::{AnytimeTopK, UpgradeResult};
use skyup_geom::PointStore;
use skyup_obs::{ExecutionLimits, Recorder};
use skyup_rtree::RTree;

/// Convenience wrapper: run the join and collect the `k` cheapest
/// upgrades (fewer if `|T| < k`).
#[allow(clippy::too_many_arguments)]
pub fn join_topk<C: CostFunction + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    t_tree: &RTree,
    k: usize,
    cost_fn: &C,
    cfg: UpgradeConfig,
    bound: LowerBound,
) -> Vec<UpgradeResult> {
    JoinUpgrader::new(p_store, p_tree, t_store, t_tree, cost_fn, cfg, bound)
        .take(k)
        .collect()
}

/// Fallible, guarded twin of [`join_topk`]: validates the inputs via
/// [`JoinUpgrader::try_new`] (plus `k >= 1`), runs the progressive join
/// under `limits`, and folds the join's metrics into `rec`. When a
/// limit fires mid-join the results collected so far — an exact prefix
/// of the unlimited emission sequence — come back tagged
/// [`skyup_obs::Completion::Partial`].
#[allow(clippy::too_many_arguments)]
pub fn try_join_topk<C: CostFunction + ?Sized, R: Recorder + ?Sized>(
    p_store: &PointStore,
    p_tree: &RTree,
    t_store: &PointStore,
    t_tree: &RTree,
    k: usize,
    cost_fn: &C,
    cfg: UpgradeConfig,
    bound: LowerBound,
    limits: &ExecutionLimits,
    rec: &mut R,
) -> Result<AnytimeTopK, SkyupError> {
    if k == 0 {
        return Err(SkyupError::InvalidConfig("k must be at least 1".into()));
    }
    let mut join = JoinUpgrader::try_new(p_store, p_tree, t_store, t_tree, cost_fn, cfg, bound)?
        .with_limits(limits);
    let out = join.collect_topk(k);
    rec.absorb(join.metrics());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;
    use crate::probing::improved_probing_topk;
    use skyup_rtree::RTreeParams;

    fn pseudo_random_store(n: usize, dims: usize, lo: f64, hi: f64, seed: u64) -> PointStore {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut s = PointStore::new(dims);
        for _ in 0..n {
            let row: Vec<f64> = (0..dims).map(|_| lo + (hi - lo) * next()).collect();
            s.push(&row);
        }
        s
    }

    fn check_against_probing(
        p: &PointStore,
        t: &PointStore,
        k: usize,
        dims: usize,
        bound: LowerBound,
        mode: BoundMode,
    ) {
        let rp = RTree::bulk_load(p, RTreeParams::with_max_entries(8));
        let rt = RTree::bulk_load(t, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(dims, 1e-3);
        let cfg = UpgradeConfig::default();
        let join: Vec<_> = JoinUpgrader::new(p, &rp, t, &rt, &cost, cfg, bound)
            .with_bound_mode(mode)
            .take(k)
            .collect();
        let probe = improved_probing_topk(p, &rp, t, k, &cost, &cfg);
        assert_eq!(join.len(), probe.len(), "{bound:?}");
        for (a, b) in join.iter().zip(&probe) {
            assert!(
                (a.cost - b.cost).abs() < 1e-9,
                "{bound:?}: join cost {} vs probing cost {} (products {:?}/{:?})",
                a.cost,
                b.cost,
                a.product,
                b.product
            );
        }
        // Join emits in ascending cost order.
        assert!(join.windows(2).all(|w| w[0].cost <= w[1].cost + 1e-12));
    }

    #[test]
    fn join_with_skyline_matches_self_computed_path() {
        for dims in [2, 3] {
            let p = pseudo_random_store(300, dims, 0.0, 1.0, 0x91 + dims as u64);
            let t = pseudo_random_store(40, dims, 0.5, 1.5, 0x92 + dims as u64);
            let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
            let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
            let cost = SumCost::reciprocal(dims, 1e-3);
            let cfg = UpgradeConfig::default();
            let all: Vec<_> = p.iter().map(|(id, _)| id).collect();
            let mut sky = skyup_skyline::skyline_sfs(&p, &all);
            sky.sort();
            let plain: Vec<_> =
                JoinUpgrader::new(&p, &rp, &t, &rt, &cost, cfg, LowerBound::Conservative)
                    .take(8)
                    .collect();
            let seeded: Vec<_> =
                JoinUpgrader::new(&p, &rp, &t, &rt, &cost, cfg, LowerBound::Conservative)
                    .with_skyline(&sky)
                    .take(8)
                    .collect();
            assert_eq!(plain.len(), seeded.len());
            for (a, b) in plain.iter().zip(&seeded) {
                assert_eq!(a.product, b.product);
                assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            }
        }
    }

    #[test]
    fn join_matches_probing_all_bounds_admissible_mode() {
        // With the admissible per-entry bound the join's emission order
        // is exactly ascending in true cost even on interleaved domains,
        // so it must agree with probing everywhere.
        for dims in [2, 3] {
            let p = pseudo_random_store(500, dims, 0.0, 1.0, 0x10 + dims as u64);
            let t = pseudo_random_store(80, dims, 0.6, 1.6, 0x20 + dims as u64);
            for bound in LowerBound::ALL {
                check_against_probing(&p, &t, 10, dims, bound, BoundMode::Admissible);
            }
        }
    }

    #[test]
    fn paper_bounds_exact_costs_approximate_order() {
        // The paper's LBC is not admissible (DESIGN.md §3), so on
        // interleaved domains the emission order is only approximately
        // ascending. What must still hold: every product is emitted
        // exactly once, with exactly the cost probing computes for it —
        // the approximation is purely a reordering.
        let dims = 2;
        let p = pseudo_random_store(500, dims, 0.0, 1.0, 0x12);
        let t = pseudo_random_store(80, dims, 0.6, 1.6, 0x22);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(dims, 1e-3);
        let cfg = UpgradeConfig::default();
        let truth = improved_probing_topk(&p, &rp, &t, 80, &cost, &cfg);
        let by_id: std::collections::HashMap<u32, f64> =
            truth.iter().map(|r| (r.product.0, r.cost)).collect();
        for bound in LowerBound::ALL {
            let join: Vec<_> = JoinUpgrader::new(&p, &rp, &t, &rt, &cost, cfg, bound).collect();
            assert_eq!(join.len(), truth.len());
            let mut seen = std::collections::HashSet::new();
            let mut inversions = 0usize;
            for (i, r) in join.iter().enumerate() {
                assert!(seen.insert(r.product.0), "{bound:?}: duplicate emission");
                let exact = by_id[&r.product.0];
                assert!(
                    (r.cost - exact).abs() < 1e-9,
                    "{bound:?}: per-product cost differs from probing"
                );
                if i > 0 && join[i - 1].cost > r.cost + 1e-9 {
                    inversions += 1;
                }
            }
            // The reordering is mild: the bulk of the stream is sorted.
            assert!(
                inversions < join.len() / 4,
                "{bound:?}: {} inversions in {} emissions",
                inversions,
                join.len()
            );
        }
    }

    #[test]
    fn join_matches_probing_paper_domains() {
        // The paper's synthetic setup: P in [0,1]^c, T in (1,2]^c — every
        // T product is dominated by essentially all of P.
        let dims = 2;
        let p = pseudo_random_store(400, dims, 0.0, 1.0, 0x31);
        let t = pseudo_random_store(50, dims, 1.0, 2.0, 0x32);
        for bound in LowerBound::ALL {
            // The paper's own setup: its (non-admissible) bounds behave
            // exactly here.
            check_against_probing(&p, &t, 5, dims, bound, BoundMode::Paper);
        }
    }

    #[test]
    fn join_with_competitive_products() {
        // Some T products already escape P: zero-cost results come first.
        let dims = 2;
        let p = pseudo_random_store(300, dims, 0.4, 1.0, 0x41);
        let mut t = pseudo_random_store(30, dims, 0.6, 1.6, 0x42);
        t.push(&[0.0, 0.0]); // unbeatable product
        for bound in LowerBound::ALL {
            let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
            let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
            let cost = SumCost::reciprocal(dims, 1e-3);
            let first = join_topk(&p, &rp, &t, &rt, 1, &cost, UpgradeConfig::default(), bound);
            assert_eq!(first[0].cost, 0.0, "{bound:?}");
        }
    }

    #[test]
    fn exhausting_the_join_returns_all_of_t() {
        let p = pseudo_random_store(200, 2, 0.0, 1.0, 0x51);
        let t = pseudo_random_store(40, 2, 0.5, 1.5, 0x52);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let all: Vec<_> = JoinUpgrader::new(
            &p,
            &rp,
            &t,
            &rt,
            &cost,
            UpgradeConfig::default(),
            LowerBound::Conservative,
        )
        .collect();
        assert_eq!(all.len(), 40);
        let mut ids: Vec<u32> = all.iter().map(|r| r.product.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn empty_t_yields_no_results() {
        let p = pseudo_random_store(100, 2, 0.0, 1.0, 0x61);
        let t = PointStore::new(2);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let rt = RTree::bulk_load(&t, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = join_topk(
            &p,
            &rp,
            &t,
            &rt,
            5,
            &cost,
            UpgradeConfig::default(),
            LowerBound::Naive,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn empty_p_makes_everything_free() {
        let p = PointStore::new(2);
        let t = pseudo_random_store(10, 2, 0.0, 1.0, 0x71);
        let rp = RTree::bulk_load(&p, RTreeParams::default());
        let rt = RTree::bulk_load(&t, RTreeParams::default());
        let cost = SumCost::reciprocal(2, 1e-3);
        let out = join_topk(
            &p,
            &rp,
            &t,
            &rt,
            10,
            &cost,
            UpgradeConfig::default(),
            LowerBound::Aggressive,
        );
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|r| r.cost == 0.0));
    }

    #[test]
    fn stats_are_populated() {
        let p = pseudo_random_store(300, 2, 0.0, 1.0, 0x81);
        let t = pseudo_random_store(50, 2, 0.8, 1.8, 0x82);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(2, 1e-3);
        let mut join = JoinUpgrader::new(
            &p,
            &rp,
            &t,
            &rt,
            &cost,
            UpgradeConfig::default(),
            LowerBound::Conservative,
        );
        let _ = join.next();
        let stats = join.stats();
        assert_eq!(stats.results_emitted, 1);
        assert!(stats.heap_pushes > 0);
        assert!(stats.exact_upgrades >= 1);
    }

    #[test]
    fn progressive_prefix_property() {
        // The first k results of a fresh join equal the first k of a
        // longer run: consuming more never changes earlier answers.
        let p = pseudo_random_store(300, 3, 0.0, 1.0, 0x91);
        let t = pseudo_random_store(60, 3, 0.5, 1.5, 0x92);
        let rp = RTree::bulk_load(&p, RTreeParams::with_max_entries(8));
        let rt = RTree::bulk_load(&t, RTreeParams::with_max_entries(8));
        let cost = SumCost::reciprocal(3, 1e-3);
        let cfg = UpgradeConfig::default();
        let five = join_topk(&p, &rp, &t, &rt, 5, &cost, cfg, LowerBound::Aggressive);
        let twenty = join_topk(&p, &rp, &t, &rt, 20, &cost, cfg, LowerBound::Aggressive);
        assert_eq!(&twenty[..5], &five[..]);
    }
}
