//! Algorithm 4: the progressive R-tree × R-tree upgrading join.
//!
//! A min-heap orders `R_T` entries by the lower-bound upgrading cost
//! `LBC(e_T, e_T.JL)`. Processing the top entry either
//!
//! * **returns a result** — the entry is a single product whose exact
//!   upgrade has already been computed and whose cost is now the global
//!   minimum among everything left in the heap;
//! * **resolves a product** — a leaf product's join list is collapsed
//!   into the skyline of its dominators (constrained BBS over the JL
//!   subtrees) and Algorithm 1 computes its exact upgrade, which is
//!   pushed back with the exact cost (lines 9–11);
//! * **expands the `R_T` node** (Heuristic 1, `LBC = 0`): each child
//!   inherits the subset of the join list overlapping its own
//!   anti-dominant region (lines 13–20);
//! * **expands one join-list entry** (Heuristic 2, `LBC > 0`): the
//!   chosen `R_P` node is replaced by its children, each screened by the
//!   ADR test and a mutual-dominance check against the rest of the list
//!   (lines 22–32). Heuristic 3 picks the non-leaf entry with the
//!   smallest positive `LBC(e_T, e)` (NLB/CLB); Heuristic 4 picks one
//!   achieving the aggressive bound (ALB).
//!
//! The paper leaves one situation implicit: `LBC > 0` but every
//! join-list entry is already a point. No `R_P` expansion is possible,
//! so the `R_T` node is expanded instead (the only sound progress step);
//! a leaf product in the same situation is simply resolved.

use super::bounds::{entry_bound, list_bound, BoundMode, LowerBound};
use super::heap::JoinHeapEntry;
use crate::config::UpgradeConfig;
use crate::cost::diagnostics::verify_monotone_on;
use crate::cost::CostFunction;
use crate::error::{SkyupError, MONOTONE_SAMPLE_LIMIT};
use crate::result::{AnytimeTopK, UpgradeResult};
use crate::upgrade::{dominators_from_skyline, upgrade_single};
use skyup_geom::dominance::dominates;
use skyup_geom::{OrderedF64, PointId, PointStore};
use skyup_obs::{
    timed, Completion, Counter, ExecGuard, ExecutionLimits, Interrupt, Phase, QueryMetrics,
    Recorder,
};
use skyup_rtree::{EntryRef, RTree};
use skyup_skyline::dominating_skyline_from_lim;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Instrumentation counters exposed by [`JoinUpgrader::stats`].
///
/// This is a view derived from the join's [`QueryMetrics`] (see
/// [`JoinUpgrader::metrics`]), kept for API stability; the full counter
/// and per-phase timing breakdown lives in the metrics object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// `R_T` nodes expanded (Heuristic 1 or the all-points fallback).
    pub t_nodes_expanded: u64,
    /// `R_P` nodes expanded out of join lists (Heuristic 2).
    pub p_nodes_expanded: u64,
    /// Exact upgrades computed with Algorithm 1.
    pub exact_upgrades: u64,
    /// Total heap pushes: the join heap plus the constrained-BBS heaps
    /// used to resolve leaf products.
    pub heap_pushes: u64,
    /// Join-list entries dropped by the mutual-dominance check.
    pub jl_entries_pruned: u64,
    /// Results emitted so far.
    pub results_emitted: u64,
}

impl JoinStats {
    /// Derives the legacy stats view from a unified metrics object.
    pub fn from_metrics(m: &QueryMetrics) -> Self {
        JoinStats {
            t_nodes_expanded: m.get(Counter::TNodesExpanded),
            p_nodes_expanded: m.get(Counter::PNodesExpanded),
            exact_upgrades: m.get(Counter::ExactUpgrades),
            heap_pushes: m.get(Counter::HeapPushes),
            jl_entries_pruned: m.get(Counter::JlEntriesPruned),
            results_emitted: m.get(Counter::ResultsEmitted),
        }
    }
}

/// The progressive join (Algorithm 4), exposed as an [`Iterator`] that
/// yields upgrades in ascending cost order. Take `k` items for a top-k
/// answer; the join does only the work needed for the results actually
/// consumed, which is the progressiveness property Figures 5, 10, and 11
/// measure.
pub struct JoinUpgrader<'a, C: CostFunction + ?Sized> {
    p_store: &'a PointStore,
    p_tree: &'a RTree,
    t_store: &'a PointStore,
    t_tree: &'a RTree,
    cost_fn: &'a C,
    cfg: UpgradeConfig,
    bound: LowerBound,
    mode: BoundMode,
    p_skyline: Option<&'a [PointId]>,
    heap: BinaryHeap<Reverse<JoinHeapEntry>>,
    seq: u64,
    metrics: QueryMetrics,
    guard: ExecGuard,
    completion: Completion,
    finished: bool,
    guard_recorded: bool,
}

impl<'a, C: CostFunction + ?Sized> JoinUpgrader<'a, C> {
    /// Creates the join over competitor tree `p_tree` (indexing
    /// `p_store`) and product tree `t_tree` (indexing `t_store`).
    ///
    /// # Panics
    /// Panics if the stores' dimensionalities differ or a tree does not
    /// match its store's cardinality.
    pub fn new(
        p_store: &'a PointStore,
        p_tree: &'a RTree,
        t_store: &'a PointStore,
        t_tree: &'a RTree,
        cost_fn: &'a C,
        cfg: UpgradeConfig,
        bound: LowerBound,
    ) -> Self {
        assert_eq!(
            p_store.dims(),
            t_store.dims(),
            "P and T dimensionality differ"
        );
        assert_eq!(p_tree.len(), p_store.len(), "R_P does not index all of P");
        assert_eq!(t_tree.len(), t_store.len(), "R_T does not index all of T");

        let mut join = Self {
            p_store,
            p_tree,
            t_store,
            t_tree,
            cost_fn,
            cfg,
            bound,
            mode: BoundMode::default(),
            p_skyline: None,
            heap: BinaryHeap::new(),
            seq: 0,
            metrics: QueryMetrics::new(),
            guard: ExecGuard::unlimited(),
            completion: Completion::Exact,
            finished: false,
            guard_recorded: false,
        };

        // Line 2: enheap(⟨{R_P.root}, R_T.root, null, ∞⟩) — we compute
        // the real initial bound instead of ∞, which is equivalent (the
        // first pop recomputes it anyway) but keeps the heap keys honest.
        if !t_tree.is_empty() {
            let target = EntryRef::Node(t_tree.root_id());
            let jl = if p_tree.is_empty() {
                Vec::new()
            } else {
                let t_max = join.t_hi(target);
                let root = EntryRef::Node(p_tree.root_id());
                if join.p_overlaps_adr(root, t_max) {
                    vec![root]
                } else {
                    Vec::new()
                }
            };
            join.push(target, jl, None);
        }
        join
    }

    /// Fallible twin of [`JoinUpgrader::new`]: validates the inputs —
    /// matching dimensionalities, a cost function of the right arity, a
    /// non-empty competitor set, indexes covering their stores, and
    /// cost monotonicity on sampled data — and reports problems as
    /// [`SkyupError`] instead of panicking.
    pub fn try_new(
        p_store: &'a PointStore,
        p_tree: &'a RTree,
        t_store: &'a PointStore,
        t_tree: &'a RTree,
        cost_fn: &'a C,
        cfg: UpgradeConfig,
        bound: LowerBound,
    ) -> Result<Self, SkyupError> {
        if p_store.dims() != t_store.dims() {
            return Err(SkyupError::DimensionMismatch {
                p_dims: p_store.dims(),
                t_dims: t_store.dims(),
            });
        }
        if cost_fn.dims() != p_store.dims() {
            return Err(SkyupError::InvalidConfig(format!(
                "cost function covers {} dimensions but products have {}",
                cost_fn.dims(),
                p_store.dims()
            )));
        }
        if p_store.is_empty() {
            return Err(SkyupError::EmptyCompetitorSet);
        }
        if p_tree.len() != p_store.len() {
            return Err(SkyupError::IndexMismatch {
                tree: "R_P",
                tree_len: p_tree.len(),
                store_len: p_store.len(),
            });
        }
        if t_tree.len() != t_store.len() {
            return Err(SkyupError::IndexMismatch {
                tree: "R_T",
                tree_len: t_tree.len(),
                store_len: t_store.len(),
            });
        }
        verify_monotone_on(cost_fn, p_store, MONOTONE_SAMPLE_LIMIT)
            .map_err(SkyupError::NonMonotoneCost)?;
        verify_monotone_on(cost_fn, t_store, MONOTONE_SAMPLE_LIMIT)
            .map_err(SkyupError::NonMonotoneCost)?;
        Ok(Self::new(
            p_store, p_tree, t_store, t_tree, cost_fn, cfg, bound,
        ))
    }

    /// Runs the join under `limits`: every `R_T` / `R_P` node expansion
    /// and constrained-BBS traversal is charged to the guard, and every
    /// heap insertion counts against the heap budget. When a limit
    /// fires, iteration stops cleanly — [`Iterator::next`] returns
    /// `None` — and [`JoinUpgrader::completion`] reports
    /// [`Completion::Partial`]. The results already emitted are an exact
    /// prefix of the unlimited run's emission sequence. Must be called
    /// before consuming any results.
    pub fn with_limits(mut self, limits: &ExecutionLimits) -> Self {
        assert_eq!(
            self.metrics.get(Counter::ResultsEmitted),
            0,
            "limits must be armed before iteration starts"
        );
        self.guard = limits.start();
        self
    }

    /// Whether the join ran to completion or was interrupted by a
    /// limit. [`Completion::Exact`] while results are still pending
    /// means "no limit has fired yet".
    pub fn completion(&self) -> Completion {
        self.completion
    }

    /// Drains up to `k` results and packages them with the completion
    /// state. The results are an exact prefix of the unlimited
    /// emission sequence whether or not a limit fired.
    pub fn collect_topk(&mut self, k: usize) -> AnytimeTopK {
        let mut results = Vec::new();
        while results.len() < k {
            match self.next() {
                Some(r) => results.push(r),
                None => break,
            }
        }
        self.record_guard_metrics();
        let evaluated = results.len();
        AnytimeTopK {
            results,
            completion: self.completion,
            evaluated,
        }
    }

    /// Folds the guard's tallies into the metrics exactly once. Only
    /// guarded runs record them, so unlimited iteration keeps its
    /// historical counter set bit-identical.
    fn record_guard_metrics(&mut self) {
        if self.guard_recorded {
            return;
        }
        self.guard_recorded = true;
        if !self.guard.is_unlimited() {
            self.metrics
                .incr(Counter::GuardedNodeVisits, self.guard.node_visits());
        }
        if !self.completion.is_exact() {
            self.metrics.bump(Counter::LimitInterrupts);
        }
    }

    fn interrupt(&mut self, i: Interrupt) {
        self.completion = Completion::Partial(i);
        self.finished = true;
        self.record_guard_metrics();
    }

    /// The lower-bound strategy in use.
    pub fn lower_bound(&self) -> LowerBound {
        self.bound
    }

    /// Switches the per-entry bound between the paper's `LBC` (default)
    /// and the admissible single-dimension-escape bound. Must be called
    /// before consuming any results: the root entry's key is recomputed.
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        assert_eq!(
            self.metrics.get(Counter::ResultsEmitted),
            0,
            "bound mode must be chosen before iteration starts"
        );
        self.mode = mode;
        // Re-key the initial heap content (at most the root entry).
        let entries: Vec<_> = std::mem::take(&mut self.heap)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        for e in entries {
            match e.resolved {
                Some(coords) => self.push(e.target, e.jl, Some((e.cost.get(), coords))),
                None => self.push(e.target, e.jl, None),
            }
        }
        self
    }

    /// The bound mode in use.
    pub fn bound_mode(&self) -> BoundMode {
        self.mode
    }

    /// Supplies a precomputed skyline of the full competitor set.
    /// Product resolution then filters it down to each product's
    /// dominators with a linear scan instead of running the constrained
    /// BBS traversal over `R_P`; the filter is exact (see
    /// [`dominators_from_skyline`]), so the emitted results are
    /// unchanged. Must be called before consuming any results, and
    /// `skyline` must be the skyline of `p_store` — a superset misses
    /// nothing but wastes work, a subset silently under-upgrades.
    pub fn with_skyline(mut self, skyline: &'a [PointId]) -> Self {
        assert_eq!(
            self.metrics.get(Counter::ResultsEmitted),
            0,
            "a precomputed skyline must be supplied before iteration starts"
        );
        debug_assert!(
            skyline.iter().all(|s| s.index() < self.p_store.len()),
            "skyline ids must index p_store"
        );
        self.p_skyline = Some(skyline);
        self
    }

    /// Instrumentation counters accumulated so far (legacy view over
    /// [`JoinUpgrader::metrics`]).
    pub fn stats(&self) -> JoinStats {
        JoinStats::from_metrics(&self.metrics)
    }

    /// The full unified metrics accumulated so far: every counter the
    /// join and its constrained-BBS resolutions touch, plus per-phase
    /// span timings ([`Phase::JoinExpansion`], [`Phase::DominatingSky`],
    /// [`Phase::Upgrade`]).
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    fn t_lo(&self, e: EntryRef) -> &[f64] {
        self.t_tree.entry_lo(self.t_store, e)
    }

    fn t_hi(&self, e: EntryRef) -> &[f64] {
        self.t_tree.entry_hi(self.t_store, e)
    }

    /// Whether `R_P` entry `e` overlaps `ADR(t_max)` — i.e. may contain
    /// dominators of a product bounded above by `t_max`.
    fn p_overlaps_adr(&self, e: EntryRef, t_max: &[f64]) -> bool {
        let lo = self.p_tree.entry_lo(self.p_store, e);
        lo.iter().zip(t_max).all(|(&l, &y)| l <= y)
    }

    fn push(&mut self, target: EntryRef, jl: Vec<EntryRef>, resolved: Option<(f64, Vec<f64>)>) {
        let (cost, resolved_coords) = match resolved {
            Some((cost, coords)) => (cost, Some(coords)),
            None => {
                self.metrics.bump(Counter::LowerBoundEvals);
                (
                    list_bound(
                        self.t_lo(target),
                        &jl,
                        self.p_store,
                        self.p_tree,
                        self.cost_fn,
                        self.bound,
                        self.mode,
                    ),
                    None,
                )
            }
        };
        self.seq += 1;
        self.metrics.bump(Counter::HeapPushes);
        // A tripped heap budget is sticky; the loop in `next` catches it
        // at its next checkpoint, so the push itself stays infallible.
        let _ = self.guard.heap_push();
        self.heap.push(Reverse(JoinHeapEntry {
            cost: OrderedF64::new(cost),
            seq: self.seq,
            target,
            jl,
            resolved: resolved_coords,
        }));
    }

    /// Lines 9-11: compute the exact upgrade of leaf product `target`.
    /// On interruption the product's partial work is discarded whole — a
    /// truncated dominator skyline may miss dominators and is unsound
    /// for Algorithm 1.
    fn resolve_product(&mut self, target: EntryRef, jl: Vec<EntryRef>) -> Result<(), Interrupt> {
        let tid = match target {
            EntryRef::Point(p) => p,
            EntryRef::Node(_) => unreachable!("resolve_product takes leaf entries"),
        };
        let t = self.t_store.point(tid);
        let (p_store, p_tree) = (self.p_store, self.p_tree);
        let guard = &mut self.guard;
        let pre = self.p_skyline;
        let skyline = timed(&mut self.metrics, Phase::DominatingSky, |m| match pre {
            Some(sky) => {
                guard.checkpoint()?;
                Ok(dominators_from_skyline(p_store, sky, t, m))
            }
            None => dominating_skyline_from_lim(p_store, p_tree, &jl, t, m, guard),
        })?;
        debug_assert!(skyline.iter().all(|&s| dominates(self.p_store.point(s), t)));
        let (cost_fn, cfg) = (self.cost_fn, &self.cfg);
        let (cost, upgraded) = timed(&mut self.metrics, Phase::Upgrade, |_| {
            upgrade_single(p_store, &skyline, t, cost_fn, cfg)
        });
        self.metrics.bump(Counter::ExactUpgrades);
        self.push(target, Vec::new(), Some((cost, upgraded)));
        Ok(())
    }

    /// Lines 13-20 (Heuristic 1): expand the `R_T` node `target`.
    fn expand_target(&mut self, target: EntryRef, jl: &[EntryRef]) -> Result<(), Interrupt> {
        let node = match target {
            EntryRef::Node(n) => n,
            EntryRef::Point(_) => unreachable!("expand_target takes node entries"),
        };
        self.guard.visit_node()?;
        self.metrics.bump(Counter::TNodesExpanded);
        let children: Vec<EntryRef> = self.t_tree.node(node).entries().collect();
        for child in children {
            let child_max = self.t_hi(child).to_vec();
            let child_jl: Vec<EntryRef> = jl
                .iter()
                .copied()
                .filter(|&e| self.p_overlaps_adr(e, &child_max))
                .collect();
            self.push(child, child_jl, None);
        }
        Ok(())
    }

    /// Heuristics 3-4: choose which non-leaf join-list entry to expand.
    /// Returns `None` when the list has no node entries left.
    fn pick_jl_entry(&self, e_t_min: &[f64], jl: &[EntryRef], lbc: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let mut achieving: Option<usize> = None;
        for (i, &e) in jl.iter().enumerate() {
            if e.is_point() {
                continue;
            }
            let b = entry_bound(
                e_t_min,
                e,
                self.p_store,
                self.p_tree,
                self.cost_fn,
                self.mode,
            )
            .cost;
            if self.bound == LowerBound::Aggressive
                && achieving.is_none()
                && (b - lbc).abs() <= 1e-12 * lbc.max(1.0)
            {
                achieving = Some(i);
            }
            let better = match best {
                None => true,
                Some((_, cur)) => {
                    // Prefer positive bounds; among positives (or among
                    // zeroes) take the minimum.
                    if (b > 0.0) != (cur > 0.0) {
                        b > 0.0
                    } else {
                        b < cur
                    }
                }
            };
            if better {
                best = Some((i, b));
            }
        }
        // Heuristic 4 for ALB, Heuristic 3 otherwise; either way fall
        // back to the best available non-leaf entry.
        achieving.or(best.map(|(i, _)| i))
    }

    /// Lines 22-32 (Heuristic 2): expand join-list entry `idx`.
    fn expand_jl_entry(
        &mut self,
        target: EntryRef,
        mut jl: Vec<EntryRef>,
        idx: usize,
    ) -> Result<(), Interrupt> {
        let expanded = jl.swap_remove(idx);
        let node = match expanded {
            EntryRef::Node(n) => n,
            EntryRef::Point(_) => unreachable!("only node entries are expanded"),
        };
        self.guard.visit_node()?;
        self.metrics.bump(Counter::PNodesExpanded);
        let t_max = self.t_hi(target).to_vec();

        for child in self.p_tree.node(node).entries() {
            // Line 24: keep only children that can hold dominators.
            if !self.p_overlaps_adr(child, &t_max) {
                continue;
            }
            // Lines 25-31: mutual dominance between the child and the
            // current join list.
            let child_lo = self.p_tree.entry_lo(self.p_store, child).to_vec();
            let child_hi = self.p_tree.entry_hi(self.p_store, child).to_vec();
            let mut child_dominated = false;
            let mut i = 0;
            while i < jl.len() {
                let other_lo = self.p_tree.entry_lo(self.p_store, jl[i]);
                let other_hi = self.p_tree.entry_hi(self.p_store, jl[i]);
                if dominates(other_hi, &child_lo) {
                    // Every point of jl[i] dominates every point of the
                    // child: the child contributes no dominator-skyline
                    // point.
                    child_dominated = true;
                    self.metrics.bump(Counter::JlEntriesPruned);
                    break;
                }
                if dominates(&child_hi, other_lo) {
                    // Symmetric: jl[i] is wholesale dominated.
                    jl.swap_remove(i);
                    self.metrics.bump(Counter::JlEntriesPruned);
                    continue;
                }
                i += 1;
            }
            if !child_dominated {
                jl.push(child);
            }
        }
        // Line 32: push back with the recomputed bound.
        self.push(target, jl, None);
        Ok(())
    }
}

impl<C: CostFunction + ?Sized> Iterator for JoinUpgrader<'_, C> {
    type Item = UpgradeResult;

    fn next(&mut self) -> Option<UpgradeResult> {
        if self.finished {
            return None;
        }
        loop {
            if let Err(i) = self.guard.checkpoint() {
                self.interrupt(i);
                return None;
            }
            let Some(Reverse(entry)) = self.heap.pop() else {
                break;
            };
            self.metrics.bump(Counter::HeapPops);
            let JoinHeapEntry {
                cost,
                target,
                jl,
                resolved,
                ..
            } = entry;

            // Lines 5-7: a resolved product at the top of the heap is the
            // cheapest remaining upgrade.
            if let Some(upgraded) = resolved {
                let tid = match target {
                    EntryRef::Point(p) => p,
                    EntryRef::Node(_) => unreachable!("only products resolve"),
                };
                self.metrics.bump(Counter::ResultsEmitted);
                return Some(UpgradeResult {
                    product: tid,
                    original: self.t_store.point(tid).to_vec(),
                    upgraded,
                    cost: cost.get(),
                });
            }

            let step = match target {
                // Lines 8-11: leaf product with a pending join list.
                EntryRef::Point(_) => self.resolve_product(target, jl),
                EntryRef::Node(_) => {
                    self.metrics.enter(Phase::JoinExpansion);
                    let step = if cost.get() == 0.0 {
                        // Lines 13-20, Heuristic 1.
                        self.expand_target(target, &jl)
                    } else {
                        self.metrics.incr(
                            Counter::LowerBoundEvals,
                            jl.iter().filter(|e| !e.is_point()).count() as u64,
                        );
                        match self.pick_jl_entry(self.t_lo(target), &jl, cost.get()) {
                            // Lines 22-32, Heuristic 2.
                            Some(idx) => self.expand_jl_entry(target, jl, idx),
                            // All join-list entries are points: descend
                            // into the T node instead.
                            None => self.expand_target(target, &jl),
                        }
                    };
                    self.metrics.exit(Phase::JoinExpansion);
                    step
                }
            };
            if let Err(i) = step {
                self.interrupt(i);
                return None;
            }
        }
        self.finished = true;
        self.record_guard_metrics();
        None
    }
}
