//! `LBC(e_T, e_P)` — the per-entry lower-bound upgrading cost
//! (paper Section III-B3).
//!
//! The bound considers upgrading the *virtual* product `e_T.min`, which
//! dominates every real product in `e_T`, against the `R_P` entry `e_P`:
//!
//! * **Case 1** (`D_A ≠ ∅`): some dimension of `e_T.min` already beats
//!   all of `e_P` — no point of `e_P` can dominate it. `LBC = 0`.
//! * **Case 2** (all dimensions incomparable): `e_P` *may* contain only
//!   points that do not dominate `e_T.min`. `LBC = 0`.
//! * **Cases 3–4** (`D_A = ∅`, `D_D ≠ ∅`): `e_T.min` must at least be
//!   lifted to the virtual point `t_v` that matches `e_P.max` on every
//!   disadvantaged dimension and keeps its own value on incomparable
//!   ones: `LBC = f_p(t_v) − f_p(e_T.min)`.

use crate::cost::CostFunction;
use skyup_geom::dims::DimMask;

/// The outcome of one `LBC(e_T, e_P)` evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntryLbc {
    /// The lower-bound cost; `0.0` in cases 1 and 2.
    pub cost: f64,
    /// The `(D_D, D_I)` signature, used by the aggressive bound to group
    /// entries that constrain `e_T` on identical dimension sets.
    pub signature: (DimMask, DimMask),
}

/// Computes `LBC(e_T, e_P)` given `e_T.min` and the corners of `e_P`.
///
/// `cost_fn` must satisfy `product_cost(p) = Σ_k attr_cost(k, p[k])`, so
/// the bound is accumulated per disadvantaged dimension without
/// materializing `t_v`.
pub fn lbc_entry<C: CostFunction + ?Sized>(
    e_t_min: &[f64],
    e_p_lo: &[f64],
    e_p_hi: &[f64],
    cost_fn: &C,
) -> EntryLbc {
    debug_assert_eq!(e_t_min.len(), e_p_lo.len());
    debug_assert_eq!(e_t_min.len(), e_p_hi.len());

    let mut disadvantaged = DimMask::EMPTY;
    let mut incomparable = DimMask::EMPTY;
    let mut cost = 0.0;
    for (i, &t) in e_t_min.iter().enumerate() {
        if e_p_hi[i] < t {
            disadvantaged.insert(i);
            // Contribution of dimension i to f_p(t_v) − f_p(e_T.min).
            cost += cost_fn.attr_cost(i, e_p_hi[i]) - cost_fn.attr_cost(i, t);
        } else if t < e_p_lo[i] {
            // Case 1: advantaged dimension found — bound is zero.
            return EntryLbc {
                cost: 0.0,
                signature: (DimMask::EMPTY, DimMask::EMPTY),
            };
        } else {
            incomparable.insert(i);
        }
    }
    if disadvantaged.is_empty() {
        // Case 2.
        return EntryLbc {
            cost: 0.0,
            signature: (DimMask::EMPTY, incomparable),
        };
    }
    // Cases 3-4. Monotone attribute costs make every contribution >= 0;
    // clamp tiny negative float noise.
    EntryLbc {
        cost: cost.max(0.0),
        signature: (disadvantaged, incomparable),
    }
}

/// An **admissible** per-entry lower bound (library extension, see
/// DESIGN.md §3).
///
/// The paper's `LBC` charges for matching `e_P.max` on *every*
/// disadvantaged dimension, but a real upgrade can escape a dominator by
/// beating it on a *single* dimension, so `LBC` can exceed the true
/// upgrading cost and the join's emission order becomes approximate.
/// This bound is provably a lower bound on the cost of any product under
/// `e_T`:
///
/// * positive only when **all** dimensions are disadvantaged (then every
///   possible point of `e_P` strictly dominates every product in `e_T`,
///   so an upgrade is forced);
/// * charges the cheapest single-dimension escape from the weakest
///   possible content, `e_P.max`:
///   `min_k (f_a^k(e_P.max.d_k) − f_a^k(e_T.min.d_k))`.
pub fn lbc_entry_admissible<C: CostFunction + ?Sized>(
    e_t_min: &[f64],
    e_p_hi: &[f64],
    cost_fn: &C,
) -> f64 {
    debug_assert_eq!(e_t_min.len(), e_p_hi.len());
    let mut min_escape = f64::INFINITY;
    for (i, &t) in e_t_min.iter().enumerate() {
        if e_p_hi[i] >= t {
            // Some possible content fails to dominate e_T.min: no upgrade
            // is forced, the only sound bound is zero.
            return 0.0;
        }
        let escape = cost_fn.attr_cost(i, e_p_hi[i]) - cost_fn.attr_cost(i, t);
        if escape < min_escape {
            min_escape = escape;
        }
    }
    min_escape.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::SumCost;

    fn cost_fn() -> SumCost {
        SumCost::reciprocal(2, 1e-2)
    }

    #[test]
    fn admissible_is_at_most_paper_bound() {
        let f = cost_fn();
        let t = [0.8, 0.9];
        let hi = [0.3, 0.4];
        let lo = [0.1, 0.2];
        let paper = lbc_entry(&t, &lo, &hi, &f).cost;
        let adm = lbc_entry_admissible(&t, &hi, &f);
        assert!(adm > 0.0);
        assert!(adm <= paper);
        // Admissible equals the cheapest single-dimension escape.
        let d0 = f.attr_cost(0, 0.3) - f.attr_cost(0, 0.8);
        let d1 = f.attr_cost(1, 0.4) - f.attr_cost(1, 0.9);
        assert!((adm - d0.min(d1)).abs() < 1e-12);
    }

    #[test]
    fn admissible_zero_when_not_fully_disadvantaged() {
        let f = cost_fn();
        // Dimension 1 incomparable: content might not dominate.
        assert_eq!(lbc_entry_admissible(&[0.8, 0.5], &[0.3, 0.7], &f), 0.0);
        // Equal on dimension 0: a point tying e_T.min cannot dominate it.
        assert_eq!(lbc_entry_admissible(&[0.8, 0.5], &[0.8, 0.1], &f), 0.0);
    }

    #[test]
    fn admissible_bounds_single_point_escape_cost() {
        use crate::config::UpgradeConfig;
        use crate::upgrade::upgrade_single;
        use skyup_geom::PointStore;
        let f = cost_fn();
        let mut store = PointStore::new(2);
        let q = store.push(&[0.3, 0.4]);
        let t = [0.8, 0.9];
        let adm = lbc_entry_admissible(&t, &[0.3, 0.4], &f);
        let (exact, _) = upgrade_single(&store, &[q], &t, &f, &UpgradeConfig::with_epsilon(1e-9));
        assert!(
            adm <= exact + 1e-9,
            "admissible bound {adm} exceeds exact cost {exact}"
        );
        // The paper bound overestimates here (sum over both dimensions).
        let paper = lbc_entry(&t, &[0.3, 0.4], &[0.3, 0.4], &f).cost;
        assert!(paper > exact, "this is the documented non-admissibility");
    }

    #[test]
    fn case1_advantaged_dimension_zeroes_bound() {
        // e_T.min beats e_P entirely on dim 0.
        let b = lbc_entry(&[0.1, 0.9], &[0.5, 0.1], &[0.7, 0.3], &cost_fn());
        assert_eq!(b.cost, 0.0);
    }

    #[test]
    fn case2_all_incomparable_zeroes_bound() {
        // e_T.min inside e_P's extent on both dimensions (Figure 3(b),
        // entry e_P3).
        let b = lbc_entry(&[0.5, 0.5], &[0.3, 0.3], &[0.7, 0.7], &cost_fn());
        assert_eq!(b.cost, 0.0);
        assert_eq!(b.signature.0, DimMask::EMPTY);
        assert_eq!(b.signature.1, DimMask::all(2));
    }

    #[test]
    fn case3_fully_disadvantaged_uses_e_p_max() {
        // Figure 3(c): e_P entirely dominates e_T.
        let f = cost_fn();
        let e_t_min = [0.8, 0.9];
        let e_p_lo = [0.1, 0.2];
        let e_p_hi = [0.3, 0.4];
        let b = lbc_entry(&e_t_min, &e_p_lo, &e_p_hi, &f);
        let expected = f.product_cost(&e_p_hi) - f.product_cost(&e_t_min);
        assert!((b.cost - expected).abs() < 1e-12);
        assert_eq!(b.signature.0, DimMask::all(2));
    }

    #[test]
    fn case4_mixed_uses_t_v() {
        // dim 0 disadvantaged, dim 1 incomparable: t_v = (e_P.hi[0], t[1]).
        let f = cost_fn();
        let e_t_min = [0.8, 0.5];
        let e_p_lo = [0.1, 0.3];
        let e_p_hi = [0.3, 0.7];
        let b = lbc_entry(&e_t_min, &e_p_lo, &e_p_hi, &f);
        let t_v = [0.3, 0.5];
        let expected = f.product_cost(&t_v) - f.product_cost(&e_t_min);
        assert!((b.cost - expected).abs() < 1e-12);
        assert!(b.signature.0.contains(0));
        assert!(b.signature.1.contains(1));
    }

    #[test]
    fn degenerate_point_entries() {
        // e_P is a single point strictly dominating e_T.min.
        let f = cost_fn();
        let p = [0.2, 0.3];
        let b = lbc_entry(&[0.6, 0.6], &p, &p, &f);
        let expected = f.product_cost(&p) - f.product_cost(&[0.6, 0.6]);
        assert!((b.cost - expected).abs() < 1e-12);
        // A point equal to e_T.min on one dim, better on the other:
        // that dim is incomparable, the other disadvantaged; positive bound.
        let q = [0.6, 0.3];
        let b2 = lbc_entry(&[0.6, 0.6], &q, &q, &f);
        assert!(b2.cost > 0.0);
    }

    #[test]
    fn bound_is_never_negative() {
        let f = cost_fn();
        for t in [[0.9, 0.9], [0.5, 0.9], [0.1, 0.1]] {
            for (lo, hi) in [([0.0, 0.0], [0.4, 0.4]), ([0.2, 0.5], [0.6, 0.8])] {
                let b = lbc_entry(&t, &lo, &hi, &f);
                assert!(b.cost >= 0.0);
            }
        }
    }
}
